//! End-to-end smoke tests of the `wms` binary.
//!
//! Modeled on the `assert_cmd` help/usage-assertion idiom; since the
//! build environment is offline (see `DESIGN.md` § "Offline dependency
//! policy"), a small fluent [`Assert`] helper over
//! [`std::process::Command`] stands in for the real crate. Cargo points
//! `CARGO_BIN_EXE_wms` at the freshly built binary.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Runs the `wms` binary with the given arguments.
fn wms(args: &[&str]) -> Assert {
    let out = Command::new(env!("CARGO_BIN_EXE_wms"))
        .args(args)
        .output()
        .expect("spawn wms binary");
    Assert {
        out,
        argv: args.iter().map(|s| s.to_string()).collect(),
    }
}

/// Fluent assertions over one finished invocation (assert_cmd style).
struct Assert {
    out: Output,
    argv: Vec<String>,
}

impl Assert {
    fn context(&self) -> String {
        format!(
            "argv: {:?}\nstatus: {:?}\nstdout:\n{}\nstderr:\n{}",
            self.argv,
            self.out.status.code(),
            String::from_utf8_lossy(&self.out.stdout),
            String::from_utf8_lossy(&self.out.stderr),
        )
    }

    fn success(self) -> Self {
        assert!(
            self.out.status.success(),
            "expected success\n{}",
            self.context()
        );
        self
    }

    fn code(self, expected: i32) -> Self {
        assert_eq!(
            self.out.status.code(),
            Some(expected),
            "wrong exit code\n{}",
            self.context()
        );
        self
    }

    fn stdout_contains(self, needle: &str) -> Self {
        let text = String::from_utf8_lossy(&self.out.stdout);
        assert!(
            text.contains(needle),
            "stdout missing {needle:?}\n{}",
            self.context()
        );
        self
    }

    fn stderr_contains(self, needle: &str) -> Self {
        let text = String::from_utf8_lossy(&self.out.stderr);
        assert!(
            text.contains(needle),
            "stderr missing {needle:?}\n{}",
            self.context()
        );
        self
    }

    fn stdout_str(&self) -> String {
        String::from_utf8_lossy(&self.out.stdout).into_owned()
    }
}

/// Fresh per-test scratch directory under the system temp dir.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wms-smoke-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    wms(&[])
        .code(2)
        .stderr_contains("missing command")
        .stderr_contains("USAGE:");
}

#[test]
fn help_lists_every_subcommand() {
    let a = wms(&["help"]).success().stdout_contains("USAGE:");
    let text = a.stdout_str();
    for cmd in [
        "generate",
        "embed",
        "detect",
        "attack",
        "inspect",
        "engine",
        "daemon",
        "send",
        "resilience",
        "help",
    ] {
        assert!(
            text.contains(cmd),
            "usage text missing subcommand {cmd:?}:\n{text}"
        );
    }
}

#[test]
fn leading_flag_is_rejected_with_hint() {
    wms(&["--help"])
        .code(2)
        .stderr_contains("expected a command")
        .stderr_contains("try `wms help`");
}

// Dispatch-level errors print through the command's output writer
// (stdout); only argv parse errors go to stderr.

#[test]
fn unknown_command_fails_with_usage() {
    wms(&["frobnicate"])
        .code(2)
        .stdout_contains("unknown command");
}

#[test]
fn missing_required_flag_is_reported() {
    wms(&["generate", "--kind", "irtf"])
        .code(2)
        .stdout_contains("--output");
}

#[test]
fn unknown_flag_is_reported() {
    wms(&["inspect", "--input", "x.csv", "--widnow", "4"])
        .code(2)
        .stdout_contains("widnow");
}

#[test]
fn generate_embed_detect_round_trip() {
    let dir = Scratch::new("roundtrip");
    let (sensor, licensed, cal) = (
        dir.path("sensor.csv"),
        dir.path("licensed.csv"),
        dir.path("cal.txt"),
    );

    wms(&[
        "generate", "--kind", "irtf", "--n", "6000", "--seed", "7", "--output", &sensor,
    ])
    .success()
    .stdout_contains("wrote 6000 irtf readings");

    wms(&[
        "embed",
        "--input",
        &sensor,
        "--output",
        &licensed,
        "--key",
        "3203239",
        "--calibration",
        &cal,
    ])
    .success()
    .stdout_contains("major extremes");

    wms(&[
        "detect",
        "--input",
        &licensed,
        "--key",
        "3203239",
        "--calibration",
        &cal,
    ])
    .success()
    .stdout_contains("WATERMARK PRESENT");

    // The wrong key must not find Alice's mark.
    wms(&[
        "detect",
        "--input",
        &licensed,
        "--key",
        "999",
        "--calibration",
        &cal,
    ])
    .success()
    .stdout_contains("no watermark evidence");
}

#[test]
fn engine_usage_errors_and_happy_path() {
    // Missing required flags report precisely.
    wms(&["engine", "--input", "x.csv"])
        .code(2)
        .stdout_contains("--output");

    // Happy path on a tiny interleaved flow: two sine streams, small
    // window so the engine has something to embed into.
    let dir = Scratch::new("engine");
    let (flow, marked) = (dir.path("flow.csv"), dir.path("marked.csv"));
    let mut rows = String::from("# stream,value\n");
    for i in 0..900 {
        for id in [1u64, 2] {
            let t = i as f64 + id as f64 * 3.0;
            let v = 2.0 * (t * std::f64::consts::TAU / 45.0).sin()
                + 0.3 * (t * std::f64::consts::TAU / 13.0).sin();
            rows.push_str(&format!("{id},{v}\n"));
        }
    }
    std::fs::write(&flow, rows).expect("write flow");
    wms(&[
        "engine",
        "--input",
        &flow,
        "--output",
        &marked,
        "--key",
        "77",
        "--workers",
        "2",
        "--window",
        "128",
        "--degree",
        "3",
        "--min-active",
        "12",
    ])
    .success()
    .stdout_contains("streams")
    .stdout_contains("stream 1:")
    .stdout_contains("stream 2:");
    assert!(std::path::Path::new(&marked).exists());
}

#[test]
fn resilience_campaign_prints_verdicts() {
    let dir = Scratch::new("resilience");
    let json = dir.path("cells.json");
    wms(&[
        "resilience",
        "--attacks",
        "identity+summarize:2",
        "--items",
        "1600",
        "--trials",
        "2",
        "--path",
        "both",
        "--json",
        &json,
    ])
    .success()
    .stdout_contains("resilience campaign: 4 cells")
    .stdout_contains("summarize:2")
    .stdout_contains("RESILIENT");
    let written = std::fs::read_to_string(&json).expect("json artifact");
    assert!(written.contains("\"schema\": \"wms-bench-resilience/v1\""));

    // Bad attack specs are rejected with a hint.
    wms(&["resilience", "--attacks", "melt:2"])
        .code(2)
        .stdout_contains("unknown attack");
}

#[test]
fn inspect_reports_fluctuation_statistics() {
    let dir = Scratch::new("inspect");
    let sensor = dir.path("sensor.csv");
    wms(&[
        "generate", "--kind", "gaussian", "--n", "4000", "--seed", "11", "--output", &sensor,
    ])
    .success();
    wms(&["inspect", "--input", &sensor])
        .success()
        .stdout_contains("readings:")
        .stdout_contains("extremes");
}

/// The kill-and-resume smoke: a run that checkpoints and "crashes"
/// mid-flight, then resumes, must write a byte-identical output to an
/// uninterrupted run (the CI "Checkpoint smoke" job drives the same flow
/// from the shell).
#[test]
fn engine_kill_and_resume_smoke() {
    let dir = Scratch::new("ck");
    let (flow, full, resumed, ck) = (
        dir.path("flow.csv"),
        dir.path("full.csv"),
        dir.path("resumed.csv"),
        dir.path("state.ck"),
    );
    std::fs::write(
        &flow,
        wms_bench::testkit::offset_sine_flow(&[1, 2, 5], 1200),
    )
    .expect("write flow");
    let base = |output: &str| {
        vec![
            "engine".to_string(),
            "--input".into(),
            flow.clone(),
            "--output".into(),
            output.to_string(),
            "--key".into(),
            "77".into(),
            "--workers".into(),
            "2".into(),
            "--batch".into(),
            "128".into(),
            "--window".into(),
            "256".into(),
            "--degree".into(),
            "3".into(),
            "--min-active".into(),
            "12".into(),
        ]
    };
    // Uninterrupted reference.
    let mut argv = base(&full);
    wms(&argv.iter().map(String::as_str).collect::<Vec<_>>())
        .success()
        .stdout_contains("WATERMARK PRESENT");

    // Crash after 7 batches (checkpoint every 2 → one unreplayed batch).
    argv = base(&resumed);
    argv.extend(
        [
            "--checkpoint-every",
            "2",
            "--checkpoint",
            &ck,
            "--stop-after",
            "7",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    wms(&argv.iter().map(String::as_str).collect::<Vec<_>>())
        .success()
        .stdout_contains("crash simulation");

    // Resume to completion.
    argv = base(&resumed);
    argv.extend(["--resume", &ck].iter().map(|s| s.to_string()));
    wms(&argv.iter().map(String::as_str).collect::<Vec<_>>())
        .success()
        .stdout_contains("resumed from")
        .stdout_contains("WATERMARK PRESENT");

    wms_bench::testkit::assert_byte_identical(
        std::path::Path::new(&full),
        std::path::Path::new(&resumed),
        "engine resumed output vs uninterrupted run",
    );
}
