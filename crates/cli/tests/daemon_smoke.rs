//! End-to-end daemon smoke: real `wms` processes, a real unix socket, a
//! real `kill -9`.
//!
//! The flow mirrors what the CI "Daemon smoke" job drives from the
//! shell:
//!
//! 1. `wms engine --normalize none` produces the single-process
//!    reference output;
//! 2. `wms daemon` serves the same scheme; `wms send` streams the same
//!    flow in the same batches;
//! 3. the daemon is killed with SIGKILL mid-journal, restarted with
//!    `--resume`, and the sender replays everything (already-acked
//!    batches are skipped/refused as stale);
//! 4. the final output must be **byte-identical** to the reference, and
//!    the daemon's post-drain verdicts must find the watermark;
//! 5. separately, SIGTERM must produce a graceful drain and exit 0.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use wms_bench::testkit::{assert_byte_identical, raw_wave_flow};

/// Scheme flags shared by every invocation (reference and daemon runs
/// must agree or the daemon's checkpoint identity check refuses).
const SCHEME_FLAGS: &[&str] = &[
    "--key",
    "4242",
    "--window",
    "64",
    "--degree",
    "2",
    "--radius",
    "0.01",
    "--max-subset",
    "4",
    "--label-len",
    "3",
    "--min-active",
    "4",
];

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wms-dsmoke-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn wms_cmd(args: &[&str]) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_wms"));
    c.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    c
}

/// Runs to completion, asserting success; returns stdout.
fn wms_ok(args: &[&str]) -> String {
    let out = wms_cmd(args).output().expect("spawn wms");
    assert!(
        out.status.success(),
        "argv: {args:?}\nstatus: {:?}\nstdout:\n{}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn daemon_argv<'a>(sock: &'a str, output: &'a str, ck: &'a str, resume: bool) -> Vec<&'a str> {
    let mut argv = vec![
        "daemon", "--listen", sock, "--output", output, "--queue", "8",
    ];
    if resume {
        argv.extend(["--resume", ck]);
    } else {
        argv.extend(["--checkpoint", ck]);
    }
    argv.extend(["--checkpoint-every", "2"]);
    argv.extend(SCHEME_FLAGS);
    argv
}

/// Waits for the daemon child to create its socket (it prints
/// "listening" only after the bind, but `wms send` retries anyway; this
/// guards the kill-timing below).
fn wait_for_socket(path: &str, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !Path::new(path).exists() {
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("daemon exited before binding: {status:?}");
        }
        assert!(Instant::now() < deadline, "daemon never bound {path}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn daemon_kill_dash_nine_resume_is_byte_identical_to_single_process() {
    let dir = Scratch::new("kill9");
    let (flow, reference, daemon_out, ck) = (
        dir.path("flow.csv"),
        dir.path("reference.csv"),
        dir.path("daemon.csv"),
        dir.path("daemon.ck"),
    );
    let sock = format!("unix:{}", dir.path("wmsd.sock"));
    std::fs::write(&flow, raw_wave_flow(&[3, 8, 21], 400)).expect("write flow");

    // Single-process reference: raw values, same batch grouping.
    let mut argv = vec![
        "engine",
        "--input",
        &flow,
        "--output",
        &reference,
        "--batch",
        "64",
        "--normalize",
        "none",
    ];
    argv.extend(SCHEME_FLAGS);
    let verdicts = wms_ok(&argv);
    assert!(
        verdicts.contains("WATERMARK PRESENT"),
        "reference run embeds a detectable mark:\n{verdicts}"
    );

    // Phase 1: daemon up, stream the journal, then SIGKILL it.
    let mut daemon = wms_cmd(&daemon_argv(&sock, &daemon_out, &ck, false))
        .spawn()
        .expect("spawn daemon");
    wait_for_socket(&dir.path("wmsd.sock"), &mut daemon);
    wms_ok(&[
        "send",
        "--connect",
        &sock,
        "--input",
        &flow,
        "--batch",
        "64",
    ]);
    daemon.kill().expect("SIGKILL the daemon"); // kill -9: no drain, no final checkpoint
    let status = daemon.wait().expect("reap daemon");
    assert!(!status.success(), "SIGKILL must not look like a clean exit");

    // Phase 2: resume from the checkpoint and replay the whole journal.
    // Batches the daemon had acked are skipped (handshake) or refused
    // as stale; the rest re-embed deterministically.
    let mut daemon = wms_cmd(&daemon_argv(&sock, &daemon_out, &ck, true))
        .spawn()
        .expect("respawn daemon");
    wait_for_socket(&dir.path("wmsd.sock"), &mut daemon);
    let send_out = wms_ok(&[
        "send",
        "--connect",
        &sock,
        "--input",
        &flow,
        "--batch",
        "64",
        "--drain",
        "true",
    ]);
    assert!(
        send_out.contains("drained"),
        "sender should see the graceful drain:\n{send_out}"
    );
    let out = daemon.wait_with_output().expect("daemon drains and exits");
    assert!(
        out.status.success(),
        "drained daemon must exit 0, got {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("WATERMARK PRESENT"),
        "post-drain verification must find the mark:\n{stdout}"
    );

    assert_byte_identical(
        Path::new(&reference),
        Path::new(&daemon_out),
        "daemon output after kill -9 + resume vs single-process run",
    );
}

#[test]
fn sigterm_drains_gracefully_with_exit_zero() {
    let dir = Scratch::new("sigterm");
    let (flow, daemon_out, ck) = (
        dir.path("flow.csv"),
        dir.path("daemon.csv"),
        dir.path("daemon.ck"),
    );
    let sock = format!("unix:{}", dir.path("wmsd.sock"));
    std::fs::write(&flow, raw_wave_flow(&[3, 8], 300)).expect("write flow");

    let mut daemon = wms_cmd(&daemon_argv(&sock, &daemon_out, &ck, false))
        .spawn()
        .expect("spawn daemon");
    wait_for_socket(&dir.path("wmsd.sock"), &mut daemon);
    wms_ok(&[
        "send",
        "--connect",
        &sock,
        "--input",
        &flow,
        "--batch",
        "64",
    ]);

    // SIGTERM: quiesce, final checkpoint, flush, verdicts, exit 0.
    let term = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "SIGTERM drain must exit 0, got {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("drained"),
        "drain summary missing:\n{stdout}"
    );
    assert!(
        stdout.contains("stream "),
        "per-stream verdicts missing:\n{stdout}"
    );
    assert!(Path::new(&daemon_out).exists());
}
