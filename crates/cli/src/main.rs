//! Thin binary wrapper around [`wms_cli::run`].

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    let code = match wms_cli::Args::parse(tokens) {
        Ok(args) => wms_cli::run(&args, &mut stdout),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", wms_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
