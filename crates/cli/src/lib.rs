//! # wms-cli
//!
//! Command-line front end for the `wms` workspace: generate sensor data,
//! watermark CSV streams, apply Mallory's transforms, and verify marks —
//! all from the shell. The logic lives in library functions ([`commands`])
//! so every subcommand is unit-tested in-process; `src/main.rs` is a thin
//! wrapper.
//!
//! ```text
//! wms generate --kind irtf --n 21630 --seed 7 --output sensor.csv
//! wms embed    --input sensor.csv --output licensed.csv --key 0xC0FFEE? (u64 or passphrase)
//! wms attack   --input licensed.csv --output pirated.csv --kind sample:3
//! wms detect   --input pirated.csv --key ... --chi 3
//! wms inspect  --input sensor.csv
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CmdError, USAGE};
