//! Minimal, dependency-free command-line argument parsing.
//!
//! Grammar: `wms <command> [--flag value]... [--switch]...`. Flags are
//! order-insensitive; unknown flags are errors (typo safety). Values are
//! parsed on extraction with precise error messages.

use std::collections::BTreeMap;

/// Parsed command line: the command word plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional token (the subcommand).
    pub command: String,
    flags: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

/// A user-facing argument error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing command; try `wms help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!(
                "expected a command, found flag {command:?}; try `wms help`"
            )));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(ArgError("empty flag name `--`".into()));
            }
            // `--flag=value` or `--flag value`.
            let (key, value) = if let Some((k, v)) = name.split_once('=') {
                (k.to_string(), v.to_string())
            } else {
                let v = it
                    .next()
                    .ok_or_else(|| ArgError(format!("flag --{name} expects a value")))?;
                (name.to_string(), v)
            };
            if flags.insert(key.clone(), value).is_some() {
                return Err(ArgError(format!("duplicate flag --{key}")));
            }
        }
        Ok(Args {
            command,
            flags,
            consumed: Default::default(),
        })
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        let v = self.flags.get(name).map(String::as_str);
        if v.is_some() {
            self.consumed.borrow_mut().push(name.to_string());
        }
        v
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| ArgError(format!("missing required flag --{name}")))
    }

    /// Optional typed flag.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|e| ArgError(format!("invalid value for --{name}: {raw:?} ({e})"))),
        }
    }

    /// Typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get_parsed(name)?.unwrap_or(default))
    }

    /// Required typed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.require(name)?;
        raw.parse::<T>()
            .map_err(|e| ArgError(format!("invalid value for --{name}: {raw:?} ({e})")))
    }

    /// Rejects flags that were provided but never consumed — catches
    /// typos like `--widnow`. Call after all `get*` extraction.
    pub fn finish(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .flags
            .keys()
            .filter(|k| !consumed.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgError(format!(
                "unknown flag(s) for `{}`: {}",
                self.command,
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["embed", "--input", "a.csv", "--key=42"]).unwrap();
        assert_eq!(a.command, "embed");
        assert_eq!(a.get("input"), Some("a.csv"));
        assert_eq!(a.get("key"), Some("42"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_command_is_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--input", "x"]).is_err());
    }

    #[test]
    fn missing_value_is_error() {
        let e = parse(&["embed", "--input"]).unwrap_err();
        assert!(e.0.contains("expects a value"));
    }

    #[test]
    fn duplicate_flag_is_error() {
        let e = parse(&["embed", "--k", "1", "--k", "2"]).unwrap_err();
        assert!(e.0.contains("duplicate"));
    }

    #[test]
    fn positional_after_command_is_error() {
        let e = parse(&["embed", "stray"]).unwrap_err();
        assert!(e.0.contains("positional"));
    }

    #[test]
    fn typed_extraction_and_defaults() {
        let a = parse(&["x", "--n", "250", "--rate", "1.5"]).unwrap();
        assert_eq!(a.require_parsed::<usize>("n").unwrap(), 250);
        assert_eq!(a.get_or::<f64>("rate", 9.0).unwrap(), 1.5);
        assert_eq!(a.get_or::<f64>("absent", 9.0).unwrap(), 9.0);
        a.finish().unwrap();
    }

    #[test]
    fn bad_typed_value_reports_flag() {
        let a = parse(&["x", "--n", "many"]).unwrap();
        let e = a.require_parsed::<usize>("n").unwrap_err();
        assert!(e.0.contains("--n") && e.0.contains("many"));
    }

    #[test]
    fn unknown_flags_detected_by_finish() {
        let a = parse(&["embed", "--widnow", "512"]).unwrap();
        let _ = a.get("window");
        let e = a.finish().unwrap_err();
        assert!(e.0.contains("--widnow"));
    }

    #[test]
    fn equals_syntax() {
        let a = parse(&["x", "--k=v=w"]).unwrap();
        assert_eq!(a.get("k"), Some("v=w"));
    }
}
