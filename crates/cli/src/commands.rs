//! The `wms` tool's subcommands, implemented as library functions so they
//! are unit-testable without spawning processes.

use crate::args::{ArgError, Args};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wms_attacks::{EpsilonAttack, Segmentation, Summarization, UniformSampling};
use wms_core::encoding::initial::InitialEncoder;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::encoding::quadres::QuadResEncoder;
use wms_core::{
    extremes, DetectConfig, Detector, EmbedConfig, Embedder, Scheme, SubsetEncoder, TransformHint,
    Watermark, WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{Engine, EngineConfig, MemoryBudget, StreamSpec};
use wms_sensors::{IrtfConfig, OscillatingTemperature, SmoothGaussianSource, TemperatureConfig};
use wms_stream::{
    csv, normalize_stream, values_of, Event, Normalizer, Sample, StreamSource, Transform,
};

/// A command failure: the message shown to the user plus the process
/// exit code classifying the fault.
///
/// Exit-code taxonomy (documented in `wms help`, stable):
///
/// | code | class                                                 |
/// |------|-------------------------------------------------------|
/// | 0    | success                                               |
/// | 2    | usage / parameter error                               |
/// | 3    | I/O failure (file or socket)                          |
/// | 4    | wire-protocol failure (WMSP)                          |
/// | 5    | corrupt or incompatible persisted state (checkpoint / |
/// |      | output file mismatch)                                 |
/// | 6    | engine fault (lost worker, poisoned session, spill)   |
#[derive(Debug)]
pub struct CmdError {
    /// Message shown to the user.
    pub msg: String,
    /// Process exit code (see the taxonomy table).
    pub code: i32,
}

impl CmdError {
    /// A usage/parameter error (exit code 2) — the default class.
    pub fn new(msg: impl Into<String>) -> CmdError {
        CmdError::with_code(msg, 2)
    }

    /// An error with an explicit exit-code class.
    pub fn with_code(msg: impl Into<String>, code: i32) -> CmdError {
        CmdError {
            msg: msg.into(),
            code,
        }
    }

    /// Corrupt or incompatible persisted state (exit code 5).
    pub fn corrupt(msg: impl Into<String>) -> CmdError {
        CmdError::with_code(msg, 5)
    }

    /// An engine fault (exit code 6).
    pub fn engine_fault(msg: impl Into<String>) -> CmdError {
        CmdError::with_code(msg, 6)
    }
}

impl std::fmt::Display for CmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for CmdError {}

impl From<ArgError> for CmdError {
    fn from(e: ArgError) -> Self {
        CmdError::new(e.0)
    }
}

impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::with_code(e.to_string(), 3)
    }
}

impl From<String> for CmdError {
    fn from(e: String) -> Self {
        CmdError::new(e)
    }
}

impl From<wms_daemon::DaemonError> for CmdError {
    fn from(e: wms_daemon::DaemonError) -> Self {
        CmdError::with_code(e.to_string(), e.exit_code())
    }
}

/// Usage text.
pub const USAGE: &str = "\
wms — resilient rights protection for sensor streams (Sion et al., VLDB 2004)

USAGE:
    wms <command> [--flag value]...

COMMANDS:
    generate   synthesize a sensor stream CSV
               --kind irtf|temperature|gaussian  --n N  --seed S  --output F
    embed      watermark a CSV stream (normalizes internally)
               --input F --output F --key K [--calibration F] [--text OWNER]
               [--encoder multihash|initial|quadres] [--radius D] [--degree N]
               [--theta T] [--window W] [--min-active M]
    detect     look for a watermark
               --input F --key K [--calibration F] [--wm-len N] [--chi X]
               [--text OWNER] [--encoder ...] [scheme flags as for embed]
               (pass the embed-time --calibration for attacked streams:
                re-fitting min-max is only exact on untransformed data)
    attack     apply a transform
               --input F --output F --kind sample:K|fixed-sample:K|summarize:K|
               epsilon:FRAC,AMP|segment:START,LEN [--seed S]
    inspect    fluctuation statistics of a stream
               --input F [--radius D] [--degree N]
    engine     watermark many interleaved streams through the sharded
               multi-stream engine, then verify each mark
               --input F --output F --key K [--workers N] [--batch B]
               [--ring-capacity N]
               [--text OWNER] [--encoder ...] [scheme flags as for embed]
               [--checkpoint-every N --checkpoint F] [--resume F]
               [--stop-after N] [--max-resident N [--spill F]]
               [--normalize fit|none]
               (input/output rows are `stream,value`; each stream is
                normalized independently and watermarked with the same
                key and parameters. --workers 0 (the default) sizes the
                shard pool to the host's cores; --ring-capacity bounds
                how many sub-batches may sit unapplied in each shard's
                ingest ring (default 8) — higher pipelines deeper,
                lower bounds memory. --checkpoint-every writes a durable
                engine snapshot to --checkpoint after every N batches;
                --resume continues a killed run from such a snapshot,
                bit-identically to a run that never stopped; --stop-after
                exits after N batches to simulate a crash; --max-resident
                caps materialized sessions, hibernating the
                least-recently-touched ones to --spill (or an in-memory
                log) without changing any output byte; --normalize none
                feeds raw values straight through — the daemon's mode —
                so the two paths byte-compare)
    daemon     run wmsd, the long-lived watermarking service (WMSP over
               TCP or a unix socket; drain with SIGTERM for a final
               checkpoint + verdicts)
               --listen tcp:HOST:PORT|unix:PATH --output F --key K
               [--queue N] [--overload block|shed] [--workers N]
               [--ring-capacity N] [--metrics tcp:HOST:PORT|unix:PATH]
               [--checkpoint F [--checkpoint-every N]
                [--checkpoint-interval-ms MS]] [--resume F]
               [--read-timeout-ms MS] [--write-timeout-ms MS]
               [--idle-ms MS] [--stop-after N]
               [--max-resident N [--spill F]]
               [--text OWNER] [--encoder ...] [scheme flags as for embed]
               (values are watermarked raw — no per-stream normalization
                — so output is byte-identical to `wms engine --normalize
                none` fed the same batches; --workers 0 (default) = all
                cores, --ring-capacity as for engine; with a checkpoint
                file configured, a timer checkpoint runs every 5000 ms
                unless --checkpoint-interval-ms overrides it (0 turns
                the timer off); --metrics serves the Prometheus-style
                text exposition over plain HTTP for curl / scrape
                pollers; after kill -9, restart with
                --resume F and replay: already-acked batches get STALE
                NACKs and the output reconverges byte-identically)
    send       stream a CSV to a running wmsd
               --connect tcp:HOST:PORT|unix:PATH --input F [--batch B]
               [--drain true] [--wait-ms MS]
               (skips batches the handshake reports already acked;
                backs off and retries on OVERLOADED NACKs; --drain true
                asks the daemon to finalize and exit afterwards)
    stats      print a running wmsd's metrics snapshot (Prometheus-style
               text exposition, fetched over WMSP — answered even while
               the daemon drains)
               --connect tcp:HOST:PORT|unix:PATH [--wait-ms MS]
    resilience run an attack x severity x scheme resilience campaign
               (embed -> attack -> detect over a deterministic stream
                population) and print per-cell verdicts
               [--grid smoke|paper | --attacks spec+spec+...] [--items N]
               [--trials T] [--seed S] [--kappa K] [--key K]
               [--encoder multihash|initial|quadres|all]
               [--path single|engine|both] [--json F]
               (attack specs, separated by `+`: identity, sample:K,
                fixed-sample:K, summarize:K, segment:FRAC,
                epsilon:FRAC,AMP, noise-resample:AMP,K, splice:LEN)
    help       this text

Values are one reading per line; `#` comments allowed. All commands are
deterministic given their seeds.

EXIT CODES:
    0  success
    2  usage / parameter error
    3  I/O failure (file or socket)
    4  wire-protocol failure (WMSP)
    5  corrupt or incompatible persisted state (checkpoint / output)
    6  engine fault (lost worker, poisoned session, spill)";

/// One-bit verdict wording shared by `detect` and `engine`. The bias
/// threshold is deliberately loose (footnote-5 shorthand); court-grade
/// decisions should read the reported P_fp instead.
fn verdict(report: &wms_core::DetectionReport) -> &'static str {
    if report.bias() > 3 {
        "WATERMARK PRESENT"
    } else {
        "no watermark evidence"
    }
}

fn parse_key(args: &Args) -> Result<Key, CmdError> {
    let raw = args.require("key")?;
    if let Ok(n) = raw.parse::<u64>() {
        return Ok(Key::from_u64(n));
    }
    Ok(Key::from_bytes(raw.as_bytes().to_vec()))
}

fn parse_params(args: &Args) -> Result<WmParams, CmdError> {
    let mut p = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        ..WmParams::default()
    };
    p.radius = args.get_or("radius", p.radius)?;
    p.degree = args.get_or("degree", p.degree)?;
    p.selection_modulus = args.get_or("theta", p.selection_modulus)?;
    p.window = args.get_or("window", p.window)?;
    p.label_len = args.get_or("label-len", p.label_len)?;
    p.max_subset = args.get_or("max-subset", p.max_subset)?;
    if let Some(m) = args.get_parsed::<usize>("min-active")? {
        p.min_active = Some(m);
    }
    p.validate().map_err(CmdError::new)?;
    Ok(p)
}

fn parse_encoder(args: &Args, scheme: &Scheme) -> Result<Arc<dyn SubsetEncoder>, CmdError> {
    match args.get("encoder").unwrap_or("multihash") {
        "multihash" => Ok(Arc::new(MultiHashEncoder)),
        "initial" => Ok(Arc::new(InitialEncoder)),
        "quadres" => Ok(Arc::new(QuadResEncoder::from_scheme(scheme, 3))),
        other => Err(CmdError::new(format!(
            "unknown encoder {other:?}; expected multihash|initial|quadres"
        ))),
    }
}

fn parse_watermark(args: &Args) -> Result<Watermark, CmdError> {
    Ok(match args.get("text") {
        Some(t) if !t.is_empty() => Watermark::from_text(t),
        _ => Watermark::single(true),
    })
}

fn read_stream(path: &Path) -> Result<Vec<Sample>, CmdError> {
    let s = csv::read_values(path)?;
    if s.is_empty() {
        return Err(CmdError::new(format!("{}: empty stream", path.display())));
    }
    Ok(s)
}

/// Writes the embed-time normalization calibration (offset + scale).
///
/// Detection needs the *exact* affine map used at embedding time: the
/// least-significant-bit encodings are bit-precise, and re-fitting on
/// attacked data whose global min/max items did not survive produces a
/// slightly different map that erases the mark. This is part of the
/// "information preserved about the initial stream" (§4.2), alongside
/// the fingerprint.
fn write_calibration(path: &Path, n: &wms_stream::Normalizer) -> Result<(), CmdError> {
    // `{}` prints the shortest f64 representation that round-trips
    // exactly, so the stored map is bit-identical on reload.
    std::fs::write(
        path,
        format!("offset {}\nscale {}\n", n.offset(), n.scale()),
    )?;
    Ok(())
}

/// Reads a calibration file written by [`write_calibration`].
fn read_calibration(path: &Path) -> Result<wms_stream::Normalizer, CmdError> {
    let text = std::fs::read_to_string(path)?;
    let mut offset = None;
    let mut scale = None;
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next()) {
            (Some("offset"), Some(v)) => {
                offset =
                    Some(v.parse::<f64>().map_err(|e| {
                        CmdError::new(format!("{}: bad offset: {e}", path.display()))
                    })?)
            }
            (Some("scale"), Some(v)) => {
                scale =
                    Some(v.parse::<f64>().map_err(|e| {
                        CmdError::new(format!("{}: bad scale: {e}", path.display()))
                    })?)
            }
            _ => {}
        }
    }
    match (offset, scale) {
        (Some(o), Some(s)) => Ok(wms_stream::Normalizer::explicit(o, s)),
        _ => Err(CmdError::new(format!(
            "{}: calibration needs `offset` and `scale` lines",
            path.display()
        ))),
    }
}

/// `wms generate`.
pub fn generate(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    let kind = args.require("kind")?.to_string();
    let n: usize = args.get_or("n", 21_630usize)?;
    let seed: u64 = args.get_or("seed", 7u64)?;
    let output = PathBuf::from(args.require("output")?);
    args.finish()?;
    let samples = match kind.as_str() {
        "irtf" => wms_sensors::generate_irtf(
            &IrtfConfig {
                readings: n,
                ..IrtfConfig::default()
            },
            seed,
        ),
        "temperature" => {
            let mut src = OscillatingTemperature::new(TemperatureConfig::xi_100(), seed);
            src.take_samples(n)
        }
        "gaussian" => SmoothGaussianSource::generate(0.0, 0.5, 25, seed, n),
        other => {
            return Err(CmdError::new(format!(
                "unknown kind {other:?}; expected irtf|temperature|gaussian"
            )))
        }
    };
    csv::write_values(&output, &values_of(&samples))?;
    writeln!(
        out,
        "wrote {} {} readings to {}",
        samples.len(),
        kind,
        output.display()
    )?;
    Ok(())
}

/// `wms embed`.
pub fn embed(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    let input = PathBuf::from(args.require("input")?);
    let output = PathBuf::from(args.require("output")?);
    let key = parse_key(args)?;
    let params = parse_params(args)?;
    let wm = parse_watermark(args)?;
    let calibration = args.get("calibration").map(PathBuf::from);
    let scheme = Scheme::new(params, KeyedHash::md5(key)).map_err(CmdError::new)?;
    let encoder = parse_encoder(args, &scheme)?;
    args.finish()?;

    let raw = read_stream(&input)?;
    let (stream, normalizer) =
        normalize_stream(&raw).ok_or_else(|| CmdError::new("degenerate input stream"))?;
    let (marked, stats) =
        Embedder::embed_stream(scheme, encoder, wm.clone(), &stream).map_err(CmdError::new)?;
    let denorm = normalizer.denormalize_samples(&marked);
    csv::write_values(&output, &values_of(&denorm))?;
    if let Some(cal) = &calibration {
        write_calibration(cal, &normalizer)?;
        writeln!(
            out,
            "calibration saved to {} (keep it with the key)",
            cal.display()
        )?;
    }
    writeln!(
        out,
        "embedded {} of a {}-bit watermark across {} major extremes ({} selected); wrote {}",
        stats.embedded,
        wm.len(),
        stats.majors_seen,
        stats.selected,
        output.display()
    )?;
    if stats.embedded == 0 {
        writeln!(
            out,
            "warning: nothing embedded — check --radius/--degree against `wms inspect`"
        )?;
    }
    Ok(())
}

/// `wms detect`.
pub fn detect(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    let input = PathBuf::from(args.require("input")?);
    let key = parse_key(args)?;
    let params = parse_params(args)?;
    let chi: f64 = args.get_or("chi", 1.0f64)?;
    let reference = parse_watermark(args)?;
    let wm_len: usize = args.get_or("wm-len", reference.len())?;
    let calibration = args.get("calibration").map(PathBuf::from);
    let scheme = Scheme::new(params, KeyedHash::md5(key)).map_err(CmdError::new)?;
    let encoder = parse_encoder(args, &scheme)?;
    args.finish()?;

    let raw = read_stream(&input)?;
    let stream = match &calibration {
        Some(cal) => {
            // Bit-exact re-normalization with the embed-time map.
            let n = read_calibration(cal)?;
            n.normalize_samples(&raw)
        }
        None => {
            writeln!(
                out,
                "note: no --calibration given; re-fitting min-max (only exact on \
                 untransformed or purely affine data)"
            )?;
            normalize_stream(&raw)
                .ok_or_else(|| CmdError::new("degenerate input stream"))?
                .0
        }
    };
    let report =
        Detector::detect_stream(scheme, encoder, wm_len, &stream, TransformHint::Known(chi))
            .map_err(CmdError::new)?;
    writeln!(
        out,
        "examined {} major extremes, {} selected, {} verdicts",
        report.majors_seen, report.selected, report.verdicts
    )?;
    if wm_len == 1 {
        writeln!(
            out,
            "bit-0 bias: {} (P_fp = {:.3e}, confidence {:.6})",
            report.bias(),
            report.false_positive_probability(),
            report.confidence()
        )?;
        writeln!(out, "verdict: {}", verdict(&report))?;
    } else {
        let rec = report.recovered(1);
        writeln!(out, "recovered bits: {rec}")?;
        writeln!(
            out,
            "match vs provided text: {:.1}%",
            rec.match_fraction(&reference) * 100.0
        )?;
    }
    Ok(())
}

/// `wms attack`.
pub fn attack(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    let input = PathBuf::from(args.require("input")?);
    let output = PathBuf::from(args.require("output")?);
    let kind = args.require("kind")?.to_string();
    let seed: u64 = args.get_or("seed", 42u64)?;
    args.finish()?;

    // Validate the attack spec before touching the filesystem.
    let transform = parse_attack(&kind, seed)?;
    let stream = read_stream(&input)?;
    let attacked = transform.apply(&stream);
    csv::write_values(&output, &values_of(&attacked))?;
    writeln!(
        out,
        "{}: {} -> {} values; wrote {}",
        transform.name(),
        stream.len(),
        attacked.len(),
        output.display()
    )?;
    Ok(())
}

/// Parses an attack spec like `sample:3` into a boxed transform.
fn parse_attack(kind: &str, seed: u64) -> Result<Box<dyn Transform>, CmdError> {
    match kind.split_once(':') {
        Some(("sample", k)) => {
            let k: usize = k
                .parse()
                .map_err(|e| CmdError::new(format!("bad degree: {e}")))?;
            Ok(Box::new(UniformSampling::new(k, seed)))
        }
        Some(("fixed-sample", k)) => {
            let k: usize = k
                .parse()
                .map_err(|e| CmdError::new(format!("bad degree: {e}")))?;
            Ok(Box::new(wms_attacks::FixedSampling::new(k)))
        }
        Some(("summarize", k)) => {
            let k: usize = k
                .parse()
                .map_err(|e| CmdError::new(format!("bad degree: {e}")))?;
            Ok(Box::new(Summarization::new(k)))
        }
        Some(("epsilon", spec)) => {
            let (f, a) = spec
                .split_once(',')
                .ok_or_else(|| CmdError::new("epsilon:FRAC,AMP"))?;
            let frac: f64 = f
                .parse()
                .map_err(|e| CmdError::new(format!("bad fraction: {e}")))?;
            let amp: f64 = a
                .parse()
                .map_err(|e| CmdError::new(format!("bad amplitude: {e}")))?;
            Ok(Box::new(EpsilonAttack::uniform(frac, amp, seed)))
        }
        Some(("segment", spec)) => {
            let (s, l) = spec
                .split_once(',')
                .ok_or_else(|| CmdError::new("segment:START,LEN"))?;
            let start: usize = s
                .parse()
                .map_err(|e| CmdError::new(format!("bad start: {e}")))?;
            let len: usize = l
                .parse()
                .map_err(|e| CmdError::new(format!("bad len: {e}")))?;
            Ok(Box::new(Segmentation { start, len }))
        }
        _ => Err(CmdError::new(format!(
            "unknown attack {kind:?}; see `wms help`"
        ))),
    }
}

/// `wms inspect`.
pub fn inspect(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    let input = PathBuf::from(args.require("input")?);
    let radius: f64 = args.get_or("radius", 0.01f64)?;
    let degree: usize = args.get_or("degree", 10usize)?;
    args.finish()?;

    let raw = read_stream(&input)?;
    let (stream, _) =
        normalize_stream(&raw).ok_or_else(|| CmdError::new("degenerate input stream"))?;
    let values = values_of(&stream);
    let all = extremes::scan(&values, radius);
    let majors = all.iter().filter(|e| e.is_major(degree)).count();
    let avg = extremes::avg_subset_size(&values, radius).unwrap_or(0.0);
    let summary = wms_math::summarize(&values_of(&raw)).unwrap();
    writeln!(out, "readings:            {}", raw.len())?;
    writeln!(
        out,
        "raw range:           [{:.3}, {:.3}] mean {:.3} std {:.3}",
        summary.min, summary.max, summary.mean, summary.std_dev
    )?;
    writeln!(out, "extremes (delta={radius}): {}", all.len())?;
    writeln!(out, "majors (nu={degree}):       {majors}")?;
    writeln!(out, "avg subset size:     {avg:.2}")?;
    match extremes::measure_xi(&values, radius, degree) {
        Some(xi) => writeln!(out, "xi (items/major):    {xi:.1}")?,
        None => writeln!(
            out,
            "xi (items/major):    n/a — no majors at these settings"
        )?,
    }
    Ok(())
}

/// Writes an atomic engine checkpoint: flushes the output writer so the
/// recorded byte offset is durable, stamps the CLI resume metadata
/// (input event cursor + output byte offset) into the checkpoint's
/// `meta`, and renames a temp file into place so a crash mid-write
/// leaves the previous checkpoint intact.
/// CLI resume bookkeeping carried in the engine checkpoint's `meta`.
///
/// Besides the input cursor and output byte offset, it records every
/// run parameter the session fingerprint does *not* cover but on which
/// the run's output depends: the ingest batch size (output rows are
/// grouped per batch, so a different `--batch` breaks the byte-identical
/// resume guarantee), the encoder choice and the watermark bits (a
/// different `--encoder`/`--text` would silently embed a mixed, corrupt
/// mark — exactly the desync class the fingerprint check exists to
/// reject at the scheme level).
struct ResumeMeta {
    consumed: u64,
    out_bytes: u64,
    batch: u64,
    encoder: String,
    wm_bits: Vec<bool>,
    /// Full `WmParams` identity (Debug form). The scheme fingerprint
    /// only covers the codec parameters (τ/γ/α) and the key; θ, ν, δ
    /// and friends also shape selection and embedding, so a mismatch
    /// must refuse the resume just as loudly.
    params: String,
}

impl ResumeMeta {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = wms_core::checkpoint::ByteWriter::new();
        w.put_u64(self.consumed);
        w.put_u64(self.out_bytes);
        w.put_u64(self.batch);
        w.put_bytes(self.encoder.as_bytes());
        w.put_bytes(&self.wm_bits.iter().map(|&b| b as u8).collect::<Vec<u8>>());
        w.put_bytes(self.params.as_bytes());
        w.into_bytes()
    }

    fn from_checkpoint(ck: &wms_engine::Checkpoint) -> Result<ResumeMeta, CmdError> {
        let bad = |e: wms_core::CheckpointError| CmdError::corrupt(format!("resume metadata: {e}"));
        let mut r = wms_core::checkpoint::ByteReader::new(&ck.meta);
        let consumed = r.get_u64().map_err(bad)?;
        let out_bytes = r.get_u64().map_err(bad)?;
        let batch = r.get_u64().map_err(bad)?;
        let encoder = String::from_utf8_lossy(r.get_bytes().map_err(bad)?).into_owned();
        let wm_bits = r
            .get_bytes()
            .map_err(bad)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        let params = String::from_utf8_lossy(r.get_bytes().map_err(bad)?).into_owned();
        r.finish().map_err(bad)?;
        Ok(ResumeMeta {
            consumed,
            out_bytes,
            batch,
            encoder,
            wm_bits,
            params,
        })
    }
}

/// Writes an atomic, durable engine checkpoint: flushes **and fsyncs**
/// the output file (so the recorded byte offset never points past data
/// that could be lost to a crash), writes the checkpoint image to a temp
/// file, fsyncs it, and renames it into place — a crash at any point
/// leaves either the previous checkpoint or the new one, never a torn
/// file.
fn write_engine_checkpoint(
    path: &Path,
    engine: &mut Engine,
    meta: &mut ResumeMeta,
    writer: &mut std::io::BufWriter<std::fs::File>,
) -> Result<(), CmdError> {
    use std::io::{Seek, Write as _};
    writer.flush()?;
    writer.get_ref().sync_all()?;
    let mut file: &std::fs::File = writer.get_ref();
    meta.out_bytes = file.stream_position()?;
    let mut ck = engine
        .checkpoint()
        .map_err(|e| CmdError::engine_fault(e.to_string()))?;
    ck.meta = meta.to_bytes();
    let tmp = path.with_extension("ck-tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&ck.to_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// `wms engine`: embed across many interleaved streams at once, then run
/// a detection pass over the watermarked flow and report per-stream
/// verdicts. With `--checkpoint-every` the embedding pass periodically
/// persists a durable engine snapshot; `--resume` continues a killed run
/// from one, producing output bit-identical to an uninterrupted run.
pub fn engine(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    use std::io::{Seek, SeekFrom, Write as _};

    let input = PathBuf::from(args.require("input")?);
    let output = PathBuf::from(args.require("output")?);
    let key = parse_key(args)?;
    let params = parse_params(args)?;
    let wm = parse_watermark(args)?;
    let workers: usize = args.get_or("workers", 0usize)?;
    let ring_capacity: usize = args.get_or("ring-capacity", 0usize)?;
    let batch: usize = args.get_or("batch", 1024usize)?;
    let ck_every: usize = args.get_or("checkpoint-every", 0usize)?;
    let ck_path = args.get("checkpoint").map(PathBuf::from);
    let resume = args.get("resume").map(PathBuf::from);
    let stop_after: usize = args.get_or("stop-after", 0usize)?;
    let max_resident: usize = args.get_or("max-resident", 0usize)?;
    let spill = args.get("spill").map(PathBuf::from);
    let normalize_flag = args.get("normalize").unwrap_or("fit").to_string();
    let scheme = Scheme::new(params, KeyedHash::md5(key)).map_err(CmdError::new)?;
    let encoder_name = args.get("encoder").unwrap_or("multihash").to_string();
    let encoder = parse_encoder(args, &scheme)?;
    args.finish()?;
    if batch == 0 {
        return Err(CmdError::new("--batch must be >= 1".to_string()));
    }
    let normalize_fit = match normalize_flag.as_str() {
        "fit" => true,
        // `none` feeds raw values straight through — the mode the wmsd
        // daemon uses, so a daemon run can be byte-compared against an
        // in-process one.
        "none" => false,
        other => {
            return Err(CmdError::new(format!(
                "unknown --normalize {other:?}; expected fit|none"
            )))
        }
    };
    if spill.is_some() && max_resident == 0 {
        return Err(CmdError::new(
            "--spill needs --max-resident N (nothing hibernates without a budget)",
        ));
    }
    let engine_cfg = {
        let mut budget = MemoryBudget::resident(max_resident);
        if let Some(p) = &spill {
            budget = budget.with_spill_file(p.clone());
        }
        let mut cfg = EngineConfig::with_workers(workers).with_budget(budget);
        if ring_capacity > 0 {
            cfg = cfg.with_ring_capacity(ring_capacity);
        }
        cfg
    };
    // A bare `--resume F` keeps checkpointing to the same file.
    let ck_path = ck_path.or_else(|| resume.clone());
    if ck_every > 0 && ck_path.is_none() {
        return Err(CmdError::new(
            "--checkpoint-every needs --checkpoint FILE (or --resume FILE to continue one)",
        ));
    }

    let raw_events = csv::read_events(&input)?;
    if raw_events.is_empty() {
        return Err(CmdError::new(format!(
            "{}: empty event flow",
            input.display()
        )));
    }

    // Per-stream min-max normalization (the engine analogue of `wms
    // embed`'s whole-stream calibration; each sensor has its own range).
    // Recomputed from the input on resume too: same input, same maps.
    let mut stream_order: Vec<wms_engine::StreamId> = Vec::new();
    let mut per_stream_values: HashMap<u64, Vec<f64>> = HashMap::new();
    for e in &raw_events {
        per_stream_values
            .entry(e.stream.0)
            .or_insert_with(|| {
                stream_order.push(e.stream);
                Vec::new()
            })
            .push(e.sample.value);
    }
    let normalizers: Option<HashMap<u64, Normalizer>> = if normalize_fit {
        let mut fitted = HashMap::new();
        for (&id, values) in &per_stream_values {
            let n = Normalizer::fit(values)
                .filter(|n| n.scale() != 0.0)
                .ok_or_else(|| {
                    CmdError::new(format!("stream {id}: degenerate (constant) stream"))
                })?;
            fitted.insert(id, n);
        }
        Some(fitted)
    } else {
        None
    };
    let events: Vec<Event> = match &normalizers {
        Some(ns) => raw_events
            .iter()
            .map(|e| {
                let n = &ns[&e.stream.0];
                Event::new(e.stream, e.sample.with_value(n.normalize(e.sample.value)))
            })
            .collect(),
        None => raw_events.clone(),
    };
    // `--normalize none` must write `s.value` untouched: an identity
    // Normalizer's denormalize is *almost* the identity (`-0.0 + 0.0`
    // flips sign zero), so the raw path bypasses it entirely.
    let denorm = |id: u64, v: f64| match &normalizers {
        Some(ns) => ns[&id].denormalize(v),
        None => v,
    };

    // Embedding pass: one shared config, one session per stream. Fresh
    // runs register every stream; resumed runs re-adopt the checkpointed
    // sessions and truncate the output back to the checkpoint's offset.
    let embed_cfg = Arc::new(
        EmbedConfig::new(scheme.clone(), Arc::clone(&encoder), wm.clone())
            .map_err(CmdError::new)?,
    );
    let (mut engine, mut consumed, mut writer) = if let Some(resume_path) = &resume {
        let bytes = std::fs::read(resume_path)
            .map_err(|e| CmdError::with_code(format!("{}: {e}", resume_path.display()), 3))?;
        let ck = wms_engine::Checkpoint::from_bytes(&bytes)
            .map_err(|e| CmdError::corrupt(format!("{}: {e}", resume_path.display())))?;
        let meta = ResumeMeta::from_checkpoint(&ck)?;
        let (consumed, out_bytes) = (meta.consumed, meta.out_bytes);
        // The scheme fingerprint (checked in Engine::restore below)
        // covers the key and codec parameters; these cover the run
        // parameters the output additionally depends on.
        if meta.batch != batch as u64 {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint was taken with --batch {}, this run uses --batch {batch} \
                 (output row grouping depends on it; pass the original value)",
                resume_path.display(),
                meta.batch
            )));
        }
        if meta.encoder != encoder_name {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint was taken with --encoder {}, this run uses --encoder \
                 {encoder_name} (resuming would embed a mixed, corrupt mark)",
                resume_path.display(),
                meta.encoder
            )));
        }
        if meta.wm_bits != wm.bits() {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint embeds a different watermark than this run's --text \
                 (resuming would embed a mixed, corrupt mark)",
                resume_path.display()
            )));
        }
        if meta.params != format!("{params:?}") {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint was taken under different scheme parameters \
                 ({}), this run uses {params:?}",
                resume_path.display(),
                meta.params
            )));
        }
        let known: std::collections::HashSet<u64> = stream_order.iter().map(|s| s.0).collect();
        if ck.num_streams() != known.len() || ck.streams().any(|id| !known.contains(&id.0)) {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint streams do not match the input's streams",
                resume_path.display()
            )));
        }
        if consumed as usize > events.len() {
            return Err(CmdError::corrupt(format!(
                "{}: checkpoint is ahead of the input ({} events consumed, input has {})",
                resume_path.display(),
                consumed,
                events.len()
            )));
        }
        let engine = Engine::restore(engine_cfg.clone(), &ck, |_| {
            Some(StreamSpec::Embed(Arc::clone(&embed_cfg)))
        })
        .map_err(|e| CmdError::corrupt(format!("{}: {e}", resume_path.display())))?;
        // Drop the rows written after the checkpoint (they replay now).
        // `set_len` would silently zero-EXTEND a file shorter than the
        // recorded offset, so a missing/truncated output fails fast.
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&output)
            .map_err(|e| CmdError::with_code(format!("{}: {e}", output.display()), 3))?;
        let have = file.metadata()?.len();
        if have < out_bytes {
            return Err(CmdError::corrupt(format!(
                "{}: output file is shorter than the checkpoint expects \
                 ({have} < {out_bytes} bytes) — it is not the file this checkpoint was \
                 taken against",
                output.display()
            )));
        }
        file.set_len(out_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        writeln!(
            out,
            "resumed from {} at event {consumed} of {}",
            resume_path.display(),
            events.len()
        )?;
        (engine, consumed as usize, std::io::BufWriter::new(file))
    } else {
        let mut engine =
            Engine::new(engine_cfg.clone()).map_err(|e| CmdError::engine_fault(e.to_string()))?;
        for &id in &stream_order {
            engine
                .register(id, StreamSpec::Embed(Arc::clone(&embed_cfg)))
                .map_err(|e| CmdError::engine_fault(e.to_string()))?;
        }
        let mut writer = std::io::BufWriter::new(std::fs::File::create(&output)?);
        writeln!(writer, "# stream,value")?;
        (engine, 0usize, writer)
    };

    let mut batches_done = 0usize;
    let mut stopped_early = false;
    for chunk in events[consumed..].chunks(batch) {
        let outs = engine
            .ingest(chunk)
            .map_err(|e| CmdError::engine_fault(e.to_string()))?;
        consumed += chunk.len();
        for o in outs {
            for s in o.samples {
                writeln!(writer, "{},{}", o.stream, denorm(o.stream.0, s.value))?;
            }
        }
        batches_done += 1;
        if ck_every > 0 && batches_done.is_multiple_of(ck_every) {
            let mut meta = ResumeMeta {
                consumed: consumed as u64,
                out_bytes: 0, // filled in after the output flush
                batch: batch as u64,
                encoder: encoder_name.clone(),
                wm_bits: wm.bits().to_vec(),
                params: format!("{params:?}"),
            };
            write_engine_checkpoint(
                ck_path.as_ref().expect("validated above"),
                &mut engine,
                &mut meta,
                &mut writer,
            )?;
        }
        if stop_after > 0 && batches_done >= stop_after {
            stopped_early = true;
            break;
        }
    }
    if stopped_early {
        writer.flush()?;
        write!(
            out,
            "stopped after {batches_done} batches at event {consumed} (crash simulation)"
        )?;
        match &ck_path {
            Some(p) if ck_every > 0 => writeln!(out, "; resume with --resume {}", p.display())?,
            _ => writeln!(out, "; no checkpoint was configured")?,
        }
        return Ok(());
    }

    let mut embedded_total = 0u64;
    let mut stats_by_id: HashMap<u64, wms_core::EmbedStats> = HashMap::new();
    let resolved_workers = engine.workers();
    for outcome in engine
        .finish()
        .map_err(|e| CmdError::engine_fault(e.to_string()))?
    {
        for s in outcome.tail {
            writeln!(
                writer,
                "{},{}",
                outcome.stream,
                denorm(outcome.stream.0, s.value)
            )?;
        }
        let stats = outcome.embed_stats.expect("embed mode");
        embedded_total += stats.embedded;
        stats_by_id.insert(outcome.stream.0, stats);
    }
    writer.flush()?;
    drop(writer);
    writeln!(
        out,
        "engine: {} events over {} streams ({} workers); embedded {} bits; wrote {}",
        events.len(),
        stream_order.len(),
        resolved_workers,
        embedded_total,
        output.display()
    )?;

    // Verification pass: re-read the watermarked flow from the output
    // file (so fresh and resumed runs verify the exact same bytes),
    // re-normalize per stream and detect with the same key — one
    // verdict per stream.
    let reread = csv::read_events(&output)?;
    let marked: Vec<Event> = match &normalizers {
        Some(ns) => reread
            .iter()
            .map(|e| {
                let n = &ns[&e.stream.0];
                Event::new(e.stream, e.sample.with_value(n.normalize(e.sample.value)))
            })
            .collect(),
        None => reread,
    };
    let detect_cfg = Arc::new(
        DetectConfig::new(scheme, Arc::clone(&encoder), wm.len(), 1.0).map_err(CmdError::new)?,
    );
    // The embed engine is gone by now (consumed by `finish`), so the
    // verifier can reuse the same budget — and the same spill file.
    let mut verifier =
        Engine::new(engine_cfg).map_err(|e| CmdError::engine_fault(e.to_string()))?;
    for &id in &stream_order {
        verifier
            .register(id, StreamSpec::Detect(Arc::clone(&detect_cfg)))
            .map_err(|e| CmdError::engine_fault(e.to_string()))?;
    }
    for chunk in marked.chunks(batch) {
        verifier
            .ingest(chunk)
            .map_err(|e| CmdError::engine_fault(e.to_string()))?;
    }
    for outcome in verifier
        .finish()
        .map_err(|e| CmdError::engine_fault(e.to_string()))?
    {
        let report = outcome.report.expect("detect mode");
        let stats = &stats_by_id[&outcome.stream.0];
        writeln!(
            out,
            "stream {}: {} items, {} embedded, bias {}, confidence {:.6} — {}",
            outcome.stream,
            stats.items_in,
            stats.embedded,
            report.bias(),
            report.confidence(),
            verdict(&report)
        )?;
    }
    Ok(())
}

/// Maps a WMSP client failure onto the exit-code taxonomy: socket
/// trouble is I/O (3), everything else is a wire-protocol failure (4).
fn client_err(e: wms_daemon::ClientError) -> CmdError {
    use wms_daemon::ClientError::*;
    match e {
        Io(_) | Closed => CmdError::with_code(e.to_string(), 3),
        Proto(_) | Nack { .. } | Unexpected(_) => CmdError::with_code(e.to_string(), 4),
    }
}

/// Default periodic-checkpoint cadence when a checkpoint file is
/// configured but `--checkpoint-interval-ms` was not given. Five
/// seconds bounds replay-after-crash to a few seconds of traffic while
/// keeping checkpoint I/O negligible against any real ingest rate.
const DEFAULT_CK_INTERVAL_MS: u64 = 5_000;

/// Resolves the `--checkpoint-interval-ms` flag against the presence of
/// a checkpoint file: an absent flag defaults to
/// [`DEFAULT_CK_INTERVAL_MS`] when checkpointing is on (a daemon with a
/// checkpoint file but no cadence would otherwise persist nothing until
/// drain — the unbounded-replay trap), an explicit `0` turns the timer
/// off, and without a checkpoint file there is nowhere to write so the
/// flag is ignored entirely.
fn checkpoint_interval(flag: Option<u64>, has_checkpoint: bool) -> Option<std::time::Duration> {
    if !has_checkpoint {
        return None;
    }
    match flag {
        Some(0) => None,
        Some(ms) => Some(std::time::Duration::from_millis(ms)),
        None => Some(std::time::Duration::from_millis(DEFAULT_CK_INTERVAL_MS)),
    }
}

/// `wms daemon`: run `wmsd`, the long-lived watermarking service. Binds
/// a TCP or unix socket, accepts WMSP batch streams from any number of
/// clients, and writes raw (`--normalize none`) watermarked rows to
/// `--output`. Blocks until a graceful drain (SIGTERM / SIGINT / a
/// client `SHUTDOWN` frame), then verifies the output with a detection
/// pass — the same per-stream verdict lines `wms engine` prints.
pub fn daemon(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    use wms_daemon::{DaemonConfig, Endpoint, Outcome, SchemeIdentity, Server};

    let listen = args.require("listen")?.to_string();
    let output = PathBuf::from(args.require("output")?);
    let key = parse_key(args)?;
    let params = parse_params(args)?;
    let wm = parse_watermark(args)?;
    let workers: usize = args.get_or("workers", 0usize)?;
    let ring_capacity: usize = args.get_or("ring-capacity", 0usize)?;
    let ck_path = args.get("checkpoint").map(PathBuf::from);
    let ck_every: u64 = args.get_or("checkpoint-every", 0u64)?;
    let ck_interval_flag = args.get_parsed::<u64>("checkpoint-interval-ms")?;
    let resume = args.get("resume").map(PathBuf::from);
    let metrics_listen = args.get("metrics").map(str::to_string);
    let queue_depth: usize = args.get_or("queue", 64usize)?;
    let overload = wms_daemon::OverloadPolicy::parse(args.get("overload").unwrap_or("block"))
        .map_err(CmdError::new)?;
    let read_timeout_ms: u64 = args.get_or("read-timeout-ms", 200u64)?;
    let write_timeout_ms: u64 = args.get_or("write-timeout-ms", 5_000u64)?;
    let idle_ms: u64 = args.get_or("idle-ms", 30_000u64)?;
    let stop_after: u64 = args.get_or("stop-after", 0u64)?;
    let max_resident: usize = args.get_or("max-resident", 0usize)?;
    let spill = args.get("spill").map(PathBuf::from);
    let scheme = Scheme::new(params, KeyedHash::md5(key)).map_err(CmdError::new)?;
    let encoder_name = args.get("encoder").unwrap_or("multihash").to_string();
    let encoder = parse_encoder(args, &scheme)?;
    args.finish()?;
    if spill.is_some() && max_resident == 0 {
        return Err(CmdError::new(
            "--spill needs --max-resident N (nothing hibernates without a budget)",
        ));
    }

    let engine_cfg = {
        let mut budget = MemoryBudget::resident(max_resident);
        if let Some(p) = &spill {
            budget = budget.with_spill_file(p.clone());
        }
        let mut cfg = EngineConfig::with_workers(workers).with_budget(budget);
        if ring_capacity > 0 {
            cfg = cfg.with_ring_capacity(ring_capacity);
        }
        cfg
    };
    let fingerprint = scheme.memo_fingerprint();
    let embed = Arc::new(
        EmbedConfig::new(scheme.clone(), Arc::clone(&encoder), wm.clone())
            .map_err(CmdError::new)?,
    );
    let identity = SchemeIdentity {
        encoder: encoder_name,
        wm_bits: wm.bits().to_vec(),
        params: format!("{params:?}"),
        fingerprint,
    };
    let endpoint = Endpoint::parse(&listen).map_err(CmdError::new)?;
    let mut cfg = DaemonConfig::new(
        endpoint,
        output.clone(),
        engine_cfg.clone(),
        embed,
        identity,
    );
    // A bare `--resume F` keeps checkpointing to the same file.
    cfg.checkpoint = ck_path.or_else(|| resume.clone());
    cfg.checkpoint_every = ck_every;
    cfg.checkpoint_interval = checkpoint_interval(ck_interval_flag, cfg.checkpoint.is_some());
    cfg.resume = resume.is_some();
    cfg.metrics_endpoint = match &metrics_listen {
        Some(s) => Some(Endpoint::parse(s).map_err(CmdError::new)?),
        None => None,
    };
    cfg.queue_depth = queue_depth;
    cfg.overload = overload;
    cfg.read_timeout = std::time::Duration::from_millis(read_timeout_ms.max(1));
    cfg.write_timeout = std::time::Duration::from_millis(write_timeout_ms.max(1));
    cfg.idle_timeout = std::time::Duration::from_millis(idle_ms.max(1));
    cfg.hard_stop_after = stop_after;
    let ck_file = cfg.checkpoint.clone();

    let server = Server::bind(cfg)?;
    if cfg!(unix) {
        writeln!(
            out,
            "wmsd listening on {} (acked seq {}); drain with SIGTERM",
            server.local_desc(),
            server.acked_seq()
        )?;
    } else {
        writeln!(
            out,
            "wmsd listening on {} (acked seq {}); drain with a SHUTDOWN frame",
            server.local_desc(),
            server.acked_seq()
        )?;
    }
    if let Some(m) = server.metrics_local_desc() {
        writeln!(out, "wmsd metrics on {m}")?;
    }
    out.flush()?;

    let report = server.run()?;
    if report.outcome == Outcome::HardStopped {
        write!(
            out,
            "stopped after {} batches (crash simulation)",
            report.batches
        )?;
        match &ck_file {
            Some(p) => writeln!(out, "; resume with --resume {}", p.display())?,
            None => writeln!(out, "; no checkpoint was configured")?,
        }
        return Ok(());
    }
    let mut embedded_total = 0u64;
    let mut stats_by_id: HashMap<u64, wms_core::EmbedStats> = HashMap::new();
    let mut stream_order: Vec<wms_engine::StreamId> = Vec::new();
    for outcome in &report.outcomes {
        let stats = outcome.embed_stats.expect("embed mode");
        embedded_total += stats.embedded;
        stream_order.push(outcome.stream);
        stats_by_id.insert(outcome.stream.0, stats);
    }
    writeln!(
        out,
        "wmsd: drained after {} batches / {} events over {} connection(s); \
         {} shed, {} stale; embedded {} bits; wrote {}",
        report.batches,
        report.events,
        report.connections,
        report.shed,
        report.stale,
        embedded_total,
        output.display()
    )?;

    // Verification pass over the output file, exactly as `wms engine
    // --normalize none` would run it: raw values in, one verdict per
    // stream, in first-seen order.
    let marked = csv::read_events(&output)?;
    let detect_cfg = Arc::new(
        DetectConfig::new(scheme, Arc::clone(&encoder), wm.len(), 1.0).map_err(CmdError::new)?,
    );
    let mut verifier =
        Engine::new(engine_cfg).map_err(|e| CmdError::engine_fault(e.to_string()))?;
    for &id in &stream_order {
        verifier
            .register(id, StreamSpec::Detect(Arc::clone(&detect_cfg)))
            .map_err(|e| CmdError::engine_fault(e.to_string()))?;
    }
    for chunk in marked.chunks(1024) {
        verifier
            .ingest(chunk)
            .map_err(|e| CmdError::engine_fault(e.to_string()))?;
    }
    for outcome in verifier
        .finish()
        .map_err(|e| CmdError::engine_fault(e.to_string()))?
    {
        let report = outcome.report.expect("detect mode");
        let stats = &stats_by_id[&outcome.stream.0];
        writeln!(
            out,
            "stream {}: {} items, {} embedded, bias {}, confidence {:.6} — {}",
            outcome.stream,
            stats.items_in,
            stats.embedded,
            report.bias(),
            report.confidence(),
            verdict(&report)
        )?;
    }
    Ok(())
}

/// `wms send`: stream a `stream,value` CSV to a running `wmsd` in WMSP
/// batches. Resumes idempotently: batches the server already acked (per
/// the handshake's `acked_seq`) are skipped client-side, and `STALE`
/// refusals for ones it acked after we journaled are absorbed — so
/// re-running the same `wms send` after a daemon crash-and-resume never
/// double-embeds.
pub fn send(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    use wms_daemon::{BatchReply, Client, Endpoint};

    let connect = args.require("connect")?.to_string();
    let input = PathBuf::from(args.require("input")?);
    let batch: usize = args.get_or("batch", 1024usize)?;
    let drain: bool = args.get_or("drain", false)?;
    let wait_ms: u64 = args.get_or("wait-ms", 5_000u64)?;
    args.finish()?;
    if batch == 0 {
        return Err(CmdError::new("--batch must be >= 1".to_string()));
    }
    let endpoint = Endpoint::parse(&connect).map_err(CmdError::new)?;

    let events = csv::read_events(&input)?;
    if events.is_empty() {
        return Err(CmdError::new(format!(
            "{}: empty event flow",
            input.display()
        )));
    }

    let (mut client, greeting) = Client::connect_retry(
        &endpoint,
        "wms-send",
        std::time::Duration::from_millis(wait_ms),
    )
    .map_err(client_err)?;

    let (mut acked, mut skipped, mut stale, mut retried, mut emitted) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for (i, chunk) in events.chunks(batch).enumerate() {
        let seq = i as u64 + 1;
        if seq <= greeting.acked_seq {
            skipped += 1;
            continue;
        }
        loop {
            match client.send_batch(seq, chunk).map_err(client_err)? {
                BatchReply::Acked { emitted: rows } => {
                    acked += 1;
                    emitted += rows;
                    break;
                }
                BatchReply::Stale => {
                    stale += 1;
                    break;
                }
                BatchReply::Shed => {
                    // Typed backpressure: back off and resend the same
                    // sequence number — the daemon never saw it.
                    retried += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                BatchReply::Gap => {
                    // Impossible for this strictly-ordered sender; a gap
                    // means another client interleaved with us.
                    return Err(CmdError::with_code(
                        format!(
                            "daemon refused batch {seq} as out of order — is another \
                             sender writing to the same daemon?"
                        ),
                        4,
                    ));
                }
                BatchReply::Draining => {
                    return Err(CmdError::with_code(
                        format!("daemon is draining; batch {seq} was not accepted"),
                        4,
                    ));
                }
            }
        }
    }
    write!(
        out,
        "sent {acked} batches ({emitted} rows emitted), {skipped} skipped as already \
         acked, {stale} stale, {retried} shed-and-retried"
    )?;
    if drain {
        let (streams, tail_rows) = client.drain().map_err(client_err)?;
        writeln!(
            out,
            "; drained: {streams} stream(s) finalized, {tail_rows} tail rows"
        )?;
    } else {
        writeln!(out)?;
    }
    Ok(())
}

/// `wms stats`: fetch a running daemon's metrics snapshot over WMSP
/// (`STATS` frame) and print the Prometheus-style text exposition —
/// the socket-agnostic sibling of scraping the `--metrics` endpoint
/// with curl. Works mid-drain: the daemon never refuses `STATS`.
pub fn stats(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    use wms_daemon::{Client, Endpoint};

    let connect = args.require("connect")?.to_string();
    let wait_ms: u64 = args.get_or("wait-ms", 5_000u64)?;
    args.finish()?;
    let endpoint = Endpoint::parse(&connect).map_err(CmdError::new)?;
    let (mut client, _greeting) = Client::connect_retry(
        &endpoint,
        "wms-stats",
        std::time::Duration::from_millis(wait_ms),
    )
    .map_err(client_err)?;
    let text = client.stats().map_err(client_err)?;
    write!(out, "{text}")?;
    Ok(())
}

/// `wms resilience`: run an attack × severity × scheme campaign over a
/// deterministic stream population and print the per-cell verdict table.
pub fn resilience(args: &Args, out: &mut impl std::io::Write) -> Result<(), CmdError> {
    use wms_bench::resilience as res;

    let defaults = res::Campaign::default();
    let grid_flag = args.get("grid").map(str::to_string);
    let attacks_flag = args.get("attacks").map(str::to_string);
    if grid_flag.is_some() && attacks_flag.is_some() {
        return Err(CmdError::new(
            "--grid and --attacks are mutually exclusive (an ad-hoc attack \
             list replaces the named grid entirely)",
        ));
    }
    let grid_name = grid_flag.unwrap_or_else(|| "smoke".into());
    let campaign = res::Campaign {
        items: args.get_or("items", defaults.items)?,
        trials: args.get_or("trials", defaults.trials)?,
        seed: args.get_or("seed", defaults.seed)?,
        kappa: args.get_or("kappa", defaults.kappa)?,
        key: args.get_or("key", defaults.key)?,
        ..defaults
    };
    let encoder_flag = args.get("encoder").unwrap_or("multihash").to_string();
    let path_flag = args.get("path").unwrap_or("both").to_string();
    let json_path = args.get("json").map(PathBuf::from);
    args.finish()?;

    if campaign.items == 0 || campaign.trials == 0 {
        return Err(CmdError::new("--items and --trials must be >= 1"));
    }
    // Specs are separated by `+` (or whitespace) — not commas, which
    // belong to the specs themselves (`epsilon:0.5,0.06`).
    let grid = match &attacks_flag {
        Some(list) => list
            .split(|c: char| c == '+' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .map(wms_attacks::AttackSpec::parse)
            .collect::<Result<Vec<_>, _>>()
            .map_err(CmdError::new)?,
        None => res::grid_by_name(&grid_name).map_err(CmdError::new)?,
    };
    if grid.is_empty() {
        return Err(CmdError::new("empty attack grid"));
    }
    let encoders: Vec<&str> = match encoder_flag.as_str() {
        "all" => vec!["multihash", "initial", "quadres"],
        one => vec![one],
    };
    let paths: Vec<res::PathKind> = match path_flag.as_str() {
        "single" => vec![res::PathKind::Single],
        "engine" => vec![res::PathKind::Engine],
        "both" => vec![res::PathKind::Single, res::PathKind::Engine],
        other => {
            return Err(CmdError::new(format!(
                "unknown path {other:?}; expected single|engine|both"
            )))
        }
    };

    let mut cells = Vec::new();
    for encoder in &encoders {
        for &path in &paths {
            cells
                .extend(res::run_campaign(&campaign, &grid, encoder, path).map_err(CmdError::new)?);
        }
    }
    writeln!(
        out,
        "resilience campaign: {} cells ({} attacks x {} scheme(s) x {} path(s)), \
         {} trials x {} items, seed {}",
        cells.len(),
        grid.len(),
        encoders.len(),
        paths.len(),
        campaign.trials,
        campaign.items,
        campaign.seed
    )?;
    write!(out, "{}", res::render_verdict_table(&cells))?;
    let resilient = cells
        .iter()
        .filter(|c| res::cell_verdict(c) == "RESILIENT")
        .count();
    writeln!(out, "{resilient}/{} cells fully resilient", cells.len())?;
    if let Some(path) = &json_path {
        std::fs::write(path, res::render_resilience_json(&campaign, &cells))?;
        writeln!(out, "wrote {}", path.display())?;
    }
    Ok(())
}

/// Dispatches a parsed command line; returns the process exit code.
pub fn run(args: &Args, out: &mut impl std::io::Write) -> i32 {
    let result = match args.command.as_str() {
        "generate" => generate(args, out),
        "embed" => embed(args, out),
        "detect" => detect(args, out),
        "attack" => attack(args, out),
        "inspect" => inspect(args, out),
        "engine" => engine(args, out),
        "daemon" => daemon(args, out),
        "send" => send(args, out),
        "stats" => stats(args, out),
        "resilience" => resilience(args, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(CmdError::new(format!(
            "unknown command {other:?}; try `wms help`"
        ))),
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            e.code
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn argv(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("wms-cli-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn generate_embed_detect_roundtrip() {
        let data = tmp("data.csv");
        let marked = tmp("marked.csv");
        let cal = tmp("cal.txt");
        let mut out = Vec::new();

        let code = run(
            &argv(&[
                "generate",
                "--kind",
                "irtf",
                "--n",
                "6000",
                "--seed",
                "3",
                "--output",
                data.to_str().unwrap(),
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        let code = run(
            &argv(&[
                "embed",
                "--input",
                data.to_str().unwrap(),
                "--output",
                marked.to_str().unwrap(),
                "--key",
                "1234",
                "--min-active",
                "12",
                "--calibration",
                cal.to_str().unwrap(),
            ]),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        // Untransformed data: detection works even without calibration
        // (re-fit recovers the same map exactly).
        out.clear();
        let code = run(
            &argv(&[
                "detect",
                "--input",
                marked.to_str().unwrap(),
                "--key",
                "1234",
                "--min-active",
                "12",
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("WATERMARK PRESENT"), "{text}");

        // Wrong key finds nothing.
        out.clear();
        let code = run(
            &argv(&[
                "detect",
                "--input",
                marked.to_str().unwrap(),
                "--key",
                "9999",
                "--min-active",
                "12",
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0);
        assert!(text.contains("no watermark evidence"), "{text}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&marked).ok();
        std::fs::remove_file(&cal).ok();
    }

    #[test]
    fn attack_then_detect_with_calibration() {
        let data = tmp("a-data.csv");
        let marked = tmp("a-marked.csv");
        let attacked = tmp("a-attacked.csv");
        let cal = tmp("a-cal.txt");
        let mut out = Vec::new();
        assert_eq!(
            run(
                &argv(&[
                    "generate",
                    "--kind",
                    "irtf",
                    "--n",
                    "8000",
                    "--seed",
                    "5",
                    "--output",
                    data.to_str().unwrap(),
                ]),
                &mut out
            ),
            0
        );
        assert_eq!(
            run(
                &argv(&[
                    "embed",
                    "--input",
                    data.to_str().unwrap(),
                    "--output",
                    marked.to_str().unwrap(),
                    "--key",
                    "7",
                    "--min-active",
                    "12",
                    "--calibration",
                    cal.to_str().unwrap(),
                ]),
                &mut out
            ),
            0
        );
        assert_eq!(
            run(
                &argv(&[
                    "attack",
                    "--input",
                    marked.to_str().unwrap(),
                    "--output",
                    attacked.to_str().unwrap(),
                    "--kind",
                    "sample:2",
                ]),
                &mut out
            ),
            0
        );
        // Sampling can drop the global min/max, so re-fitting would skew
        // the map — the stored calibration keeps detection bit-exact.
        out.clear();
        let code = run(
            &argv(&[
                "detect",
                "--input",
                attacked.to_str().unwrap(),
                "--key",
                "7",
                "--chi",
                "2",
                "--min-active",
                "12",
                "--calibration",
                cal.to_str().unwrap(),
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("WATERMARK PRESENT"), "{text}");
        for p in [&data, &marked, &attacked, &cal] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn inspect_reports_statistics() {
        let data = tmp("i-data.csv");
        let mut out = Vec::new();
        assert_eq!(
            run(
                &argv(&[
                    "generate",
                    "--kind",
                    "gaussian",
                    "--n",
                    "4000",
                    "--seed",
                    "1",
                    "--output",
                    data.to_str().unwrap(),
                ]),
                &mut out
            ),
            0
        );
        out.clear();
        let code = run(
            &argv(&[
                "inspect",
                "--input",
                data.to_str().unwrap(),
                "--degree",
                "12",
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("readings:"), "{text}");
        assert!(text.contains("xi"), "{text}");
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn engine_watermarks_interleaved_streams() {
        let input = tmp("e-events.csv");
        let output = tmp("e-marked.csv");
        // Three interleaved sine streams, 1500 samples each, distinct
        // phases/ranges so per-stream normalization actually differs.
        let mut rows = String::from("# stream,value\n");
        for i in 0..1500 {
            for id in [3u64, 8, 21] {
                let t = i as f64 + id as f64;
                let v = (10.0 * id as f64)
                    + 4.0 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.6 * (t * core::f64::consts::TAU / 17.0).sin();
                rows.push_str(&format!("{id},{v}\n"));
            }
        }
        std::fs::write(&input, rows).unwrap();
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "engine",
                "--input",
                input.to_str().unwrap(),
                "--output",
                output.to_str().unwrap(),
                "--key",
                "4242",
                "--workers",
                "2",
                "--batch",
                "64",
                "--window",
                "256",
                "--degree",
                "3",
                "--min-active",
                "12",
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        for id in [3u64, 8, 21] {
            assert!(text.contains(&format!("stream {id}:")), "{text}");
        }
        assert!(text.contains("WATERMARK PRESENT"), "{text}");
        // Output flow has the same shape as the input.
        let marked = wms_stream::csv::read_events(&output).unwrap();
        assert_eq!(marked.len(), 3 * 1500);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    /// Shared fixture for the checkpoint tests: three interleaved sine
    /// streams written as `stream,value` rows.
    fn write_event_fixture(path: &Path, per_stream: usize) {
        let mut rows = String::from("# stream,value\n");
        for i in 0..per_stream {
            for id in [3u64, 8, 21] {
                let t = i as f64 + id as f64;
                let v = (10.0 * id as f64)
                    + 4.0 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.6 * (t * core::f64::consts::TAU / 17.0).sin();
                rows.push_str(&format!("{id},{v}\n"));
            }
        }
        std::fs::write(path, rows).unwrap();
    }

    fn engine_args<'a>(input: &'a str, output: &'a str, extra: &[&'a str]) -> Vec<String> {
        let mut v: Vec<String> = [
            "engine",
            "--input",
            input,
            "--output",
            output,
            "--key",
            "4242",
            "--workers",
            "2",
            "--batch",
            "64",
            "--window",
            "256",
            "--degree",
            "3",
            "--min-active",
            "12",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    }

    #[test]
    fn engine_kill_and_resume_matches_uninterrupted_run() {
        let input = tmp("ck-events.csv");
        let full = tmp("ck-full.csv");
        let resumed = tmp("ck-resumed.csv");
        let ck = tmp("ck-state.bin");
        write_event_fixture(&input, 1500);
        let (input_s, full_s, resumed_s, ck_s) = (
            input.to_str().unwrap().to_string(),
            full.to_str().unwrap().to_string(),
            resumed.to_str().unwrap().to_string(),
            ck.to_str().unwrap().to_string(),
        );

        // Reference: one uninterrupted run (checkpointing enabled too —
        // taking snapshots must not disturb the output).
        let mut out = Vec::new();
        let code = run(
            &Args::parse(engine_args(
                &input_s,
                &full_s,
                &["--checkpoint-every", "3", "--checkpoint", &ck_s],
            ))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        // Crash run: checkpoint every 3 batches, die after 10 (so the
        // last 10 % 3 = 1 batch of output past the checkpoint must be
        // truncated and replayed on resume).
        out.clear();
        let code = run(
            &Args::parse(engine_args(
                &input_s,
                &resumed_s,
                &[
                    "--checkpoint-every",
                    "3",
                    "--checkpoint",
                    &ck_s,
                    "--stop-after",
                    "10",
                ],
            ))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("crash simulation"), "{text}");
        // The partial output really is shorter than the full one.
        let partial_len = std::fs::metadata(&resumed).unwrap().len();
        assert!(partial_len < std::fs::metadata(&full).unwrap().len());

        // Resume from the checkpoint and let it run to completion.
        out.clear();
        let code = run(
            &Args::parse(engine_args(&input_s, &resumed_s, &["--resume", &ck_s])).unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("resumed from"), "{text}");
        assert!(text.contains("WATERMARK PRESENT"), "{text}");

        // The acceptance bar: the resumed output is byte-identical to
        // the uninterrupted run's.
        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert_eq!(a, b, "resumed output differs from uninterrupted run");

        for p in [&input, &full, &resumed, &ck] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_resume_rejects_wrong_key_checkpoint() {
        let input = tmp("ckk-events.csv");
        let output = tmp("ckk-out.csv");
        let ck = tmp("ckk-state.bin");
        write_event_fixture(&input, 800);
        let (input_s, output_s, ck_s) = (
            input.to_str().unwrap().to_string(),
            output.to_str().unwrap().to_string(),
            ck.to_str().unwrap().to_string(),
        );
        // θ=64 throughout this test so a multibit --text below passes
        // watermark-addressability validation and reaches the meta check.
        let with_theta = |extra: &[&str]| {
            let mut v = engine_args(&input_s, &output_s, extra);
            v.extend(["--theta".to_string(), "64".to_string()]);
            v
        };
        let mut out = Vec::new();
        let code = run(
            &Args::parse(with_theta(&[
                "--checkpoint-every",
                "2",
                "--checkpoint",
                &ck_s,
                "--stop-after",
                "4",
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        // Same parameters, different --key: the snapshot fingerprint no
        // longer matches and the resume is refused with a typed message.
        out.clear();
        let mut args = with_theta(&["--resume", &ck_s]);
        let kpos = args.iter().position(|a| a == "--key").unwrap();
        args[kpos + 1] = "9999".into();
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("fingerprint"), "{text}");

        // Different --batch: row grouping would diverge from the
        // uninterrupted run, so the resume is refused by the meta check.
        out.clear();
        let mut args = with_theta(&["--resume", &ck_s]);
        let bpos = args.iter().position(|a| a == "--batch").unwrap();
        args[bpos + 1] = "32".into();
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("--batch 64"), "{text}");

        // Different watermark payload: would embed a mixed, corrupt
        // mark — the scheme fingerprint cannot see it, the meta can.
        out.clear();
        let args = with_theta(&["--resume", &ck_s, "--text", "MALLORY"]);
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("different watermark"), "{text}");

        // Different encoder, same everything else.
        out.clear();
        let args = with_theta(&["--resume", &ck_s, "--encoder", "initial"]);
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("--encoder multihash"), "{text}");

        // Different non-fingerprinted scheme parameter (δ): the full
        // params identity in the meta refuses it.
        out.clear();
        let args = with_theta(&["--resume", &ck_s, "--radius", "0.02"]);
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("different scheme parameters"), "{text}");

        // An output file shorter than the checkpoint's offset is not the
        // file the checkpoint was taken against: fail fast, don't
        // zero-extend it.
        out.clear();
        std::fs::write(&output, "").unwrap();
        let args = with_theta(&["--resume", &ck_s]);
        let code = run(&Args::parse(args).unwrap(), &mut out);
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 5, "{text}"); // corrupt/incompatible persisted state
        assert!(text.contains("shorter than the checkpoint"), "{text}");

        for p in [&input, &output, &ck] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_checkpoint_flag_validation() {
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "engine",
                "--input",
                "x.csv",
                "--output",
                "y.csv",
                "--key",
                "1",
                "--checkpoint-every",
                "4",
            ]),
            &mut out,
        );
        assert_eq!(code, 2);
        assert!(String::from_utf8_lossy(&out).contains("--checkpoint"));
    }

    #[test]
    fn engine_spill_flag_requires_budget() {
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "engine", "--input", "x.csv", "--output", "y.csv", "--key", "1", "--spill", "s.log",
            ]),
            &mut out,
        );
        assert_eq!(code, 2);
        assert!(String::from_utf8_lossy(&out).contains("--max-resident"));
    }

    #[test]
    fn engine_budgeted_run_is_byte_identical_to_unbudgeted() {
        let input = tmp("mr-events.csv");
        let plain = tmp("mr-plain.csv");
        let budgeted = tmp("mr-budgeted.csv");
        let spill = tmp("mr-spill.log");
        write_event_fixture(&input, 900);
        let (input_s, plain_s, budgeted_s, spill_s) = (
            input.to_str().unwrap().to_string(),
            plain.to_str().unwrap().to_string(),
            budgeted.to_str().unwrap().to_string(),
            spill.to_str().unwrap().to_string(),
        );

        let mut out = Vec::new();
        let code = run(
            &Args::parse(engine_args(&input_s, &plain_s, &[])).unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        // Budget of 1 over 3 streams: nearly every batch evicts and
        // re-adopts sessions through the spill file. Output must not
        // move by a byte, and the verification verdicts must hold.
        out.clear();
        let code = run(
            &Args::parse(engine_args(
                &input_s,
                &budgeted_s,
                &["--max-resident", "1", "--spill", &spill_s],
            ))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("WATERMARK PRESENT"), "{text}");

        let a = std::fs::read(&plain).unwrap();
        let b = std::fs::read(&budgeted).unwrap();
        assert_eq!(a, b, "hibernation changed the output bytes");

        for p in [&input, &plain, &budgeted, &spill] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_kill_and_resume_with_spill_matches_uninterrupted_run() {
        // The checkpoint × hibernation interplay end-to-end: a budgeted
        // run is killed mid-flight (leaving live sessions in the spill
        // file) and resumed under the same budget — against a reference
        // that also hibernates but never stops.
        let input = tmp("mrck-events.csv");
        let full = tmp("mrck-full.csv");
        let resumed = tmp("mrck-resumed.csv");
        let ck = tmp("mrck-state.bin");
        let spill = tmp("mrck-spill.log");
        write_event_fixture(&input, 1200);
        let (input_s, full_s, resumed_s, ck_s, spill_s) = (
            input.to_str().unwrap().to_string(),
            full.to_str().unwrap().to_string(),
            resumed.to_str().unwrap().to_string(),
            ck.to_str().unwrap().to_string(),
            spill.to_str().unwrap().to_string(),
        );
        let budget_flags = |extra: &[&str]| {
            let mut v = vec!["--max-resident", "1", "--spill", spill_s.as_str()];
            v.extend_from_slice(extra);
            v.iter().map(|s| s.to_string()).collect::<Vec<_>>()
        };

        let mut out = Vec::new();
        let flags = budget_flags(&["--checkpoint-every", "3", "--checkpoint", &ck_s]);
        let flags_ref: Vec<&str> = flags.iter().map(String::as_str).collect();
        let code = run(
            &Args::parse(engine_args(&input_s, &full_s, &flags_ref)).unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));

        out.clear();
        let flags = budget_flags(&[
            "--checkpoint-every",
            "3",
            "--checkpoint",
            &ck_s,
            "--stop-after",
            "8",
        ]);
        let flags_ref: Vec<&str> = flags.iter().map(String::as_str).collect();
        let code = run(
            &Args::parse(engine_args(&input_s, &resumed_s, &flags_ref)).unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("crash simulation"), "{text}");

        out.clear();
        let flags = budget_flags(&["--resume", &ck_s]);
        let flags_ref: Vec<&str> = flags.iter().map(String::as_str).collect();
        let code = run(
            &Args::parse(engine_args(&input_s, &resumed_s, &flags_ref)).unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("resumed from"), "{text}");
        assert!(text.contains("WATERMARK PRESENT"), "{text}");

        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&resumed).unwrap();
        assert_eq!(
            a, b,
            "budgeted resume differs from budgeted uninterrupted run"
        );

        for p in [&input, &full, &resumed, &ck, &spill] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn engine_rejects_degenerate_stream() {
        let input = tmp("e-flat.csv");
        let output = tmp("e-flat-out.csv");
        std::fs::write(&input, "1,5.0\n1,5.0\n1,5.0\n").unwrap();
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "engine",
                "--input",
                input.to_str().unwrap(),
                "--output",
                output.to_str().unwrap(),
                "--key",
                "1",
            ]),
            &mut out,
        );
        assert_eq!(code, 2);
        assert!(String::from_utf8_lossy(&out).contains("degenerate"));
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn resilience_runs_custom_attack_list() {
        let json = tmp("r-cells.json");
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "resilience",
                "--attacks",
                "identity+sample:2+epsilon:0.5,0.02",
                "--items",
                "1600",
                "--trials",
                "2",
                "--path",
                "single",
                "--json",
                json.to_str().unwrap(),
            ]),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("identity"), "{text}");
        assert!(text.contains("sample:2"), "{text}");
        assert!(text.contains("epsilon:0.5,0.02"), "{text}");
        assert!(text.contains("RESILIENT"), "{text}");
        let written = std::fs::read_to_string(&json).unwrap();
        assert!(written.contains("wms-bench-resilience/v1"));
        std::fs::remove_file(&json).ok();
    }

    #[test]
    fn resilience_rejects_bad_specs_and_paths() {
        let mut out = Vec::new();
        assert_eq!(
            run(&argv(&["resilience", "--attacks", "melt:4"]), &mut out),
            2
        );
        assert!(String::from_utf8_lossy(&out).contains("unknown attack"));

        out.clear();
        assert_eq!(run(&argv(&["resilience", "--grid", "vast"]), &mut out), 2);
        assert!(String::from_utf8_lossy(&out).contains("unknown grid"));

        out.clear();
        assert_eq!(
            run(
                &argv(&["resilience", "--grid", "paper", "--attacks", "identity"]),
                &mut out
            ),
            2
        );
        assert!(String::from_utf8_lossy(&out).contains("mutually exclusive"));

        out.clear();
        assert_eq!(run(&argv(&["resilience", "--path", "warp"]), &mut out), 2);
        assert!(String::from_utf8_lossy(&out).contains("unknown path"));
    }

    #[test]
    fn helpful_errors() {
        let mut out = Vec::new();
        assert_eq!(run(&argv(&["frobnicate"]), &mut out), 2);
        assert!(String::from_utf8_lossy(&out).contains("unknown command"));

        out.clear();
        assert_eq!(run(&argv(&["embed", "--input", "x"]), &mut out), 2);
        assert!(String::from_utf8_lossy(&out).contains("--output"));

        out.clear();
        assert_eq!(
            run(
                &argv(&["attack", "--input", "x", "--output", "y", "--kind", "melt"]),
                &mut out
            ),
            2
        );
        assert!(String::from_utf8_lossy(&out).contains("unknown attack"));
    }

    #[test]
    fn help_prints_usage() {
        let mut out = Vec::new();
        assert_eq!(run(&argv(&["help"]), &mut out), 0);
        assert!(String::from_utf8_lossy(&out).contains("COMMANDS"));
    }

    #[test]
    fn checkpoint_interval_defaults_on_only_with_a_checkpoint_file() {
        use std::time::Duration;
        // No checkpoint file: the timer flag has nowhere to write.
        assert_eq!(checkpoint_interval(None, false), None);
        assert_eq!(checkpoint_interval(Some(7), false), None);
        // Checkpoint file configured: absent flag gets the production
        // default, explicit 0 opts out, anything else wins verbatim.
        assert_eq!(
            checkpoint_interval(None, true),
            Some(Duration::from_millis(DEFAULT_CK_INTERVAL_MS))
        );
        assert_eq!(checkpoint_interval(Some(0), true), None);
        assert_eq!(
            checkpoint_interval(Some(250), true),
            Some(Duration::from_millis(250))
        );
    }

    #[test]
    fn unknown_flag_rejected() {
        let data = tmp("u-data.csv");
        std::fs::write(&data, "1.0\n2.0\n3.0\n").unwrap();
        let mut out = Vec::new();
        let code = run(
            &argv(&[
                "inspect",
                "--input",
                data.to_str().unwrap(),
                "--radios",
                "0.1",
            ]),
            &mut out,
        );
        assert_eq!(code, 2);
        assert!(String::from_utf8_lossy(&out).contains("--radios"));
        std::fs::remove_file(&data).ok();
    }
}
