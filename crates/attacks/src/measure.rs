//! Measurement scaffolding for the evaluation: label survival across
//! attacks (Figures 6 and 8 plot "labels altered (%)").
//!
//! Detection itself never sees provenance; these helpers do, because the
//! *experimenter* must match extremes in the attacked stream back to the
//! originals to decide whether a label changed.

use wms_core::extremes::{self, Extreme};
use wms_core::transform_estimate::adjusted_degree;
use wms_core::{Label, Labeler, Scheme};
use wms_stream::Sample;

/// An extreme together with its (possibly still warming-up) label.
#[derive(Debug, Clone)]
pub struct LabeledExtreme {
    /// The extreme, positions relative to the scanned stream.
    pub extreme: Extreme,
    /// Position in *original-stream* coordinates (via provenance).
    pub original_pos: u64,
    /// The label, `None` during labeler warm-up.
    pub label: Option<Label>,
}

/// Scans a stream and labels its major extremes of the given degree,
/// exactly as embedder/detector would (batch version over the full
/// slice — equivalent for measurement purposes).
pub fn label_extremes(scheme: &Scheme, samples: &[Sample], degree: usize) -> Vec<LabeledExtreme> {
    let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    let p = &scheme.params;
    let mut labeler = Labeler::new(p.label_len, p.label_stride);
    extremes::scan_major(&values, p.radius, degree)
        .into_iter()
        .map(|e| {
            let raw = scheme.codec.quantize(e.value);
            labeler.push(scheme.label_msb(raw));
            LabeledExtreme {
                original_pos: samples[e.pos].span.midpoint(),
                label: labeler.label(),
                extreme: e,
            }
        })
        .collect()
}

/// Outcome of comparing labels before/after an attack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabelSurvival {
    /// Original major extremes that carried a defined label.
    pub original: usize,
    /// Those matched to an attacked extreme with an identical label.
    pub survived: usize,
    /// Matched but label differs.
    pub relabeled: usize,
    /// No attacked extreme found near the original position.
    pub lost: usize,
}

impl LabelSurvival {
    /// The figures' y-axis: percentage of labels altered (relabeled or
    /// lost entirely).
    pub fn altered_pct(&self) -> f64 {
        if self.original == 0 {
            return 0.0;
        }
        100.0 * (self.relabeled + self.lost) as f64 / self.original as f64
    }
}

/// Compares the labels of `original`'s major extremes with those
/// recomputed from `attacked` (at the transform-adjusted degree ν′ for
/// transform degree χ). Matching is by provenance position within
/// `tolerance` original-stream items.
pub fn label_survival(
    scheme: &Scheme,
    original: &[Sample],
    attacked: &[Sample],
    chi: f64,
    tolerance: u64,
) -> LabelSurvival {
    let orig = label_extremes(scheme, original, scheme.params.degree);
    let att = label_extremes(scheme, attacked, adjusted_degree(scheme.params.degree, chi));
    let mut result = LabelSurvival::default();
    // Two-pointer nearest matching over position-sorted lists.
    let att_positions: Vec<u64> = att.iter().map(|l| l.original_pos).collect();
    let mut j = 0usize;
    for o in &orig {
        let Some(olabel) = o.label else { continue };
        result.original += 1;
        // Advance j to the closest attacked position.
        while j + 1 < att_positions.len()
            && att_positions[j + 1].abs_diff(o.original_pos)
                <= att_positions[j].abs_diff(o.original_pos)
        {
            j += 1;
        }
        let matched = (!att_positions.is_empty())
            .then(|| &att[j])
            .filter(|a| a.original_pos.abs_diff(o.original_pos) <= tolerance);
        match matched {
            Some(a) if a.label == Some(olabel) => result.survived += 1,
            Some(_) => result.relabeled += 1,
            None => result.lost += 1,
        }
    }
    result
}

/// Sensible matching tolerance for a transform of degree χ: a couple of
/// output items' worth of original indices.
pub fn match_tolerance(chi: f64) -> u64 {
    (2.0 * chi).ceil() as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alterations::EpsilonAttack;
    use crate::sampling::UniformSampling;
    use crate::summarization::Summarization;
    use wms_core::{Scheme, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::{samples_from_values, Transform};

    fn params() -> WmParams {
        WmParams {
            degree: 3,
            radius: 0.01,
            label_len: 5,
            label_stride: 1,
            ..WmParams::default()
        }
    }

    fn scheme() -> Scheme {
        Scheme::new(params(), KeyedHash::md5(Key::from_u64(77))).unwrap()
    }

    fn stream(n: usize) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                let amp = 0.15 + 0.25 * (0.5 + 0.5 * (t * 0.002).sin());
                amp * (t * core::f64::consts::TAU / 80.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn labels_computed_in_stream_order() {
        let s = stream(4000);
        let labeled = label_extremes(&scheme(), &s, 3);
        assert!(labeled.len() > 20);
        // Warm-up prefix has no labels; afterwards all defined.
        let first_some = labeled.iter().position(|l| l.label.is_some()).unwrap();
        assert!(labeled[first_some..].iter().all(|l| l.label.is_some()));
        // Positions strictly increase.
        for w in labeled.windows(2) {
            assert!(w[0].original_pos < w[1].original_pos);
        }
    }

    #[test]
    fn identity_attack_preserves_all_labels() {
        let s = stream(4000);
        let r = label_survival(&scheme(), &s, &s, 1.0, match_tolerance(1.0));
        assert!(r.original > 10);
        assert_eq!(r.relabeled, 0, "{r:?}");
        assert_eq!(r.lost, 0, "{r:?}");
        assert_eq!(r.altered_pct(), 0.0);
    }

    #[test]
    fn gentle_epsilon_attack_alters_few_labels() {
        let s = stream(6000);
        let attacked = EpsilonAttack::uniform(0.01, 0.05, 5).apply(&s);
        let r = label_survival(&scheme(), &s, &attacked, 1.0, match_tolerance(1.0));
        assert!(r.original > 20);
        assert!(
            r.altered_pct() < 50.0,
            "1% alteration should not kill most labels: {r:?}"
        );
    }

    #[test]
    fn aggressive_epsilon_attack_alters_more_labels() {
        let s = stream(6000);
        let gentle = EpsilonAttack::uniform(0.02, 0.1, 5).apply(&s);
        let harsh = EpsilonAttack::uniform(0.5, 0.8, 5).apply(&s);
        let rg = label_survival(&scheme(), &s, &gentle, 1.0, match_tolerance(1.0));
        let rh = label_survival(&scheme(), &s, &harsh, 1.0, match_tolerance(1.0));
        assert!(
            rh.altered_pct() > rg.altered_pct(),
            "harsher attack must alter more labels: {} vs {}",
            rh.altered_pct(),
            rg.altered_pct()
        );
    }

    #[test]
    fn sampling_measurement_runs_with_adjusted_degree() {
        let s = stream(8000);
        let attacked = UniformSampling::new(3, 1).apply(&s);
        let r = label_survival(&scheme(), &s, &attacked, 3.0, match_tolerance(3.0));
        assert!(r.original > 20);
        // Some labels survive, some don't — both counters meaningful.
        assert!(r.survived + r.relabeled + r.lost == r.original);
    }

    #[test]
    fn summarization_measurement_runs() {
        let s = stream(8000);
        let attacked = Summarization::new(4).apply(&s);
        let r = label_survival(&scheme(), &s, &attacked, 4.0, match_tolerance(4.0));
        assert!(r.original > 20);
        assert!(r.altered_pct() <= 100.0);
    }

    #[test]
    fn empty_attacked_stream_loses_everything() {
        let s = stream(4000);
        let r = label_survival(&scheme(), &s, &[], 1.0, 4);
        assert!(r.original > 0);
        assert_eq!(r.lost, r.original);
        assert_eq!(r.altered_pct(), 100.0);
    }
}
