//! # wms-attacks
//!
//! Mallory's toolbox: every transform and attack the paper's threat model
//! (§2.1) names, implemented as [`wms_stream::Transform`]s so they compose
//! into pipelines (Figure 10b's combined sampling+summarization, etc.):
//!
//! * A1 [`summarization::Summarization`] (+ min/max aggregate variants);
//! * A2 [`sampling::UniformSampling`] and [`sampling::FixedSampling`];
//! * A3 [`segmentation::Segmentation`] / [`segmentation::RandomSegment`];
//! * A4 [`alterations::LinearChange`];
//! * A5 [`alterations::AdditiveInsertion`];
//! * A6 [`alterations::EpsilonAttack`] (the ε-attack of \[19\]);
//! * §4.1's [`correlation::BucketCountingAttack`];
//! * [`measure`] — provenance-based label-survival measurement used by
//!   the Figure 6/8 experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alterations;
pub mod correlation;
pub mod measure;
pub mod sampling;
pub mod segmentation;
pub mod summarization;

pub use alterations::{AdditiveInsertion, EpsilonAttack, LinearChange};
pub use correlation::{BiasFinding, BucketCountingAttack};
pub use measure::{label_extremes, label_survival, match_tolerance, LabelSurvival};
pub use sampling::{FixedSampling, UniformSampling};
pub use segmentation::{RandomSegment, Segmentation};
pub use summarization::{Aggregate, AggregateSummarization, Summarization};
