//! # wms-attacks
//!
//! Mallory's toolbox: every transform and attack the paper's threat model
//! (§2.1) names, implemented as [`wms_stream::Transform`]s so they compose
//! into pipelines (Figure 10b's combined sampling+summarization, etc.):
//!
//! * A1 [`summarization::Summarization`] (+ min/max aggregate variants);
//! * A2 [`sampling::UniformSampling`] and [`sampling::FixedSampling`];
//! * A3 [`segmentation::Segmentation`] / [`segmentation::RandomSegment`];
//! * A4 [`alterations::LinearChange`];
//! * A5 [`alterations::AdditiveInsertion`];
//! * A6 [`alterations::EpsilonAttack`] (the ε-attack of \[19\]);
//! * §4.1's [`correlation::BucketCountingAttack`];
//! * [`measure`] — provenance-based label-survival measurement used by
//!   the Figure 6/8 experiments;
//! * [`campaign`] — the composable attack-pipeline layer over
//!   multiplexed event flows: the [`Attack`] trait, [`PerStream`]
//!   lifting, [`AttackChain`] composition, flow-level scenarios
//!   ([`SpliceMerge`]) and declarative [`AttackSpec`] severity grids,
//!   all reproducible from one campaign seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alterations;
pub mod campaign;
pub mod correlation;
pub mod measure;
pub mod sampling;
pub mod segmentation;
pub mod summarization;

pub use alterations::{AdditiveInsertion, AdditiveNoise, EpsilonAttack, LinearChange};
pub use campaign::{Attack, AttackChain, AttackSpec, NoAttack, PerStream, SpliceMerge};
pub use correlation::{BiasFinding, BucketCountingAttack};
pub use measure::{label_extremes, label_survival, match_tolerance, LabelSurvival};
pub use sampling::{FixedSampling, UniformSampling};
pub use segmentation::{RandomSegment, SegmentFraction, Segmentation};
pub use summarization::{Aggregate, AggregateSummarization, Summarization};
