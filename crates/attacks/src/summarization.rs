//! Summarization (A1, §2.2): replace every χ consecutive values by their
//! average. The transform most existing watermarking schemes do not
//! survive, and the reason the multi-hash encoding hashes *averages*.

use wms_stream::{renumber, Sample, Span, Transform};

/// Summarization of degree χ.
#[derive(Debug, Clone, Copy)]
pub struct Summarization {
    /// χ ≥ 1: each output value is the mean of χ inputs.
    pub degree: usize,
}

impl Summarization {
    /// Creates the transform; degree 1 is the identity.
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1, "summarization degree must be >= 1");
        Summarization { degree }
    }
}

impl Transform for Summarization {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        if self.degree == 1 {
            return input.to_vec();
        }
        let mut out = Vec::with_capacity(input.len() / self.degree + 1);
        for block in input.chunks(self.degree) {
            let mean = block.iter().map(|s| s.value).sum::<f64>() / block.len() as f64;
            let span = Span {
                start: block.first().unwrap().span.start,
                end: block.last().unwrap().span.end,
            };
            out.push(Sample::derived(0, mean, span));
        }
        renumber(out)
    }

    fn name(&self) -> String {
        format!("summarization({})", self.degree)
    }
}

/// Alternative aggregate summarizations the paper lists as future work
/// (§7): min, max. Provided for the extension experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Arithmetic mean (the paper's summarization).
    Mean,
    /// Block minimum.
    Min,
    /// Block maximum.
    Max,
}

/// Summarization with a selectable aggregate.
#[derive(Debug, Clone, Copy)]
pub struct AggregateSummarization {
    /// Block length χ.
    pub degree: usize,
    /// Aggregate function.
    pub aggregate: Aggregate,
}

impl Transform for AggregateSummarization {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        assert!(self.degree >= 1);
        let mut out = Vec::with_capacity(input.len() / self.degree + 1);
        for block in input.chunks(self.degree) {
            let value = match self.aggregate {
                Aggregate::Mean => block.iter().map(|s| s.value).sum::<f64>() / block.len() as f64,
                Aggregate::Min => block.iter().map(|s| s.value).fold(f64::INFINITY, f64::min),
                Aggregate::Max => block
                    .iter()
                    .map(|s| s.value)
                    .fold(f64::NEG_INFINITY, f64::max),
            };
            let span = Span {
                start: block.first().unwrap().span.start,
                end: block.last().unwrap().span.end,
            };
            out.push(Sample::derived(0, value, span));
        }
        renumber(out)
    }

    fn name(&self) -> String {
        format!("summarization({}, {:?})", self.degree, self.aggregate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_stream::samples_from_values;

    fn stream(values: &[f64]) -> Vec<Sample> {
        samples_from_values(values)
    }

    #[test]
    fn averages_blocks() {
        let s = stream(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = Summarization::new(2).apply(&s);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].value, 1.5);
        assert_eq!(out[1].value, 3.5);
        assert_eq!(out[2].value, 5.5);
    }

    #[test]
    fn tail_block_averages_partially() {
        let s = stream(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = Summarization::new(2).apply(&s);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].value, 5.0);
    }

    #[test]
    fn provenance_covers_block() {
        let s = stream(&[1.0, 2.0, 3.0, 4.0]);
        let out = Summarization::new(2).apply(&s);
        assert_eq!(out[0].span, Span::new(0, 2));
        assert_eq!(out[1].span, Span::new(2, 4));
        assert_eq!(out[1].index, 1);
    }

    #[test]
    fn preserves_global_mean() {
        // With exact block division, summarization preserves the mean.
        let vals: Vec<f64> = (0..120).map(|i| (i as f64 * 0.3).sin()).collect();
        let s = stream(&vals);
        let out = Summarization::new(4).apply(&s);
        let before = vals.iter().sum::<f64>() / vals.len() as f64;
        let after = out.iter().map(|x| x.value).sum::<f64>() / out.len() as f64;
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn degree_one_is_identity() {
        let s = stream(&[0.5, -0.25]);
        assert_eq!(Summarization::new(1).apply(&s), s);
    }

    #[test]
    fn min_max_aggregates() {
        let s = stream(&[3.0, 1.0, 2.0, 7.0]);
        let min = AggregateSummarization {
            degree: 2,
            aggregate: Aggregate::Min,
        }
        .apply(&s);
        assert_eq!(min[0].value, 1.0);
        assert_eq!(min[1].value, 2.0);
        let max = AggregateSummarization {
            degree: 2,
            aggregate: Aggregate::Max,
        }
        .apply(&s);
        assert_eq!(max[0].value, 3.0);
        assert_eq!(max[1].value, 7.0);
    }

    #[test]
    fn composition_of_summarizations_is_summarization() {
        // mean∘mean with aligned blocks = mean of the product degree —
        // the algebra the multi-hash encoding leans on.
        let vals: Vec<f64> = (0..64).map(|i| (i as f64) * 0.01).collect();
        let s = stream(&vals);
        let twice = Summarization::new(2).apply(&Summarization::new(2).apply(&s));
        let once = Summarization::new(4).apply(&s);
        for (a, b) in twice.iter().zip(&once) {
            assert!((a.value - b.value).abs() < 1e-12);
            assert_eq!(a.span, b.span);
        }
    }

    #[test]
    #[should_panic(expected = "degree must be >= 1")]
    fn zero_degree_rejected() {
        Summarization::new(0);
    }
}
