//! Value-alteration attacks: linear changes (A4), additive insertion (A5)
//! and the ε-attacks of \[19\] modelling random alterations (A6).

use wms_math::DetRng;
use wms_stream::{renumber, Sample, Transform};

/// Linear change (A4): `x ↦ a·x + b`. Mallory rescales to keep the trend
/// value while breaking naive detection; defeated by re-normalization.
#[derive(Debug, Clone, Copy)]
pub struct LinearChange {
    /// Multiplicative factor (≠ 0 to preserve any value at all).
    pub scale: f64,
    /// Additive offset.
    pub offset: f64,
}

impl Transform for LinearChange {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        input
            .iter()
            .map(|s| s.with_value(self.scale * s.value + self.offset))
            .collect()
    }

    fn name(&self) -> String {
        format!("linear({}x+{})", self.scale, self.offset)
    }
}

/// Additive insertion (A5): Mallory splices a bounded fraction of new
/// values into the stream. Per §2.1 the new values must follow the host
/// distribution or they become trivially identifiable, so they are
/// resampled from the stream itself with small perturbation.
#[derive(Debug, Clone, Copy)]
pub struct AdditiveInsertion {
    /// Fraction of new items relative to the input length, in [0, 1].
    pub fraction: f64,
    /// Relative perturbation applied to each resampled value.
    pub jitter: f64,
    /// Attack randomness seed.
    pub seed: u64,
}

impl Transform for AdditiveInsertion {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        assert!((0.0..=1.0).contains(&self.fraction), "fraction in [0,1]");
        if input.is_empty() || self.fraction == 0.0 {
            return input.to_vec();
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let n_new = (input.len() as f64 * self.fraction).round() as usize;
        // Choose insertion points, then emit in order.
        let mut insert_after: Vec<usize> =
            (0..n_new).map(|_| rng.below_usize(input.len())).collect();
        insert_after.sort_unstable();
        let mut out = Vec::with_capacity(input.len() + n_new);
        let mut ins_iter = insert_after.into_iter().peekable();
        for (i, s) in input.iter().enumerate() {
            out.push(*s);
            while ins_iter.peek() == Some(&i) {
                ins_iter.next();
                // Resample an existing value, perturb slightly; inherit
                // the local provenance (measurement scaffolding only).
                let donor = input[rng.below_usize(input.len())].value;
                let v = donor * (1.0 + self.jitter * (rng.next_f64() - 0.5) * 2.0);
                out.push(Sample::derived(0, v, s.span));
            }
        }
        renumber(out)
    }

    fn name(&self) -> String {
        format!("additive-insertion({:.0}%)", self.fraction * 100.0)
    }
}

/// Additive uniform noise: a fraction of the values get an independent
/// offset drawn uniformly from `[-amplitude, +amplitude]`. The additive
/// counterpart of the multiplicative [`EpsilonAttack`] (same τ-fraction
/// axis); on (−0.5, 0.5)-normalized data the amplitude is directly
/// comparable to the embedding radius δ. Mallory keeps the fraction
/// below 1: jittering *every* reading visibly degrades the data she is
/// trying to re-sell (§2.1's usability constraint).
#[derive(Debug, Clone, Copy)]
pub struct AdditiveNoise {
    /// Half-width of the uniform noise band (≥ 0).
    pub amplitude: f64,
    /// Fraction of items altered, in [0, 1].
    pub fraction: f64,
    /// Attack randomness seed.
    pub seed: u64,
}

impl AdditiveNoise {
    /// Noise on every item; amplitude 0 is the identity.
    pub fn new(amplitude: f64, seed: u64) -> Self {
        AdditiveNoise::partial(1.0, amplitude, seed)
    }

    /// Noise on a fraction of the items.
    pub fn partial(fraction: f64, amplitude: f64, seed: u64) -> Self {
        assert!(
            amplitude >= 0.0 && amplitude.is_finite(),
            "amplitude must be finite and non-negative"
        );
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        AdditiveNoise {
            amplitude,
            fraction,
            seed,
        }
    }
}

impl Transform for AdditiveNoise {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        if self.amplitude == 0.0 || self.fraction == 0.0 {
            return input.to_vec();
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        input
            .iter()
            .map(|s| {
                if rng.chance(self.fraction) {
                    s.with_value(s.value + rng.uniform(-self.amplitude, self.amplitude))
                } else {
                    *s
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        format!(
            "additive-noise(fraction={:.2}, amp={})",
            self.fraction, self.amplitude
        )
    }
}

/// The uniform-altering ε-attack of \[19\] (§6.1): multiply a fraction of
/// the items by a value uniformly distributed in `(1+μ−ε, 1+μ+ε)`.
/// Models any uninformed random alteration (A6).
#[derive(Debug, Clone, Copy)]
pub struct EpsilonAttack {
    /// Fraction of items altered (the paper's τ axis in Figure 7).
    pub fraction: f64,
    /// Amplitude ε of the multiplicative band.
    pub amplitude: f64,
    /// Mean μ of the band (0 for the unbiased attack).
    pub mean: f64,
    /// Attack randomness seed.
    pub seed: u64,
}

impl EpsilonAttack {
    /// Unbiased attack altering `fraction` of items within ±`amplitude`.
    pub fn uniform(fraction: f64, amplitude: f64, seed: u64) -> Self {
        EpsilonAttack {
            fraction,
            amplitude,
            mean: 0.0,
            seed,
        }
    }
}

impl Transform for EpsilonAttack {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        assert!((0.0..=1.0).contains(&self.fraction), "fraction in [0,1]");
        assert!(self.amplitude >= 0.0, "amplitude must be non-negative");
        let mut rng = DetRng::seed_from_u64(self.seed);
        input
            .iter()
            .map(|s| {
                if rng.chance(self.fraction) {
                    let lo = 1.0 + self.mean - self.amplitude;
                    let hi = 1.0 + self.mean + self.amplitude;
                    s.with_value(s.value * rng.uniform(lo, hi))
                } else {
                    *s
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        format!(
            "epsilon(fraction={:.2}, eps={:.2}, mu={:.2})",
            self.fraction, self.amplitude, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_math::summarize;
    use wms_stream::{samples_from_values, values_of};

    fn stream(n: usize) -> Vec<Sample> {
        samples_from_values(
            &(0..n)
                .map(|i| 0.3 * (i as f64 * 0.05).sin() + 0.1)
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn linear_change_is_affine() {
        let s = stream(10);
        let out = LinearChange {
            scale: 2.0,
            offset: 1.0,
        }
        .apply(&s);
        for (a, b) in out.iter().zip(&s) {
            assert!((a.value - (2.0 * b.value + 1.0)).abs() < 1e-12);
            assert_eq!(a.span, b.span);
        }
    }

    #[test]
    fn additive_insertion_grows_stream() {
        let s = stream(1000);
        let out = AdditiveInsertion {
            fraction: 0.1,
            jitter: 0.01,
            seed: 3,
        }
        .apply(&s);
        assert_eq!(out.len(), 1100);
        // Well-formed indices.
        for (i, smp) in out.iter().enumerate() {
            assert_eq!(smp.index, i as u64);
        }
    }

    #[test]
    fn additive_insertion_preserves_distribution() {
        let s = stream(5000);
        let out = AdditiveInsertion {
            fraction: 0.2,
            jitter: 0.02,
            seed: 9,
        }
        .apply(&s);
        let a = summarize(&values_of(&s)).unwrap();
        let b = summarize(&values_of(&out)).unwrap();
        assert!((a.mean - b.mean).abs() < 0.02, "{} vs {}", a.mean, b.mean);
        assert!((a.std_dev - b.std_dev).abs() < 0.02);
    }

    #[test]
    fn additive_insertion_zero_fraction_is_identity() {
        let s = stream(50);
        assert_eq!(
            AdditiveInsertion {
                fraction: 0.0,
                jitter: 0.1,
                seed: 0
            }
            .apply(&s),
            s
        );
    }

    #[test]
    fn epsilon_attack_alters_expected_fraction() {
        let s = stream(20_000);
        let out = EpsilonAttack::uniform(0.3, 0.1, 5).apply(&s);
        let altered = out
            .iter()
            .zip(&s)
            .filter(|(a, b)| a.value != b.value)
            .count();
        let frac = altered as f64 / s.len() as f64;
        assert!((0.27..0.33).contains(&frac), "altered fraction {frac}");
    }

    #[test]
    fn epsilon_attack_bounded_multiplier() {
        let s = stream(5000);
        let out = EpsilonAttack::uniform(1.0, 0.2, 7).apply(&s);
        for (a, b) in out.iter().zip(&s) {
            if b.value.abs() > 1e-12 {
                let ratio = a.value / b.value;
                assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn epsilon_attack_mean_shift() {
        let s = stream(20_000);
        let out = EpsilonAttack {
            fraction: 1.0,
            amplitude: 0.0,
            mean: 0.05,
            seed: 1,
        }
        .apply(&s);
        for (a, b) in out.iter().zip(&s) {
            assert!((a.value - b.value * 1.05).abs() < 1e-12);
        }
    }

    #[test]
    fn epsilon_zero_everything_is_identity() {
        let s = stream(100);
        assert_eq!(EpsilonAttack::uniform(0.0, 0.5, 3).apply(&s), s);
    }

    #[test]
    fn additive_noise_bounded_and_deterministic() {
        let s = stream(5000);
        let a = AdditiveNoise::new(0.01, 3).apply(&s);
        let b = AdditiveNoise::new(0.01, 3).apply(&s);
        assert_eq!(a, b);
        for (x, y) in a.iter().zip(&s) {
            assert!((x.value - y.value).abs() <= 0.01);
            assert_eq!(x.span, y.span);
        }
        assert_eq!(AdditiveNoise::new(0.0, 3).apply(&s), s);
    }

    #[test]
    fn additive_noise_partial_alters_expected_fraction() {
        let s = stream(20_000);
        let out = AdditiveNoise::partial(0.4, 0.01, 9).apply(&s);
        let altered = out
            .iter()
            .zip(&s)
            .filter(|(a, b)| a.value != b.value)
            .count();
        let frac = altered as f64 / s.len() as f64;
        assert!((0.37..0.43).contains(&frac), "altered fraction {frac}");
        assert_eq!(AdditiveNoise::partial(0.0, 0.5, 1).apply(&s), s);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn additive_noise_rejects_negative_amplitude() {
        AdditiveNoise::new(-0.1, 0);
    }

    #[test]
    fn epsilon_preserves_shape_and_provenance() {
        let s = stream(100);
        let out = EpsilonAttack::uniform(0.5, 0.1, 11).apply(&s);
        assert_eq!(out.len(), s.len());
        for (a, b) in out.iter().zip(&s) {
            assert_eq!(a.span, b.span);
        }
    }
}
