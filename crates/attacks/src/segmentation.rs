//! Segmentation (A3): Mallory re-sells a finite chunk of the stream.
//! Detection must recover the mark from the chunk alone — §5 bounds the
//! minimum useful segment size; Figure 10a measures bias vs segment size.

use wms_math::DetRng;
use wms_stream::{renumber, Sample, Transform};

/// Cuts the contiguous segment `[start, start+len)`.
#[derive(Debug, Clone, Copy)]
pub struct Segmentation {
    /// First index kept.
    pub start: usize,
    /// Number of items kept.
    pub len: usize,
}

impl Transform for Segmentation {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        let end = (self.start + self.len).min(input.len());
        let start = self.start.min(input.len());
        renumber(input[start..end].to_vec())
    }

    fn name(&self) -> String {
        format!("segment({}..{})", self.start, self.start + self.len)
    }
}

/// Cuts a uniformly random segment of the given length.
#[derive(Debug, Clone, Copy)]
pub struct RandomSegment {
    /// Segment length.
    pub len: usize,
    /// Position randomness seed.
    pub seed: u64,
}

impl Transform for RandomSegment {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        if self.len >= input.len() {
            return input.to_vec();
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let start = rng.below_usize(input.len() - self.len + 1);
        Segmentation {
            start,
            len: self.len,
        }
        .apply(input)
    }

    fn name(&self) -> String {
        format!("random-segment({})", self.len)
    }
}

/// Cuts a uniformly random segment covering the given *fraction* of the
/// input — the length-relative form severity sweeps use (a fraction is
/// comparable across streams of different sizes, an absolute length is
/// not).
#[derive(Debug, Clone, Copy)]
pub struct SegmentFraction {
    /// Fraction of the stream kept, in (0, 1].
    pub fraction: f64,
    /// Position randomness seed.
    pub seed: u64,
}

impl SegmentFraction {
    /// Creates the attack; fraction 1 is the identity.
    pub fn new(fraction: f64, seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "segment fraction must be in (0, 1]"
        );
        SegmentFraction { fraction, seed }
    }
}

impl Transform for SegmentFraction {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        let len = ((input.len() as f64 * self.fraction).round() as usize).max(1);
        RandomSegment {
            len,
            seed: self.seed,
        }
        .apply(input)
    }

    fn name(&self) -> String {
        format!("segment-fraction({})", self.fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_stream::samples_from_values;

    fn stream(n: usize) -> Vec<Sample> {
        samples_from_values(&(0..n).map(|i| i as f64).collect::<Vec<_>>())
    }

    #[test]
    fn cuts_exact_segment() {
        let s = stream(100);
        let out = Segmentation { start: 10, len: 5 }.apply(&s);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].value, 10.0);
        assert_eq!(out[0].index, 0, "renumbered");
        assert_eq!(out[0].span.start, 10, "provenance kept");
        assert_eq!(out[4].value, 14.0);
    }

    #[test]
    fn clamps_at_stream_end() {
        let s = stream(10);
        let out = Segmentation { start: 8, len: 5 }.apply(&s);
        assert_eq!(out.len(), 2);
        let empty = Segmentation { start: 20, len: 5 }.apply(&s);
        assert!(empty.is_empty());
    }

    #[test]
    fn random_segment_in_bounds_and_deterministic() {
        let s = stream(1000);
        let a = RandomSegment { len: 100, seed: 4 }.apply(&s);
        let b = RandomSegment { len: 100, seed: 4 }.apply(&s);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let first = a[0].span.start;
        assert!(first + 100 <= 1000);
        // Different seeds usually pick different positions.
        let c = RandomSegment { len: 100, seed: 5 }.apply(&s);
        assert_ne!(a[0].span.start, c[0].span.start);
    }

    #[test]
    fn oversized_random_segment_is_identity() {
        let s = stream(10);
        assert_eq!(RandomSegment { len: 50, seed: 0 }.apply(&s), s);
    }

    #[test]
    fn segment_fraction_scales_with_input() {
        let out = SegmentFraction::new(0.25, 7).apply(&stream(1000));
        assert_eq!(out.len(), 250);
        // Contiguous in the original.
        for w in out.windows(2) {
            assert_eq!(w[1].span.start, w[0].span.start + 1);
        }
        assert_eq!(SegmentFraction::new(1.0, 0).apply(&stream(10)).len(), 10);
        // Tiny streams never collapse to empty.
        assert_eq!(SegmentFraction::new(0.01, 0).apply(&stream(3)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn segment_fraction_rejects_zero() {
        SegmentFraction::new(0.0, 0);
    }
}
