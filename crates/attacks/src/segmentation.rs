//! Segmentation (A3): Mallory re-sells a finite chunk of the stream.
//! Detection must recover the mark from the chunk alone — §5 bounds the
//! minimum useful segment size; Figure 10a measures bias vs segment size.

use wms_math::DetRng;
use wms_stream::{renumber, Sample, Transform};

/// Cuts the contiguous segment `[start, start+len)`.
#[derive(Debug, Clone, Copy)]
pub struct Segmentation {
    /// First index kept.
    pub start: usize,
    /// Number of items kept.
    pub len: usize,
}

impl Transform for Segmentation {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        let end = (self.start + self.len).min(input.len());
        let start = self.start.min(input.len());
        renumber(input[start..end].to_vec())
    }

    fn name(&self) -> String {
        format!("segment({}..{})", self.start, self.start + self.len)
    }
}

/// Cuts a uniformly random segment of the given length.
#[derive(Debug, Clone, Copy)]
pub struct RandomSegment {
    /// Segment length.
    pub len: usize,
    /// Position randomness seed.
    pub seed: u64,
}

impl Transform for RandomSegment {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        if self.len >= input.len() {
            return input.to_vec();
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let start = rng.below_usize(input.len() - self.len + 1);
        Segmentation {
            start,
            len: self.len,
        }
        .apply(input)
    }

    fn name(&self) -> String {
        format!("random-segment({})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_stream::samples_from_values;

    fn stream(n: usize) -> Vec<Sample> {
        samples_from_values(&(0..n).map(|i| i as f64).collect::<Vec<_>>())
    }

    #[test]
    fn cuts_exact_segment() {
        let s = stream(100);
        let out = Segmentation { start: 10, len: 5 }.apply(&s);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].value, 10.0);
        assert_eq!(out[0].index, 0, "renumbered");
        assert_eq!(out[0].span.start, 10, "provenance kept");
        assert_eq!(out[4].value, 14.0);
    }

    #[test]
    fn clamps_at_stream_end() {
        let s = stream(10);
        let out = Segmentation { start: 8, len: 5 }.apply(&s);
        assert_eq!(out.len(), 2);
        let empty = Segmentation { start: 20, len: 5 }.apply(&s);
        assert!(empty.is_empty());
    }

    #[test]
    fn random_segment_in_bounds_and_deterministic() {
        let s = stream(1000);
        let a = RandomSegment { len: 100, seed: 4 }.apply(&s);
        let b = RandomSegment { len: 100, seed: 4 }.apply(&s);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let first = a[0].span.start;
        assert!(first + 100 <= 1000);
        // Different seeds usually pick different positions.
        let c = RandomSegment { len: 100, seed: 5 }.apply(&s);
        assert_ne!(a[0].span.start, c[0].span.start);
    }

    #[test]
    fn oversized_random_segment_is_identity() {
        let s = stream(10);
        assert_eq!(RandomSegment { len: 50, seed: 0 }.apply(&s), s);
    }
}
