//! Mallory's bucket-counting correlation attack (§4.1).
//!
//! Against the *initial* scheme of §3.2, the embedding bit position is a
//! function of `msb(ε, β)` alone, so every extreme in the same msb bucket
//! hides its bit at the same position — and for a one-bit `true` mark,
//! with the same value. Mallory: bucket the extremes by msb, count per
//! low-band bit position how often it is set, flag positions whose
//! frequency deviates from ½, randomize them.
//!
//! Against the §4.1 *labeled* scheme the positions vary per extreme, no
//! per-bucket bias exists, and the attack finds nothing — that contrast
//! is the `correlation_attack` ablation experiment.

use wms_core::extremes;
use wms_core::FixedPointCodec;
use wms_math::DetRng;
use wms_stream::{Sample, Transform};

/// One statistically suspicious (msb bucket, bit position) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiasFinding {
    /// msb bucket the bias was observed in.
    pub msb: u64,
    /// Bit position (from LSB of the magnitude) showing the bias.
    pub bit: u32,
    /// Observed set-frequency at that position.
    pub frequency: f64,
    /// Number of observations behind the estimate.
    pub observations: usize,
}

/// The bucket-counting attack. All parameters are Mallory's *guesses* —
/// he knows none of the secret scheme parameters.
#[derive(Debug, Clone, Copy)]
pub struct BucketCountingAttack {
    /// Guessed characteristic-subset radius δ̂.
    pub radius: f64,
    /// Guessed major-extreme degree ν̂.
    pub degree: usize,
    /// Guessed selection msb width β̂.
    pub msb_bits: u32,
    /// Guessed embedding band width α̂.
    pub band_bits: u32,
    /// Guessed value representation width.
    pub value_bits: u32,
    /// |frequency − ½| beyond which a position is deemed mark-carrying.
    pub bias_threshold: f64,
    /// Minimum observations per bucket before it is judged.
    pub min_observations: usize,
    /// Randomization seed.
    pub seed: u64,
}

impl Default for BucketCountingAttack {
    fn default() -> Self {
        BucketCountingAttack {
            radius: 0.01,
            degree: 3,
            msb_bits: 3,
            band_bits: 16,
            value_bits: 32,
            // With θ=2 roughly half the counted subset items are carriers,
            // pushing a marked position's frequency to ~0.75 (guards to
            // ~0.25): a 0.2 threshold separates that cleanly from the
            // ~0.5 of unmarked positions.
            bias_threshold: 0.2,
            min_observations: 8,
            seed: 0xBAD,
        }
    }
}

impl BucketCountingAttack {
    /// Phase 1: the statistical analysis — per (msb bucket, bit position)
    /// set-frequencies over the characteristic subsets of all extremes.
    pub fn analyze(&self, values: &[f64]) -> Vec<BiasFinding> {
        let codec = FixedPointCodec::new(self.value_bits);
        let found = extremes::scan_major(values, self.radius, self.degree);
        // (msb bucket → per-position [set, total] counters).
        let buckets = 1usize << self.msb_bits;
        let mut set = vec![vec![0usize; self.band_bits as usize]; buckets];
        let mut tot = vec![0usize; buckets];
        for e in &found {
            let msb = codec.msb_abs(codec.quantize(e.value), self.msb_bits) as usize;
            for &v in &values[e.subset.clone()] {
                let raw = codec.quantize(v);
                tot[msb] += 1;
                for bit in 0..self.band_bits {
                    if codec.get_bit(raw, bit) {
                        set[msb][bit as usize] += 1;
                    }
                }
            }
        }
        let mut findings = Vec::new();
        for (msb, counts) in set.iter().enumerate() {
            if tot[msb] < self.min_observations {
                continue;
            }
            for (bit, &s) in counts.iter().enumerate() {
                let freq = s as f64 / tot[msb] as f64;
                if (freq - 0.5).abs() > self.bias_threshold {
                    findings.push(BiasFinding {
                        msb: msb as u64,
                        bit: bit as u32,
                        frequency: freq,
                        observations: tot[msb],
                    });
                }
            }
        }
        findings
    }
}

impl Transform for BucketCountingAttack {
    /// Phase 2: randomize every flagged (bucket, position) across the
    /// whole stream.
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        let values: Vec<f64> = input.iter().map(|s| s.value).collect();
        let findings = self.analyze(&values);
        if findings.is_empty() {
            return input.to_vec();
        }
        let codec = FixedPointCodec::new(self.value_bits);
        let mut rng = DetRng::seed_from_u64(self.seed);
        input
            .iter()
            .map(|s| {
                let mut raw = codec.quantize(s.value);
                let msb = codec.msb_abs(raw, self.msb_bits);
                let mut touched = false;
                for f in &findings {
                    if f.msb == msb {
                        raw = codec.set_bit(raw, f.bit, rng.chance(0.5));
                        touched = true;
                    }
                }
                if touched {
                    s.with_value(codec.dequantize(raw))
                } else {
                    *s
                }
            })
            .collect()
    }

    fn name(&self) -> String {
        format!(
            "bucket-counting(threshold={}, band={})",
            self.bias_threshold, self.band_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wms_core::encoding::initial::{InitialEncoder, UnlabeledInitialEncoder};
    use wms_core::{Detector, Embedder, Scheme, TransformHint, Watermark, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn params() -> WmParams {
        WmParams {
            window: 256,
            degree: 3,
            radius: 0.01,
            max_subset: 4,
            label_len: 4,
            label_stride: 1,
            ..WmParams::default()
        }
    }

    fn scheme() -> Scheme {
        Scheme::new(params(), KeyedHash::md5(Key::from_u64(2024))).unwrap()
    }

    /// Oscillating stream with micro-jitter: a strictly periodic signal
    /// would repeat identical raw values, whose fixed low bits look like
    /// "bias" to the bucket counter (a genuine property of low-entropy
    /// data, but not what this ablation isolates).
    fn stream(n: usize) -> Vec<Sample> {
        let mut rng = wms_math::DetRng::seed_from_u64(99);
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                0.35 * (t * core::f64::consts::TAU / 60.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 17.0).sin()
                    + 1e-4 * rng.uniform(-1.0, 1.0)
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn finds_bias_in_unlabeled_scheme() {
        let (wmed, stats) = Embedder::embed_stream(
            scheme(),
            Arc::new(UnlabeledInitialEncoder),
            Watermark::single(true),
            &stream(6000),
        )
        .unwrap();
        assert!(stats.embedded > 20);
        let values: Vec<f64> = wmed.iter().map(|s| s.value).collect();
        let findings = BucketCountingAttack::default().analyze(&values);
        assert!(
            !findings.is_empty(),
            "the §3.2 correlation must be statistically visible"
        );
    }

    /// §4.3's point, demonstrated: the *initial* encoding leaves value-
    /// pattern artifacts (guard/payload structure, upper-bit harmonizing)
    /// that a bucket counter can see even when labeling hides the
    /// position correlation; the multi-hash alterations look random.
    #[test]
    fn multihash_hides_alterations_from_bucket_counting() {
        let p = WmParams {
            min_active: Some(4),
            ..params()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(2024))).unwrap();
        let (wmed, stats) = Embedder::embed_stream(
            s,
            Arc::new(wms_core::encoding::multihash::MultiHashEncoder),
            Watermark::single(true),
            &stream(6000),
        )
        .unwrap();
        assert!(stats.embedded > 20);
        let values: Vec<f64> = wmed.iter().map(|s| s.value).collect();
        let findings = BucketCountingAttack::default().analyze(&values);
        assert!(
            findings.is_empty(),
            "multi-hash alterations must look random; found {findings:?}"
        );
    }

    #[test]
    fn attack_strips_unlabeled_mark() {
        let (wmed, _) = Embedder::embed_stream(
            scheme(),
            Arc::new(UnlabeledInitialEncoder),
            Watermark::single(true),
            &stream(6000),
        )
        .unwrap();
        let before = Detector::detect_stream(
            scheme(),
            Arc::new(UnlabeledInitialEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        let attacked = BucketCountingAttack::default().apply(&wmed);
        let after = Detector::detect_stream(
            scheme(),
            Arc::new(UnlabeledInitialEncoder),
            1,
            &attacked,
            TransformHint::None,
        )
        .unwrap();
        assert!(before.bias() > 20, "mark present before: {}", before.bias());
        assert!(
            after.bias() < before.bias() / 4,
            "attack should collapse the bias: {} -> {}",
            before.bias(),
            after.bias()
        );
    }

    #[test]
    fn attack_leaves_multihash_mark_intact() {
        use wms_core::encoding::multihash::MultiHashEncoder;
        let p = WmParams {
            min_active: Some(4),
            ..params()
        };
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(2024))).unwrap();
        let (wmed, _) = Embedder::embed_stream(
            s.clone(),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &stream(6000),
        )
        .unwrap();
        let before = Detector::detect_stream(
            s.clone(),
            Arc::new(MultiHashEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        let attacked = BucketCountingAttack::default().apply(&wmed);
        let after = Detector::detect_stream(
            s,
            Arc::new(MultiHashEncoder),
            1,
            &attacked,
            TransformHint::None,
        )
        .unwrap();
        assert!(before.bias() > 20);
        assert!(
            after.bias() * 2 >= before.bias(),
            "multi-hash mark should survive: {} -> {}",
            before.bias(),
            after.bias()
        );
    }

    /// The labeled initial encoding sits in between: the attack may find
    /// residual value-pattern bias, but randomizing those positions does
    /// not collapse the mark the way it does for the unlabeled scheme,
    /// because embedding positions vary per extreme.
    #[test]
    fn labeled_initial_mark_degrades_gracefully() {
        let (wmed, _) = Embedder::embed_stream(
            scheme(),
            Arc::new(InitialEncoder),
            Watermark::single(true),
            &stream(6000),
        )
        .unwrap();
        let before = Detector::detect_stream(
            scheme(),
            Arc::new(InitialEncoder),
            1,
            &wmed,
            TransformHint::None,
        )
        .unwrap();
        let attacked = BucketCountingAttack::default().apply(&wmed);
        let after = Detector::detect_stream(
            scheme(),
            Arc::new(InitialEncoder),
            1,
            &attacked,
            TransformHint::None,
        )
        .unwrap();
        assert!(before.bias() > 20);
        assert!(
            after.bias() * 4 >= before.bias(),
            "labeled initial mark should mostly survive: {} -> {}",
            before.bias(),
            after.bias()
        );
    }

    #[test]
    fn no_findings_means_identity() {
        let s = stream(2000);
        let out = BucketCountingAttack::default().apply(&s);
        assert_eq!(out, s, "clean data should not be touched");
    }
}
