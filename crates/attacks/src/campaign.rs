//! Composable attack campaigns over multiplexed event flows.
//!
//! The transforms in this crate operate on one stream at a time
//! ([`wms_stream::Transform`]); a production engine serves *flows* — many
//! [`StreamId`]-tagged streams interleaved on one wire. This module is
//! the bridge: an [`Attack`] is any whole-flow adversarial operation, and
//! the combinators here lift every single-stream transform onto flows
//! ([`PerStream`]), compose attacks into pipelines ([`AttackChain`]), and
//! name parameterized severity points declaratively ([`AttackSpec`]) so
//! evaluation grids are data, not code.
//!
//! ## Reproducibility
//!
//! An attack never owns randomness: [`Attack::attack`] receives a
//! [`DetRng`] that the campaign driver seeds deterministically per cell.
//! [`PerStream`] draws one sub-seed per stream from it and [`AttackChain`]
//! forks one generator per stage, so a campaign replays bit-identically
//! from its seed regardless of how stages are nested — the property the
//! CI resilience gate's exact-match floors rely on.

use crate::alterations::{AdditiveNoise, EpsilonAttack};
use crate::sampling::{FixedSampling, UniformSampling};
use crate::segmentation::SegmentFraction;
use crate::summarization::Summarization;
use wms_math::DetRng;
use wms_stream::events::{demux, mux};
use wms_stream::{renumber, Event, Sample, StreamId, Transform};

/// A whole-flow adversarial operation.
///
/// Implementations must output a well-formed flow: for every stream
/// present in the output, sample indices are consecutive from 0 (in flow
/// order) and values are finite. The stream *set* may change — attacks
/// such as [`SpliceMerge`] deliberately destroy stream identity.
pub trait Attack {
    /// Applies the attack. `rng` is the cell's deterministic randomness;
    /// implementations draw from it instead of owning seeds.
    fn attack(&self, flow: &[Event], rng: &mut DetRng) -> Vec<Event>;

    /// Human-readable name for verdict tables and reports.
    fn name(&self) -> String;
}

/// The identity attack (baseline campaign cell).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoAttack;

impl Attack for NoAttack {
    fn attack(&self, flow: &[Event], _rng: &mut DetRng) -> Vec<Event> {
        flow.to_vec()
    }

    fn name(&self) -> String {
        "identity".into()
    }
}

/// Lifts a single-stream [`Transform`] onto flows: the flow is demuxed in
/// first-touch order, the transform is built once per stream with a
/// sub-seed drawn from the campaign RNG, applied, and the results are
/// re-interleaved round-robin.
pub struct PerStream {
    label: String,
    build: Box<dyn Fn(u64) -> Box<dyn Transform> + Send + Sync>,
}

impl PerStream {
    /// Wraps a seed-taking transform factory. The label should be the
    /// transform's display name (factories are only invoked at attack
    /// time, when the per-stream seeds exist).
    pub fn new(
        label: impl Into<String>,
        build: impl Fn(u64) -> Box<dyn Transform> + Send + Sync + 'static,
    ) -> Self {
        PerStream {
            label: label.into(),
            build: Box::new(build),
        }
    }

    /// Lifts a deterministic (seed-free) transform.
    pub fn fixed(t: impl Transform + Clone + Send + Sync + 'static) -> Self {
        let label = t.name();
        PerStream::new(label, move |_| Box::new(t.clone()))
    }
}

impl Attack for PerStream {
    fn attack(&self, flow: &[Event], rng: &mut DetRng) -> Vec<Event> {
        let streams = demux(flow);
        let attacked: Vec<(StreamId, Vec<Sample>)> = streams
            .into_iter()
            .map(|(id, samples)| {
                let t = (self.build)(rng.next_u64());
                (id, t.apply(&samples))
            })
            .collect();
        mux(&attacked)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Left-to-right composition of attacks — Mallory's full pipeline (the
/// flow analogue of [`wms_stream::Pipeline`]). Each stage runs on a
/// forked RNG, so *how many draws* a stage makes internally never leaks
/// into the next stage's randomness. (Adding, removing or reordering
/// stages still reseeds everything downstream — each fork consumes one
/// draw from the chain's generator.)
#[derive(Default)]
pub struct AttackChain {
    stages: Vec<Box<dyn Attack>>,
}

impl AttackChain {
    /// Empty chain (acts as identity).
    pub fn new() -> Self {
        AttackChain { stages: Vec::new() }
    }

    /// Appends a stage; builder style.
    pub fn then(mut self, a: impl Attack + 'static) -> Self {
        self.stages.push(Box::new(a));
        self
    }

    /// Appends a boxed stage.
    pub fn then_boxed(mut self, a: Box<dyn Attack>) -> Self {
        self.stages.push(a);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Attack for AttackChain {
    fn attack(&self, flow: &[Event], rng: &mut DetRng) -> Vec<Event> {
        let mut cur = flow.to_vec();
        for stage in &self.stages {
            let mut stage_rng = rng.fork();
            cur = stage.attack(&cur, &mut stage_rng);
        }
        cur
    }

    fn name(&self) -> String {
        if self.stages.is_empty() {
            return "chain()".into();
        }
        let names: Vec<String> = self.stages.iter().map(|s| s.name()).collect();
        format!("chain({})", names.join(" -> "))
    }
}

/// Stream splice/merge: Mallory cuts every stream of the flow into
/// `segment`-length chunks and splices them — in random order — into one
/// merged output stream, destroying stream identity entirely. The merged
/// stream reuses the id of the flow's first stream (Mallory re-sells it
/// as "a" sensor stream; inventing a fresh id would leak the attack).
///
/// Values are untouched, so the watermark's carriers survive inside each
/// chunk; only labels near splice boundaries are disturbed.
#[derive(Debug, Clone, Copy)]
pub struct SpliceMerge {
    /// Chunk length in items (≥ 1).
    pub segment: usize,
}

impl SpliceMerge {
    /// Creates the attack.
    pub fn new(segment: usize) -> Self {
        assert!(segment >= 1, "splice segment must be >= 1");
        SpliceMerge { segment }
    }
}

impl Attack for SpliceMerge {
    fn attack(&self, flow: &[Event], rng: &mut DetRng) -> Vec<Event> {
        let streams = demux(flow);
        let Some(output_id) = streams.first().map(|(id, _)| *id) else {
            return Vec::new();
        };
        // Chunk every stream, then emit chunks in random order.
        let mut chunks: Vec<&[Sample]> = streams
            .iter()
            .flat_map(|(_, samples)| samples.chunks(self.segment))
            .collect();
        rng.shuffle(&mut chunks);
        let merged: Vec<Sample> = chunks.into_iter().flatten().copied().collect();
        renumber(merged)
            .into_iter()
            .map(|s| Event::new(output_id, s))
            .collect()
    }

    fn name(&self) -> String {
        format!("splice-merge({})", self.segment)
    }
}

/// Declarative attack specification: one severity point of one attack
/// family. The unit of campaign grids, parseable from the CLI's compact
/// `kind:params` syntax, buildable into a runnable [`Attack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// No attack (baseline cell).
    Identity,
    /// Uniform random sampling of degree χ (A2).
    Sample {
        /// Sampling degree χ ≥ 1.
        degree: usize,
    },
    /// Fixed random sampling of degree χ (A2 variant).
    FixedSample {
        /// Sampling degree χ ≥ 1.
        degree: usize,
    },
    /// Mean summarization of degree χ (A1).
    Summarize {
        /// Summarization degree χ ≥ 1.
        degree: usize,
    },
    /// Random contiguous segment keeping `fraction` of each stream (A3).
    Segment {
        /// Fraction kept, in (0, 1].
        fraction: f64,
    },
    /// The ε-attack of \[19\] (A6): `fraction` of the items multiplied by
    /// a factor uniform in `1 ± amplitude`.
    Epsilon {
        /// Fraction of items altered.
        fraction: f64,
        /// Multiplicative band half-width ε.
        amplitude: f64,
    },
    /// Combined scenario: additive uniform noise of the given amplitude
    /// on half the items (the ε-attack's τ = 0.5 default) followed by
    /// uniform resampling of degree χ — the "launder then shrink"
    /// pipeline a data thief actually runs.
    NoiseResample {
        /// Additive noise half-width.
        amplitude: f64,
        /// Resampling degree χ ≥ 1.
        degree: usize,
    },
    /// Stream splice/merge across ids ([`SpliceMerge`]).
    Splice {
        /// Chunk length in items.
        segment: usize,
    },
}

impl AttackSpec {
    /// Parses the compact spec syntax used by grids and the CLI:
    /// `identity`, `sample:K`, `fixed-sample:K`, `summarize:K`,
    /// `segment:FRAC`, `epsilon:FRAC,AMP`, `noise-resample:AMP,K`,
    /// `splice:LEN`.
    pub fn parse(s: &str) -> Result<AttackSpec, String> {
        fn num<T: std::str::FromStr>(what: &str, raw: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            raw.parse::<T>().map_err(|e| format!("bad {what}: {e}"))
        }
        if s == "identity" {
            return Ok(AttackSpec::Identity);
        }
        let Some((kind, params)) = s.split_once(':') else {
            return Err(format!("malformed attack spec {s:?}; expected kind:params"));
        };
        let spec = match kind {
            "sample" => AttackSpec::Sample {
                degree: num("degree", params)?,
            },
            "fixed-sample" => AttackSpec::FixedSample {
                degree: num("degree", params)?,
            },
            "summarize" => AttackSpec::Summarize {
                degree: num("degree", params)?,
            },
            "segment" => AttackSpec::Segment {
                fraction: num("fraction", params)?,
            },
            "epsilon" => {
                let (f, a) = params
                    .split_once(',')
                    .ok_or_else(|| "epsilon:FRAC,AMP".to_string())?;
                AttackSpec::Epsilon {
                    fraction: num("fraction", f)?,
                    amplitude: num("amplitude", a)?,
                }
            }
            "noise-resample" => {
                let (a, d) = params
                    .split_once(',')
                    .ok_or_else(|| "noise-resample:AMP,DEGREE".to_string())?;
                AttackSpec::NoiseResample {
                    amplitude: num("amplitude", a)?,
                    degree: num("degree", d)?,
                }
            }
            "splice" => AttackSpec::Splice {
                segment: num("segment", params)?,
            },
            other => return Err(format!("unknown attack {other:?}")),
        };
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), String> {
        match *self {
            AttackSpec::Sample { degree }
            | AttackSpec::FixedSample { degree }
            | AttackSpec::Summarize { degree }
            | AttackSpec::NoiseResample { degree, .. }
                if degree < 1 =>
            {
                Err("degree must be >= 1".into())
            }
            AttackSpec::Segment { fraction } if !(fraction > 0.0 && fraction <= 1.0) => {
                Err("segment fraction must be in (0, 1]".into())
            }
            AttackSpec::Epsilon {
                fraction,
                amplitude,
            } if !((0.0..=1.0).contains(&fraction)
                && amplitude >= 0.0
                && amplitude.is_finite()) =>
            {
                Err("epsilon needs fraction in [0,1] and finite amplitude >= 0".into())
            }
            AttackSpec::NoiseResample { amplitude, .. }
                if !(amplitude >= 0.0 && amplitude.is_finite()) =>
            {
                Err("noise amplitude must be finite and >= 0".into())
            }
            AttackSpec::Splice { segment } if segment < 1 => {
                Err("splice segment must be >= 1".into())
            }
            _ => Ok(()),
        }
    }

    /// The canonical `kind:params` id — also what [`parse`](Self::parse)
    /// round-trips, and the cell key of `BENCH_resilience.json`.
    pub fn id(&self) -> String {
        match *self {
            AttackSpec::Identity => "identity".into(),
            AttackSpec::Sample { degree } => format!("sample:{degree}"),
            AttackSpec::FixedSample { degree } => format!("fixed-sample:{degree}"),
            AttackSpec::Summarize { degree } => format!("summarize:{degree}"),
            AttackSpec::Segment { fraction } => format!("segment:{fraction}"),
            AttackSpec::Epsilon {
                fraction,
                amplitude,
            } => format!("epsilon:{fraction},{amplitude}"),
            AttackSpec::NoiseResample { amplitude, degree } => {
                format!("noise-resample:{amplitude},{degree}")
            }
            AttackSpec::Splice { segment } => format!("splice:{segment}"),
        }
    }

    /// Attack family (the grid's first axis).
    pub fn family(&self) -> &'static str {
        match self {
            AttackSpec::Identity => "identity",
            AttackSpec::Sample { .. } => "sampling",
            AttackSpec::FixedSample { .. } => "fixed-sampling",
            AttackSpec::Summarize { .. } => "summarization",
            AttackSpec::Segment { .. } => "segmentation",
            AttackSpec::Epsilon { .. } => "epsilon",
            AttackSpec::NoiseResample { .. } => "noise-resample",
            AttackSpec::Splice { .. } => "splice",
        }
    }

    /// Severity scalar (the grid's second axis): the value a sweep plots
    /// on x. Higher is always harsher within one family.
    pub fn severity(&self) -> f64 {
        match *self {
            AttackSpec::Identity => 0.0,
            AttackSpec::Sample { degree }
            | AttackSpec::FixedSample { degree }
            | AttackSpec::Summarize { degree } => degree as f64,
            // Keeping less of the stream is harsher.
            AttackSpec::Segment { fraction } => 1.0 - fraction,
            AttackSpec::Epsilon { amplitude, .. } => amplitude,
            AttackSpec::NoiseResample { amplitude, .. } => amplitude,
            // Shorter chunks mean more label-breaking splice points.
            AttackSpec::Splice { segment } => 1.0 / segment as f64,
        }
    }

    /// Transform degree χ detection should assume after this attack (the
    /// stream-length contraction; 1 when the attack preserves length).
    pub fn chi(&self) -> f64 {
        match *self {
            AttackSpec::Sample { degree }
            | AttackSpec::FixedSample { degree }
            | AttackSpec::Summarize { degree }
            | AttackSpec::NoiseResample { degree, .. } => degree as f64,
            _ => 1.0,
        }
    }

    /// Builds the runnable attack.
    pub fn build(&self) -> Box<dyn Attack> {
        match *self {
            AttackSpec::Identity => Box::new(NoAttack),
            AttackSpec::Sample { degree } => Box::new(PerStream::new(
                format!("uniform-sampling({degree})"),
                move |seed| Box::new(UniformSampling::new(degree, seed)),
            )),
            AttackSpec::FixedSample { degree } => {
                Box::new(PerStream::fixed(FixedSampling::new(degree)))
            }
            AttackSpec::Summarize { degree } => {
                Box::new(PerStream::fixed(Summarization::new(degree)))
            }
            AttackSpec::Segment { fraction } => Box::new(PerStream::new(
                format!("segment-fraction({fraction})"),
                move |seed| Box::new(SegmentFraction::new(fraction, seed)),
            )),
            AttackSpec::Epsilon {
                fraction,
                amplitude,
            } => Box::new(PerStream::new(
                format!("epsilon({fraction},{amplitude})"),
                move |seed| Box::new(EpsilonAttack::uniform(fraction, amplitude, seed)),
            )),
            AttackSpec::NoiseResample { amplitude, degree } => Box::new(
                AttackChain::new()
                    .then(PerStream::new(
                        format!("additive-noise(0.5, {amplitude})"),
                        move |seed| Box::new(AdditiveNoise::partial(0.5, amplitude, seed)),
                    ))
                    .then(PerStream::new(
                        format!("uniform-sampling({degree})"),
                        move |seed| Box::new(UniformSampling::new(degree, seed)),
                    )),
            ),
            AttackSpec::Splice { segment } => Box::new(SpliceMerge::new(segment)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_stream::samples_from_values;

    fn flow(streams: &[(u64, usize)]) -> Vec<Event> {
        let streams: Vec<(StreamId, Vec<Sample>)> = streams
            .iter()
            .map(|&(id, n)| {
                let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1 + id as f64).sin()).collect();
                (StreamId(id), samples_from_values(&values))
            })
            .collect();
        mux(&streams)
    }

    /// Well-formedness of a flow: per-stream indices consecutive from 0,
    /// finite values.
    fn assert_well_formed(flow: &[Event]) {
        for (id, samples) in demux(flow) {
            for (i, s) in samples.iter().enumerate() {
                assert_eq!(s.index, i as u64, "stream {id} index gap at {i}");
                assert!(s.value.is_finite(), "stream {id} non-finite value");
            }
        }
    }

    #[test]
    fn per_stream_applies_independently_per_stream() {
        let f = flow(&[(1, 100), (2, 60)]);
        let attack = AttackSpec::Summarize { degree: 2 }.build();
        let out = attack.attack(&f, &mut DetRng::seed_from_u64(0));
        assert_well_formed(&out);
        let streams = demux(&out);
        assert_eq!(streams[0].1.len(), 50);
        assert_eq!(streams[1].1.len(), 30);
    }

    #[test]
    fn attacks_replay_identically_from_the_same_seed() {
        let f = flow(&[(1, 200), (2, 200), (3, 50)]);
        for spec in [
            AttackSpec::Sample { degree: 3 },
            AttackSpec::Epsilon {
                fraction: 0.5,
                amplitude: 0.1,
            },
            AttackSpec::NoiseResample {
                amplitude: 0.01,
                degree: 2,
            },
            AttackSpec::Splice { segment: 16 },
        ] {
            let attack = spec.build();
            let a = attack.attack(&f, &mut DetRng::seed_from_u64(9));
            let b = attack.attack(&f, &mut DetRng::seed_from_u64(9));
            assert_eq!(a, b, "{} not reproducible", spec.id());
            let c = attack.attack(&f, &mut DetRng::seed_from_u64(10));
            assert_ne!(a, c, "{} ignores its seed", spec.id());
        }
    }

    #[test]
    fn chain_composes_in_order_and_forks_rngs() {
        let f = flow(&[(1, 120)]);
        let chain = AttackChain::new()
            .then(PerStream::fixed(Summarization::new(2)))
            .then(PerStream::fixed(FixedSampling::new(3)));
        assert_eq!(chain.len(), 2);
        let out = chain.attack(&f, &mut DetRng::seed_from_u64(1));
        assert_well_formed(&out);
        assert_eq!(demux(&out)[0].1.len(), 20); // 120 / 2 / 3
        assert!(chain.name().contains("->"));
        // Empty chain is the identity.
        let idle = AttackChain::new();
        assert!(idle.is_empty());
        assert_eq!(idle.attack(&f, &mut DetRng::seed_from_u64(0)), f);
    }

    #[test]
    fn splice_merges_into_one_stream_conserving_values() {
        let f = flow(&[(7, 90), (8, 60), (9, 30)]);
        let out = SpliceMerge::new(25).attack(&f, &mut DetRng::seed_from_u64(4));
        assert_well_formed(&out);
        let streams = demux(&out);
        assert_eq!(streams.len(), 1, "identity destroyed");
        assert_eq!(streams[0].0, StreamId(7), "reuses the first stream id");
        let merged = &streams[0].1;
        assert_eq!(merged.len(), 180, "values conserved");
        // Multiset of values is exactly the input's.
        let mut a: Vec<u64> = f.iter().map(|e| e.sample.value.to_bits()).collect();
        let mut b: Vec<u64> = merged.iter().map(|s| s.value.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_flow_is_safe_for_every_spec() {
        for spec in [
            AttackSpec::Identity,
            AttackSpec::Sample { degree: 2 },
            AttackSpec::Splice { segment: 10 },
        ] {
            let out = spec.build().attack(&[], &mut DetRng::seed_from_u64(0));
            assert!(out.is_empty(), "{}", spec.id());
        }
    }

    #[test]
    fn spec_parse_round_trips() {
        for s in [
            "identity",
            "sample:2",
            "fixed-sample:4",
            "summarize:3",
            "segment:0.5",
            "epsilon:0.5,0.1",
            "noise-resample:0.01,2",
            "splice:1000",
        ] {
            let spec = AttackSpec::parse(s).unwrap();
            assert_eq!(spec.id(), s, "id round-trip");
            assert_eq!(AttackSpec::parse(&spec.id()).unwrap(), spec);
            let _ = spec.build(); // buildable
        }
    }

    #[test]
    fn spec_parse_rejects_malformed() {
        for s in [
            "melt",
            "sample",
            "sample:zero",
            "sample:0",
            "segment:0",
            "segment:1.5",
            "epsilon:0.5",
            "epsilon:2,0.1",
            "epsilon:0.5,NaN",
            "epsilon:0.5,inf",
            "noise-resample:0.01",
            "noise-resample:NaN,2",
            "splice:0",
        ] {
            assert!(AttackSpec::parse(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn severity_and_chi_axes() {
        assert_eq!(AttackSpec::Sample { degree: 3 }.chi(), 3.0);
        assert_eq!(AttackSpec::Sample { degree: 3 }.severity(), 3.0);
        assert_eq!(AttackSpec::Segment { fraction: 0.25 }.chi(), 1.0);
        assert!(
            AttackSpec::Segment { fraction: 0.25 }.severity()
                > AttackSpec::Segment { fraction: 0.75 }.severity()
        );
        assert!(
            AttackSpec::Splice { segment: 100 }.severity()
                > AttackSpec::Splice { segment: 1000 }.severity()
        );
        assert_eq!(
            AttackSpec::NoiseResample {
                amplitude: 0.01,
                degree: 2
            }
            .chi(),
            2.0
        );
    }
}
