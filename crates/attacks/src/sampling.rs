//! Sampling attacks/transforms (A2, §2.2).
//!
//! * **Uniform random sampling of degree χ**: one value chosen uniformly
//!   at random out of every χ consecutive values.
//! * **Fixed random sampling of degree χ**: always the first value of
//!   each χ-sized block (the paper's "subtle variation").

use wms_math::DetRng;
use wms_stream::{renumber, Sample, Transform};

/// Uniform random sampling of degree χ.
#[derive(Debug, Clone, Copy)]
pub struct UniformSampling {
    /// χ ≥ 1: one of every χ values survives.
    pub degree: usize,
    /// Attack randomness seed (Mallory's coin).
    pub seed: u64,
}

impl UniformSampling {
    /// Creates the attack; degree 1 is the identity.
    pub fn new(degree: usize, seed: u64) -> Self {
        assert!(degree >= 1, "sampling degree must be >= 1");
        UniformSampling { degree, seed }
    }
}

impl Transform for UniformSampling {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        if self.degree == 1 {
            return input.to_vec();
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(input.len() / self.degree + 1);
        for block in input.chunks(self.degree) {
            let pick = rng.below_usize(block.len());
            out.push(block[pick]);
        }
        renumber(out)
    }

    fn name(&self) -> String {
        format!("uniform-sampling({})", self.degree)
    }
}

/// Fixed random sampling of degree χ (first element of each block).
#[derive(Debug, Clone, Copy)]
pub struct FixedSampling {
    /// χ ≥ 1.
    pub degree: usize,
}

impl FixedSampling {
    /// Creates the attack.
    pub fn new(degree: usize) -> Self {
        assert!(degree >= 1, "sampling degree must be >= 1");
        FixedSampling { degree }
    }
}

impl Transform for FixedSampling {
    fn apply(&self, input: &[Sample]) -> Vec<Sample> {
        renumber(input.iter().step_by(self.degree).copied().collect())
    }

    fn name(&self) -> String {
        format!("fixed-sampling({})", self.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_stream::samples_from_values;

    fn stream(n: usize) -> Vec<Sample> {
        samples_from_values(&(0..n).map(|i| i as f64).collect::<Vec<_>>())
    }

    #[test]
    fn output_length_is_input_over_degree() {
        let s = stream(1000);
        for d in [1usize, 2, 3, 7, 10] {
            let out = UniformSampling::new(d, 1).apply(&s);
            assert_eq!(out.len(), 1000usize.div_ceil(d), "degree {d}");
            let fixed = FixedSampling::new(d).apply(&s);
            assert_eq!(fixed.len(), 1000usize.div_ceil(d));
        }
    }

    #[test]
    fn picks_exactly_one_per_block() {
        let s = stream(100);
        let out = UniformSampling::new(5, 7).apply(&s);
        for (b, smp) in out.iter().enumerate() {
            let orig = smp.span.start as usize;
            assert!(
                (b * 5..(b + 1) * 5).contains(&orig),
                "block {b} picked original {orig}"
            );
        }
    }

    #[test]
    fn order_preserved_and_renumbered() {
        let s = stream(97);
        let out = UniformSampling::new(4, 3).apply(&s);
        for (i, smp) in out.iter().enumerate() {
            assert_eq!(smp.index, i as u64);
        }
        for w in out.windows(2) {
            assert!(w[0].span.start < w[1].span.start, "provenance monotone");
        }
    }

    #[test]
    fn fixed_sampling_takes_block_heads() {
        let s = stream(12);
        let out = FixedSampling::new(4).apply(&s);
        let heads: Vec<u64> = out.iter().map(|x| x.span.start).collect();
        assert_eq!(heads, vec![0, 4, 8]);
    }

    #[test]
    fn uniform_is_deterministic_per_seed_and_varies_across() {
        let s = stream(200);
        let a = UniformSampling::new(3, 5).apply(&s);
        let b = UniformSampling::new(3, 5).apply(&s);
        assert_eq!(a, b);
        let c = UniformSampling::new(3, 6).apply(&s);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_one_is_identity() {
        let s = stream(10);
        assert_eq!(UniformSampling::new(1, 0).apply(&s), s);
        assert_eq!(FixedSampling::new(1).apply(&s), s);
    }

    #[test]
    fn uniform_choice_is_roughly_uniform() {
        // Over many blocks, each in-block offset should be picked about
        // equally often.
        let s = stream(50_000);
        let out = UniformSampling::new(5, 11).apply(&s);
        let mut counts = [0u32; 5];
        for smp in &out {
            counts[(smp.span.start % 5) as usize] += 1;
        }
        let expect = out.len() as f64 / 5.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() / expect < 0.1,
                "offset {i}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "degree must be >= 1")]
    fn zero_degree_rejected() {
        UniformSampling::new(0, 0);
    }
}
