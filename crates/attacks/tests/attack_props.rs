//! Property-based round-trip coverage for every [`Attack`] impl: whatever
//! flow Mallory is handed, the attacked flow must remain *well-formed* —
//! per-stream indices consecutive from 0, finite values, and no stream
//! silently emptied — because the engine and the detectors downstream
//! assume exactly that contract.

use proptest::prelude::*;
use wms_attacks::{Attack, AttackChain, AttackSpec, PerStream, SpliceMerge, Summarization};
use wms_math::DetRng;
use wms_stream::events::{demux, mux};
use wms_stream::{samples_from_values, Event, StreamId};

/// Every attack family, one spec each (plus severity variants where the
/// parameter changes the code path).
fn all_specs() -> Vec<AttackSpec> {
    vec![
        AttackSpec::Identity,
        AttackSpec::Sample { degree: 1 },
        AttackSpec::Sample { degree: 3 },
        AttackSpec::FixedSample { degree: 2 },
        AttackSpec::Summarize { degree: 1 },
        AttackSpec::Summarize { degree: 4 },
        AttackSpec::Segment { fraction: 0.3 },
        AttackSpec::Segment { fraction: 1.0 },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.2,
        },
        AttackSpec::Epsilon {
            fraction: 1.0,
            amplitude: 0.0,
        },
        AttackSpec::NoiseResample {
            amplitude: 0.01,
            degree: 2,
        },
        AttackSpec::Splice { segment: 7 },
        AttackSpec::Splice { segment: 1000 },
    ]
}

/// A deterministic multi-stream flow: `streams` sine streams of
/// `items ± id` samples each, interleaved round-robin.
fn flow(streams: usize, items: usize, seed: u64) -> Vec<Event> {
    let built: Vec<(StreamId, Vec<f64>)> = (0..streams as u64)
        .map(|id| {
            let n = items + id as usize;
            let values: Vec<f64> = (0..n)
                .map(|i| {
                    let t = i as f64 + (seed % 97) as f64 + id as f64 * 3.0;
                    0.4 * (t * core::f64::consts::TAU / 37.0).sin()
                        + 0.03 * (t * core::f64::consts::TAU / 11.0).sin()
                })
                .collect();
            (StreamId(id), values)
        })
        .collect();
    let tagged: Vec<(StreamId, Vec<wms_stream::Sample>)> = built
        .into_iter()
        .map(|(id, values)| (id, samples_from_values(&values)))
        .collect();
    mux(&tagged)
}

/// The well-formedness contract attacks must uphold.
fn assert_flow_well_formed(label: &str, input: &[Event], output: &[Event]) {
    assert!(
        input.is_empty() || !output.is_empty(),
        "{label}: attacked a non-empty flow into nothing"
    );
    for (id, samples) in demux(output) {
        assert!(!samples.is_empty(), "{label}: stream {id} emptied");
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(
                s.index, i as u64,
                "{label}: stream {id} index gap at position {i}"
            );
            assert!(
                s.value.is_finite(),
                "{label}: stream {id} non-finite value at {i}"
            );
            assert!(
                s.span.end > s.span.start,
                "{label}: stream {id} empty provenance span at {i}"
            );
        }
    }
}

proptest! {
    #[test]
    fn every_attack_preserves_flow_well_formedness(
        streams in 1usize..4,
        items in 8usize..160,
        seed in 0u64..1_000_000,
    ) {
        let input = flow(streams, items, seed);
        for spec in all_specs() {
            let out = spec.build().attack(&input, &mut DetRng::seed_from_u64(seed));
            assert_flow_well_formed(&spec.id(), &input, &out);
        }
    }

    #[test]
    fn chains_of_attacks_stay_well_formed(
        streams in 1usize..3,
        items in 16usize..120,
        seed in 0u64..1_000_000,
    ) {
        let input = flow(streams, items, seed);
        // A deep pipeline exercising per-stream lifting, flow-level
        // splice and severity composition in one pass.
        let chain = AttackChain::new()
            .then_boxed(AttackSpec::Epsilon { fraction: 0.3, amplitude: 0.05 }.build())
            .then(PerStream::fixed(Summarization::new(2)))
            .then(SpliceMerge::new(9));
        let out = chain.attack(&input, &mut DetRng::seed_from_u64(seed));
        assert_flow_well_formed(&chain.name(), &input, &out);
        prop_assert_eq!(demux(&out).len(), 1, "splice must end with one stream");
    }

    #[test]
    fn attacks_conserve_or_shrink_flow_length(
        streams in 1usize..4,
        items in 8usize..120,
        seed in 0u64..1_000_000,
    ) {
        let input = flow(streams, items, seed);
        for spec in all_specs() {
            let out = spec.build().attack(&input, &mut DetRng::seed_from_u64(seed));
            prop_assert!(
                out.len() <= input.len(),
                "{} grew the flow: {} -> {}",
                spec.id(), input.len(), out.len()
            );
        }
    }
}
