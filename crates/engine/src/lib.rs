//! # wms-engine
//!
//! Sharded multi-stream watermarking engine: the paper's single-stream
//! pipeline ([`wms_core`]) lifted into a multi-tenant service core.
//!
//! * **Session registry** — every live stream is a [`StreamId`]-keyed
//!   session owning its per-stream state
//!   ([`EmbedSession`](wms_core::EmbedSession) /
//!   [`DetectSession`](wms_core::DetectSession)); the immutable
//!   configuration ([`EmbedConfig`] /
//!   [`DetectConfig`]) is shared across streams behind an `Arc`, so a
//!   tenant with one key and thousands of sensors pays for the scheme
//!   once.
//! * **Batched ingestion** — [`Engine::ingest`] takes a slice of
//!   interleaved [`Event`]s, groups them by shard, and returns each
//!   touched stream's emitted samples.
//! * **Parallel shard executor** — per-shard bounded ingest rings with
//!   epoch watermarks (the workspace is offline: threads and
//!   condvars, no async runtime). The caller routes each batch once
//!   into per-shard staging buffers with pre-resolved session-slot run
//!   descriptors, publishes them, and synchronizes only when an output
//!   or snapshot is actually needed — [`Engine::submit`] /
//!   [`Engine::collect_next`] let back-to-back batches pipeline, and
//!   the caller itself help-drains rings whenever it would otherwise
//!   block, so a saturated host degrades to inline processing instead
//!   of context-switch ping-pong. With exactly **one** worker the
//!   engine keeps the shard on the caller thread and skips the rings
//!   entirely, which recovers the sequential pipeline's throughput for
//!   single-shard workloads.
//! * **Shard rebalancing** — per-stream ingest loads are tracked at
//!   routing time; every `RebalanceConfig::every_batches` epochs the
//!   engine migrates low-traffic streams off the hottest shard
//!   (snapshot → transfer → adopt, the PR 5 checkpoint encoding doubling
//!   as the migration payload), so one hot stream no longer idles the
//!   other workers. Migration never changes any stream's output.
//! * **Checkpoint/restore** — [`Engine::checkpoint`] captures every
//!   session's replay state in a versioned binary [`Checkpoint`];
//!   [`Engine::restore`] rebuilds an engine that continues
//!   **bit-identically** to one that never stopped.
//!
//! ## Ordering and determinism
//!
//! Samples of one stream are processed in the order they appear in the
//! ingest batches, and batches in call order — so each session sees
//! exactly the sample sequence a dedicated single-stream pipeline would,
//! and its outputs are **bit-identical** to that pipeline's (the
//! equivalence tests in `tests/` prove it). Result ordering never
//! depends on thread timing: `ingest` returns streams in first-touch
//! order of the input batch, [`Engine::finish`] returns them in
//! registration order, whatever the worker count.
//!
//! Shard assignment is keyed hashing through [`wms_crypto`]
//! ([`ShardRouter`]), not `DefaultHasher`, so a stream's shard is stable
//! across runs, processes and Rust versions for a given engine key and
//! shard count.
//!
//! ## Checkpoints
//!
//! A [`Checkpoint`] is taken at a batch boundary (between `ingest`
//! calls): the engine barriers over its shards, snapshots every session
//! in registration order without disturbing it, and hands back a
//! structure the caller can serialize ([`Checkpoint::to_bytes`]) and
//! persist. [`Engine::restore`] re-adopts the sessions under
//! caller-resolved [`StreamSpec`]s; each session snapshot is stamped
//! with its scheme's
//! [`memo_fingerprint`](wms_core::Scheme::memo_fingerprint), so a
//! restore against a different key/τ/γ/α fails with a typed
//! [`CheckpointError`] instead of silently losing watermark sync. The
//! worker count is *not* part of the state: a checkpoint taken on 8
//! workers restores onto 1 (or vice versa) and still replays
//! bit-identically.
//!
//! ## Worker loss
//!
//! A panic inside a session (a bug in an encoder, a poisoned stream)
//! does not cascade: the worker catches it, reports the shard as lost,
//! and [`Engine::ingest`]/[`Engine::finish`]/[`Engine::checkpoint`]
//! surface [`EngineError::WorkerLost`] on the caller thread. The engine
//! is poisoned afterwards — the lost shard's sessions are gone — and
//! every later call returns the same error; dropping the engine remains
//! safe and panic-free.
//!
//! ## Backpressure
//!
//! [`Engine::ingest`] is synchronous: it publishes one sub-batch per
//! shard and blocks until its own epoch's watermark is reached (helping
//! to drain while it waits). The pipelined path ([`Engine::submit`])
//! buffers at most `ring_capacity` sub-batches per shard; a full ring
//! makes the publisher drain an entry itself before parking, so
//! backpressure converts into useful work instead of a stall.
//!
//! ## Bounded memory (hibernation)
//!
//! With a [`MemoryBudget`] configured, the engine caps how many sessions
//! stay resident. Cold sessions — least recently touched first — are
//! *hibernated*: serialized with the same `WMSS` snapshot encoding
//! checkpoints use and parked in an append-only, periodically compacted
//! [`SpillFile`] (in-memory by default, file-backed via
//! [`SpillTarget::File`]). A touched hibernated stream is transparently
//! re-adopted (spill read → checksum check → `restore()` → fingerprint
//! check) before its batch processes, so callers never see the
//! difference: outputs stay **bit-identical** to an unbudgeted engine,
//! whatever gets evicted when. This is what turns a registry of a
//! million streams from "a million resident windows" into "ten thousand
//! resident windows plus a log" — see `Engine::hibernate`,
//! [`Engine::resident_streams`] and the registry rows in
//! `BENCH_engine.json`.
//!
//! The budget counts *sessions*, the unit the paper's state model is
//! priced in (one sliding window + labeler state ≈ a few kB); eviction
//! is enforced at batch boundaries, so one batch touching more than
//! `max_resident` distinct streams transiently exceeds the cap and is
//! trimmed back when the call returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
mod spill;
mod worker;

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use wms_core::checkpoint::{ByteReader, ByteWriter};
pub use wms_core::CheckpointError;
use wms_core::{DetectConfig, DetectionReport, EmbedConfig, EmbedStats};
use wms_crypto::{Key, KeyedHash};
use wms_stream::Sample;
pub use wms_stream::{Event, StreamId};
use worker::{Entry, Ring, Session, Shard};

pub use metrics::EngineMetrics;
pub use spill::{SpillError, SpillFile, SpillStats};

/// How a registered stream processes its samples.
#[derive(Clone)]
pub enum StreamSpec {
    /// Watermark-embedding session; emits (possibly altered) samples.
    Embed(Arc<EmbedConfig>),
    /// Detection session; emits nothing until `finish`, which yields its
    /// [`DetectionReport`].
    Detect(Arc<DetectConfig>),
    /// Test-only fault injection: the session panics while processing
    /// its `panic_after`-th sample (1-based; `0` behaves as `1`). Exists
    /// so the worker-loss path has a deterministic regression test; a
    /// production registry has no reason to construct it.
    #[doc(hidden)]
    FaultInject {
        /// Sample number whose processing panics.
        panic_after: u64,
    },
    /// Pass-through session: counts samples, emits nothing, costs almost
    /// nothing. Exists so benchmarks can measure the engine's own
    /// overhead (routing, batching, registry, eviction) isolated from
    /// the watermark windowing cost, and so capacity experiments can
    /// register millions of streams without paying for real sessions.
    NoOp,
}

/// Samples one stream emitted while a batch was ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The stream that produced the samples.
    pub stream: StreamId,
    /// Emitted samples, in stream order (empty when the window retained
    /// everything — detection streams always report empty here).
    pub samples: Vec<Sample>,
}

/// Final state of one stream after [`Engine::finish`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// The stream this outcome describes.
    pub stream: StreamId,
    /// Residual samples drained from an embedding session's window
    /// (empty for detection streams).
    pub tail: Vec<Sample>,
    /// Embedding counters (embedding streams only).
    pub embed_stats: Option<EmbedStats>,
    /// Detection report (detection streams only).
    pub report: Option<DetectionReport>,
}

/// Engine construction/ingestion errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `register` was called twice for the same id.
    DuplicateStream(StreamId),
    /// An ingested event names an unregistered stream.
    UnknownStream(StreamId),
    /// A shard worker panicked. Its sessions are lost and the engine is
    /// poisoned: every further `ingest`/`checkpoint`/`finish` returns
    /// this error (dropping the engine stays safe).
    WorkerLost {
        /// The shard whose worker was lost.
        shard: usize,
    },
    /// [`Engine::restore`] could not resolve a [`StreamSpec`] for a
    /// stream recorded in the checkpoint.
    MissingSpec(StreamId),
    /// A checkpoint could not be decoded or applied (truncation, version
    /// skew, or a scheme-fingerprint mismatch) — or a spilled session's
    /// record was corrupt when the engine tried to re-adopt it.
    Checkpoint(CheckpointError),
    /// The spill store failed at the I/O level (disk full, permissions,
    /// the file vanished). Session state may sit only in the spill, so
    /// the engine is poisoned once this happens.
    SpillIo(String),
    /// A draining call (`ingest`, `finish`) was made while pipelined
    /// epochs submitted via [`Engine::submit`] still had uncollected
    /// outputs. Collect them first ([`Engine::collect_next`]); nothing
    /// was lost and the engine is *not* poisoned.
    UncollectedEpochs,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => write!(f, "stream {id} already registered"),
            EngineError::UnknownStream(id) => write!(f, "stream {id} is not registered"),
            EngineError::WorkerLost { shard } => write!(
                f,
                "shard {shard} worker lost to a panic; the engine is poisoned"
            ),
            EngineError::MissingSpec(id) => {
                write!(f, "no spec resolved for checkpointed stream {id}")
            }
            EngineError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            EngineError::SpillIo(msg) => {
                write!(f, "spill store failed ({msg}); the engine is poisoned")
            }
            EngineError::UncollectedEpochs => {
                write!(
                    f,
                    "submitted epochs have uncollected outputs; collect them first"
                )
            }
        }
    }
}

impl EngineError {
    /// Stable small-integer identity for this error variant, mirroring
    /// [`CheckpointError::code`]: used for CLI exit-code mapping and
    /// `wmsd` NACK details. Append new values, never renumber.
    /// `Checkpoint` nests the inner code in the high byte so e.g. a
    /// fingerprint mismatch inside an engine restore stays
    /// distinguishable.
    pub fn code(&self) -> u16 {
        match self {
            EngineError::DuplicateStream(_) => 1,
            EngineError::UnknownStream(_) => 2,
            EngineError::WorkerLost { .. } => 3,
            EngineError::MissingSpec(_) => 4,
            EngineError::Checkpoint(c) => 0x100 | c.code(),
            EngineError::SpillIo(_) => 5,
            EngineError::UncollectedEpochs => 6,
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<SpillError> for EngineError {
    fn from(e: SpillError) -> Self {
        match e {
            SpillError::Io(msg) => EngineError::SpillIo(msg),
            // Corruption keeps its typed shape: callers can distinguish
            // a checksum mismatch from a truncation from version skew.
            SpillError::Corrupt(c) => EngineError::Checkpoint(c),
        }
    }
}

/// Deterministic keyed `StreamId -> shard` routing.
///
/// Uses the workspace's keyed one-way hash rather than
/// `std::hash::DefaultHasher`: the standard hasher is seeded per process
/// and its algorithm is not stable across Rust versions, so shard
/// assignment would change from run to run. Keyed MD5 of the id under a
/// fixed engine key is stable everywhere and costs one compression per
/// route (amortized to zero by batching).
#[derive(Clone)]
pub struct ShardRouter {
    hash: KeyedHash,
    shards: usize,
}

/// Domain-separation prefix for shard routing.
const SHARD_DOMAIN: &[u8] = b"wms/engine/shard";

impl ShardRouter {
    /// Router over `shards` shards keyed by `key` (`shards >= 1`).
    pub fn new(key: Key, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter {
            hash: KeyedHash::md5(key),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: StreamId) -> usize {
        (self
            .hash
            .hash_u64_parts(&[SHARD_DOMAIN, &id.0.to_le_bytes()])
            % self.shards as u64) as usize
    }
}

/// Where hibernated sessions are parked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillTarget {
    /// An anonymous in-memory log: bounds *session* memory (windows,
    /// labelers, scratch) while keeping the cold bytes in RAM. The
    /// default.
    Memory,
    /// An append-only log at this path, created if absent. A
    /// pre-existing log is reopened — its index is rebuilt and any torn
    /// tail from a crash is truncated — then cleared: checkpoints are
    /// self-contained, so records from a previous process are stale by
    /// definition.
    File(PathBuf),
}

/// Session-residency budget: how many sessions may stay materialized,
/// and where the cold ones go.
///
/// `max_resident == 0` (the default) disables eviction entirely — the
/// engine behaves exactly as before this knob existed, and the ingest
/// hot path pays nothing for it. With a budget, the engine keeps
/// per-shard residency accounts and evicts least-recently-touched
/// sessions down to the budget at every batch boundary (with a small
/// hysteresis so a registry hovering at the cap doesn't evict one
/// session per call). Eviction is invisible in the outputs: the
/// equivalence tests pin byte-identical results against an unbudgeted
/// engine across worker counts and eviction schedules.
///
/// The snapshot cache used for incremental checkpoints is *not* counted
/// against the budget: it holds serialized bytes, not sessions, and
/// only populates on engines that actually checkpoint.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    /// Maximum resident sessions across all shards (`0` = unbounded).
    pub max_resident: usize,
    /// Where evicted sessions are parked.
    pub spill: SpillTarget,
    /// Garbage fraction of the spill log that triggers compaction
    /// (`>= 1.0` disables auto-compaction; explicit compaction is still
    /// available on [`SpillFile`]).
    pub compact_ratio: f64,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget {
            max_resident: 0,
            spill: SpillTarget::Memory,
            compact_ratio: 0.5,
        }
    }
}

impl MemoryBudget {
    /// Budget of `max_resident` sessions spilling to memory.
    pub fn resident(max_resident: usize) -> Self {
        MemoryBudget {
            max_resident,
            ..MemoryBudget::default()
        }
    }

    /// Same budget, spilling to a file at `path`.
    pub fn with_spill_file(mut self, path: PathBuf) -> Self {
        self.spill = SpillTarget::File(path);
        self
    }
}

/// Skew-rebalancing policy: when and how aggressively streams migrate
/// off hot shards.
///
/// At every `every_batches`-th epoch the engine compares per-shard
/// ingest loads accumulated since the last check. When the hottest
/// shard carried more than `ratio` × the per-shard mean (and hosts more
/// than one resident stream), its lowest-traffic streams migrate to the
/// coldest shard until the hot shard's projected load is back around
/// the mean. The policy is a deterministic function of the ingest
/// history, so runs are reproducible; migration never changes any
/// stream's output (the equivalence wall pins this).
#[derive(Clone, Debug)]
pub struct RebalanceConfig {
    /// Check cadence in epochs (= batches). `0` disables automatic
    /// rebalancing; explicit [`Engine::migrate_stream`] still works.
    pub every_batches: u64,
    /// Trigger threshold: rebalance when the hottest shard's load
    /// exceeds `ratio` × the per-shard mean.
    pub ratio: f64,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            every_batches: 64,
            ratio: 2.0,
        }
    }
}

impl RebalanceConfig {
    /// No automatic rebalancing.
    pub fn disabled() -> Self {
        RebalanceConfig {
            every_batches: 0,
            ..RebalanceConfig::default()
        }
    }
}

/// Default per-shard ring capacity (published-but-unapplied sub-batches).
pub const DEFAULT_RING_CAPACITY: usize = 8;

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Key for the shard router. The default is a fixed public constant:
    /// shard placement is a load-balancing concern, not a secret, and a
    /// fixed key keeps placement reproducible across deployments.
    pub shard_key: Key,
    /// Session-residency budget (default: unbounded, no eviction).
    pub budget: MemoryBudget,
    /// Per-shard ingest-ring capacity: how many published sub-batches
    /// may sit unapplied before the publisher help-drains or parks.
    /// Clamped to at least 1; irrelevant for single-worker engines.
    pub ring_capacity: usize,
    /// Skew-rebalancing policy (default: every 64 batches at 2× mean).
    pub rebalance: RebalanceConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shard_key: Key::from_bytes(&b"wms/engine/default-shard-key"[..]),
            budget: MemoryBudget::default(),
            ring_capacity: DEFAULT_RING_CAPACITY,
            rebalance: RebalanceConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    /// Same config with a session-residency budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Same config with an explicit per-shard ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Same config with an explicit rebalancing policy.
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = rebalance;
        self
    }
}

/// Checkpoint format magic.
const CK_MAGIC: [u8; 4] = *b"WMSC";
/// Newest engine checkpoint version this build reads and writes.
const CK_VERSION: u16 = 1;

/// One stream's entry in a checkpoint: its id, session kind tag, and
/// versioned session snapshot bytes.
struct CheckpointStream {
    id: StreamId,
    kind: u8,
    snapshot: Vec<u8>,
}

/// A consistent engine state captured at a batch boundary.
///
/// Contains every registered session's replay state in registration
/// order, plus a caller-defined `meta` blob (resume bookkeeping such as
/// an input cursor — the engine carries it verbatim and never reads it).
/// Serialize with [`to_bytes`](Self::to_bytes), decode with
/// [`from_bytes`](Self::from_bytes), re-animate with
/// [`Engine::restore`].
pub struct Checkpoint {
    /// Caller-defined resume metadata, carried verbatim.
    pub meta: Vec<u8>,
    streams: Vec<CheckpointStream>,
}

impl Checkpoint {
    /// Serializes to the versioned binary format (magic `WMSC`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(CK_MAGIC);
        w.put_u16(CK_VERSION);
        w.put_bytes(&self.meta);
        w.put_u64(self.streams.len() as u64);
        for s in &self.streams {
            w.put_u64(s.id.0);
            w.put_u8(s.kind);
            w.put_bytes(&s.snapshot);
        }
        w.into_bytes()
    }

    /// Decodes a [`to_bytes`](Self::to_bytes) image, rejecting
    /// truncation, trailing garbage and unknown versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = ByteReader::with_magic(bytes, CK_MAGIC)?;
        let version = r.get_u16()?;
        if version != CK_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CK_VERSION,
            });
        }
        let meta = r.get_bytes()?.to_vec();
        let n = r.get_len(17)?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let id = StreamId(r.get_u64()?);
            let kind = r.get_u8()?;
            let snapshot = r.get_bytes()?.to_vec();
            streams.push(CheckpointStream { id, kind, snapshot });
        }
        r.finish()?;
        Ok(Checkpoint { meta, streams })
    }

    /// The checkpointed streams, in their registration order.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.streams.iter().map(|s| s.id)
    }

    /// Number of checkpointed streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }
}

/// Where the shards live: inline on the caller thread (single worker) or
/// behind per-shard ingest rings with worker threads.
enum Backend {
    /// `workers == 1`: no thread, no ring — every batch runs on the
    /// caller thread against the directly-owned shard. This is what
    /// makes single-shard batches as fast as the sequential pipeline.
    Inline(Box<Shard>),
    /// `workers > 1`: one bounded ring + drainer thread per shard, the
    /// caller helping out whenever it waits.
    Ring(Ring),
}

/// One registered stream's registry entry. The spec is retained so a
/// hibernated session can be rebuilt on re-adoption; it is `Arc`-backed,
/// so the per-stream cost is a pointer, not a scheme.
struct StreamEntry {
    /// The shard currently hosting (or, if hibernated, designated to
    /// re-host) this stream. Starts at the router's placement; live
    /// migration retargets it.
    shard: usize,
    /// Slot index inside the shard (valid only while `resident`). Routing
    /// emits `(slot, len)` run descriptors so the ingest consumer never
    /// hashes a stream id.
    slot: u32,
    spec: StreamSpec,
    /// Value of the engine clock when this stream was last registered or
    /// touched by an ingest; the LRU sort key.
    last_touch: u64,
    /// Whether the session is materialized in its shard (vs spilled).
    resident: bool,
    /// Epoch of the last batch that touched this stream (first-touch
    /// detection at routing time without a per-batch hash map).
    epoch_stamp: u64,
    /// Items routed in the current rebalance window (`load_stamp` says
    /// which window the count belongs to — stale counts read as zero).
    load: u64,
    load_stamp: u64,
}

/// Engine-side record of one submitted epoch awaiting collection.
struct EpochMeta {
    epoch: u64,
    /// Streams touched by the batch, in first-touch order — the output
    /// order contract, fixed at routing time regardless of which thread
    /// applies what.
    touch_order: Vec<StreamId>,
    /// `id -> index in touch_order`, for merging per-shard results.
    slot_of: HashMap<u64, u32>,
    /// Participating shards and the ring sequence number of this
    /// epoch's entry there — the watermark targets to wait on.
    shard_seq: Vec<(u32, u64)>,
}

impl EpochMeta {
    fn new() -> EpochMeta {
        EpochMeta {
            epoch: 0,
            touch_order: Vec::new(),
            slot_of: HashMap::new(),
            shard_seq: Vec::new(),
        }
    }

    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.touch_order.clear();
        self.slot_of.clear();
        self.shard_seq.clear();
    }
}

/// One outstanding epoch: already-computed outputs (inline backend) or
/// watermark targets still to wait on (ring backend).
enum PendingEpoch {
    Ready(u64, Vec<Output>),
    Meta(EpochMeta),
}

/// Per-shard staging buffer the router fills before publishing.
#[derive(Default)]
struct Staging {
    events: Vec<Event>,
    runs: Vec<(u32, u32)>,
}

/// The multi-stream engine: session registry + shard executor.
pub struct Engine {
    router: ShardRouter,
    backend: Backend,
    /// Registry: `id -> entry`, also the duplicate/unknown-id check.
    streams: HashMap<u64, StreamEntry>,
    /// Registration order (drives `finish` output ordering).
    order: Vec<StreamId>,
    /// Scratch: per-shard staging buffers the router fills, swapped into
    /// ring entries on publish and refilled from `buf_pool`.
    staging: Vec<Staging>,
    /// Recycled event/run buffers cycling staging → ring → back.
    buf_pool: Vec<worker::BufPair>,
    /// Monotonic batch counter (one per `ingest`/`submit`).
    epoch: u64,
    /// Per-shard ring sequence of the last published entry.
    published: Vec<u64>,
    /// Submitted epochs whose outputs have not been collected yet.
    outstanding: VecDeque<PendingEpoch>,
    /// Recycled epoch metadata records.
    meta_pool: Vec<EpochMeta>,
    /// Configured per-shard ring capacity (reported in diagnostics even
    /// for the inline backend, which has no ring).
    ring_capacity: usize,
    /// Rebalance policy + per-window per-shard load accounts.
    rebalance_every: u64,
    rebalance_ratio: f64,
    shard_load: Vec<u64>,
    load_window: u64,
    /// First fatal error (worker panic, spill I/O failure); replayed by
    /// every subsequent operation.
    poison: Option<EngineError>,
    /// Resident-session cap (`0` = unbounded).
    max_resident: usize,
    /// Hibernated sessions, keyed by stream id.
    spill: SpillFile,
    /// `(last_touch, id)` of every resident stream — the LRU order.
    /// Maintained only when a budget is active, so unbudgeted engines
    /// pay nothing on the hot path.
    lru: BTreeSet<(u64, u64)>,
    /// Monotonic touch clock: one tick per ingest call or registration.
    clock: u64,
    resident_count: usize,
    spilled_count: usize,
    /// Per-shard residency accounts (diagnostics; the budget itself is
    /// global, so a hot shard may hold more than its share).
    resident_per_shard: Vec<usize>,
    /// Always-on telemetry handles (relaxed atomics; see [`metrics`]).
    metrics: Arc<EngineMetrics>,
    /// Spill compaction count last mirrored into the metrics, so the
    /// counter advances by deltas of [`SpillStats::compactions`].
    spill_compactions_seen: u64,
}

impl Engine {
    /// Spawns the shard executor (or adopts the single shard inline) and
    /// opens the spill store.
    ///
    /// Fails with [`EngineError::SpillIo`] when a file spill target
    /// cannot be opened, and with [`EngineError::Checkpoint`] when a
    /// pre-existing spill log is damaged beyond the torn tail a crash
    /// legitimately leaves.
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let spill = match &config.budget.spill {
            SpillTarget::Memory => SpillFile::in_memory(config.budget.compact_ratio),
            SpillTarget::File(path) => {
                let mut s = SpillFile::open(path, config.budget.compact_ratio)?;
                // A reopened log's records belong to a previous process;
                // every live session arrives via register/restore, so
                // they are stale. (The reopen still mattered: it
                // truncated any torn tail and proved the log readable.)
                s.clear()?;
                s
            }
        };
        let router = ShardRouter::new(config.shard_key, workers);
        let ring_capacity = config.ring_capacity.max(1);
        let metrics = Arc::new(EngineMetrics::new(workers));
        let backend = if workers == 1 {
            Backend::Inline(Box::new(Shard::new()))
        } else {
            // On a single-core host, waking a worker per publish cannot
            // add throughput (the caller help-drains everything anyway),
            // so publishes stay silent and the workers only wake for
            // shutdown; with spare cores, workers wake eagerly.
            let eager_wake = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                > 1;
            Backend::Ring(Ring::new(
                workers,
                ring_capacity,
                eager_wake,
                metrics.ring_depth.clone(),
                metrics.ring_high_water.clone(),
            ))
        };
        Ok(Engine {
            router,
            backend,
            streams: HashMap::new(),
            order: Vec::new(),
            staging: (0..workers).map(|_| Staging::default()).collect(),
            buf_pool: Vec::new(),
            epoch: 0,
            published: vec![0; workers],
            outstanding: VecDeque::new(),
            meta_pool: Vec::new(),
            ring_capacity,
            rebalance_every: config.rebalance.every_batches,
            rebalance_ratio: config.rebalance.ratio.max(1.0),
            shard_load: vec![0; workers],
            load_window: 1,
            poison: None,
            max_resident: config.budget.max_resident,
            spill,
            lru: BTreeSet::new(),
            clock: 0,
            resident_count: 0,
            spilled_count: 0,
            resident_per_shard: vec![0; workers],
            metrics,
            spill_compactions_seen: 0,
        })
    }

    /// Rebuilds an engine from a [`Checkpoint`], resolving each
    /// checkpointed stream's [`StreamSpec`] through `spec_of` (specs
    /// hold key material and trait objects, so they cannot live inside
    /// the checkpoint itself). Streams are re-registered in their
    /// original registration order; the worker count may differ from the
    /// checkpointing engine's — shard placement is recomputed and the
    /// replay stays bit-identical.
    ///
    /// Fails with [`EngineError::MissingSpec`] when `spec_of` cannot name
    /// a stream, and with [`EngineError::Checkpoint`] when a session
    /// snapshot does not decode under its spec — in particular
    /// [`CheckpointError::FingerprintMismatch`] when the spec's scheme
    /// (key/τ/γ/α) differs from the one the snapshot was taken under.
    ///
    /// With a [`MemoryBudget`], the first `max_resident` streams (in
    /// checkpoint order) are materialized and validated eagerly; the
    /// rest are parked in the spill *without* deserializing — resuming a
    /// million-stream registry must not materialize a million sessions.
    /// Their validation (kind, fingerprint, checksum) happens when they
    /// are first touched, so a damaged cold entry surfaces its typed
    /// error at re-adoption instead of restore.
    pub fn restore(
        config: EngineConfig,
        checkpoint: &Checkpoint,
        mut spec_of: impl FnMut(StreamId) -> Option<StreamSpec>,
    ) -> Result<Engine, EngineError> {
        let mut engine = Engine::new(config)?;
        for entry in &checkpoint.streams {
            let spec = spec_of(entry.id).ok_or(EngineError::MissingSpec(entry.id))?;
            let shard = engine.router.shard_of(entry.id);
            if engine.streams.contains_key(&entry.id.0) {
                return Err(EngineError::DuplicateStream(entry.id));
            }
            engine.clock += 1;
            let park_cold = engine.max_resident > 0 && engine.resident_count >= engine.max_resident;
            if park_cold {
                engine
                    .spill
                    .append(entry.id.0, entry.kind, &entry.snapshot)?;
                engine.spilled_count += 1;
            }
            let mut slot = 0u32;
            if !park_cold {
                let session = Session::restore(spec.clone(), entry.kind, &entry.snapshot)?;
                let adopted = match &mut engine.backend {
                    Backend::Inline(s) => Some(s.adopt(entry.id, session)),
                    Backend::Ring(r) => r.shard_op(shard, |s| s.adopt(entry.id, session)).ok(),
                };
                let Some(s) = adopted else {
                    engine.poison = Some(EngineError::WorkerLost { shard });
                    return Err(EngineError::WorkerLost { shard });
                };
                slot = s;
                engine.resident_count += 1;
                engine.resident_per_shard[shard] += 1;
                if engine.max_resident > 0 {
                    engine.lru.insert((engine.clock, entry.id.0));
                }
            }
            engine.streams.insert(
                entry.id.0,
                StreamEntry {
                    shard,
                    slot,
                    spec,
                    last_touch: engine.clock,
                    resident: !park_cold,
                    epoch_stamp: 0,
                    load: 0,
                    load_stamp: 0,
                },
            );
            engine.order.push(entry.id);
        }
        engine.sync_storage_metrics();
        Ok(engine)
    }

    /// Number of worker threads (= shards).
    pub fn workers(&self) -> usize {
        self.router.shards()
    }

    /// Registered streams, in registration order.
    pub fn streams(&self) -> &[StreamId] {
        &self.order
    }

    /// Sessions currently materialized in their shards.
    pub fn resident_streams(&self) -> usize {
        self.resident_count
    }

    /// Sessions currently hibernated in the spill store.
    pub fn spilled_streams(&self) -> usize {
        self.spilled_count
    }

    /// Per-shard residency accounts (index = shard). The budget is
    /// global; this shows how it is distributed.
    pub fn resident_per_shard(&self) -> &[usize] {
        &self.resident_per_shard
    }

    /// Whether `id`'s session is resident (`None`: not registered).
    pub fn is_resident(&self, id: StreamId) -> Option<bool> {
        self.streams.get(&id.0).map(|e| e.resident)
    }

    /// Spill-store occupancy counters.
    pub fn spill_stats(&self) -> SpillStats {
        self.spill.stats()
    }

    /// This engine's telemetry handles. Always live (recording is a
    /// relaxed atomic bump either way); register them into a
    /// [`wms_telemetry::Registry`] via
    /// [`EngineMetrics::register_into`] to render an exposition.
    pub fn metrics(&self) -> Arc<EngineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Mirrors registry/spill occupancy into the gauges and advances
    /// the compaction counter by the spill log's delta. A handful of
    /// relaxed stores; called wherever residency or the spill changes.
    fn sync_storage_metrics(&mut self) {
        self.metrics
            .resident_sessions
            .set(self.resident_count as u64);
        self.metrics.spilled_sessions.set(self.spilled_count as u64);
        let stats = self.spill.stats();
        self.metrics.spill_log_bytes.set(stats.log_bytes);
        self.metrics.spill_live_bytes.set(stats.live_bytes);
        if stats.compactions > self.spill_compactions_seen {
            self.metrics
                .spill_compactions
                .add(stats.compactions - self.spill_compactions_seen);
            self.spill_compactions_seen = stats.compactions;
        }
    }

    /// Replays the first fatal error (worker panic, spill I/O failure).
    fn ensure_live(&self) -> Result<(), EngineError> {
        match &self.poison {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// The first fatal error that poisoned this engine, if any. A
    /// poisoned engine rejects every further `ingest` / `checkpoint` /
    /// `finish` with this error; long-lived front-ends (the `wmsd`
    /// daemon) use this to decide between NACKing one batch and shutting
    /// the whole service down.
    pub fn poisoned(&self) -> Option<&EngineError> {
        self.poison.as_ref()
    }

    fn poison_with(&mut self, e: EngineError) -> EngineError {
        self.poison = Some(e.clone());
        e
    }

    /// Registers a stream. Fails on duplicate ids; the spec's parameters
    /// were already validated when its config was built. Under a memory
    /// budget, registering past the cap hibernates the
    /// least-recently-touched sessions to make room.
    pub fn register(&mut self, id: StreamId, spec: StreamSpec) -> Result<(), EngineError> {
        self.ensure_live()?;
        let shard = self.router.shard_of(id);
        if self.streams.contains_key(&id.0) {
            return Err(EngineError::DuplicateStream(id));
        }
        self.clock += 1;
        let registered = match &mut self.backend {
            Backend::Inline(s) => Some(s.register(id, spec.clone())),
            Backend::Ring(r) => r.shard_op(shard, |s| s.register(id, spec.clone())).ok(),
        };
        let Some(slot) = registered else {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        };
        self.streams.insert(
            id.0,
            StreamEntry {
                shard,
                slot,
                spec,
                last_touch: self.clock,
                resident: true,
                epoch_stamp: 0,
                load: 0,
                load_stamp: 0,
            },
        );
        self.order.push(id);
        self.resident_count += 1;
        self.resident_per_shard[shard] += 1;
        self.metrics
            .resident_sessions
            .set(self.resident_count as u64);
        if self.max_resident > 0 {
            self.lru.insert((self.clock, id.0));
            self.enforce_budget()?;
        }
        Ok(())
    }

    /// Hibernates one stream's session now: serialize, park in the
    /// spill, free the resident state. Returns `false` when the session
    /// was already hibernated. The stream stays fully usable — its next
    /// touch re-adopts it transparently — and its outputs are unchanged
    /// by when (or whether) this is called; the equivalence tests lean
    /// on exactly that to force eviction at arbitrary points.
    pub fn hibernate(&mut self, id: StreamId) -> Result<bool, EngineError> {
        self.ensure_live()?;
        let Some(entry) = self.streams.get(&id.0) else {
            return Err(EngineError::UnknownStream(id));
        };
        if !entry.resident {
            return Ok(false);
        }
        let mut by_shard = vec![Vec::new(); self.router.shards()];
        by_shard[entry.shard].push(id);
        self.evict_streams(by_shard)?;
        Ok(true)
    }

    /// Blocks until `shard` has applied everything published to it,
    /// help-draining while it waits. Poisons the engine on worker loss.
    fn sync_shard(&mut self, shard: usize) -> Result<(), EngineError> {
        let target = self.published[shard];
        let lost = match &self.backend {
            Backend::Ring(r) => r.wait_applied(shard, target).is_err(),
            Backend::Inline(_) => false,
        };
        if lost {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        }
        Ok(())
    }

    /// Barriers every shard (a batch boundary across the whole engine).
    fn sync_all(&mut self) -> Result<(), EngineError> {
        for shard in 0..self.published.len() {
            self.sync_shard(shard)?;
        }
        Ok(())
    }

    /// Serializes and spills the given sessions (grouped per shard).
    /// Updates residency bookkeeping; poisons the engine on worker loss
    /// or spill I/O failure (the evicted state would otherwise be lost).
    ///
    /// Involved shards are synced first: published-but-unapplied entries
    /// may still reference the sessions being evicted.
    fn evict_streams(&mut self, by_shard: Vec<Vec<StreamId>>) -> Result<(), EngineError> {
        if matches!(self.backend, Backend::Ring(_)) {
            for (w, ids) in by_shard.iter().enumerate() {
                if !ids.is_empty() {
                    self.sync_shard(w)?;
                }
            }
        }
        let mut evicted: Vec<(StreamId, u8, Vec<u8>)> = Vec::new();
        let mut lost: Option<usize> = None;
        match &mut self.backend {
            Backend::Inline(shard) => {
                let ids = &by_shard[0];
                match catch_unwind(AssertUnwindSafe(|| shard.evict(ids))) {
                    Ok(snaps) => evicted.extend(snaps),
                    Err(_panic) => lost = Some(0),
                }
            }
            Backend::Ring(r) => {
                for (w, ids) in by_shard.iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    match r.shard_op(w, |s| s.evict(ids)) {
                        Ok(snaps) => evicted.extend(snaps),
                        Err(()) => {
                            lost = Some(w);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(w) = lost {
            return Err(self.poison_with(EngineError::WorkerLost { shard: w }));
        }
        for (id, kind, bytes) in evicted {
            if let Err(e) = self.spill.append(id.0, kind, &bytes) {
                return Err(self.poison_with(e.into()));
            }
            let entry = self
                .streams
                .get_mut(&id.0)
                .expect("evicted id is registered");
            entry.resident = false;
            self.lru.remove(&(entry.last_touch, id.0));
            self.resident_count -= 1;
            self.resident_per_shard[entry.shard] -= 1;
            self.spilled_count += 1;
            self.metrics.evictions.inc();
        }
        self.sync_storage_metrics();
        Ok(())
    }

    /// Evicts least-recently-touched sessions until the resident count
    /// is back under the budget. Hysteresis: once over the cap, evict
    /// down to ~7/8 of it in one sweep, so a registry hovering at the
    /// cap amortizes eviction instead of paying one worker round-trip
    /// per registration.
    fn enforce_budget(&mut self) -> Result<(), EngineError> {
        if self.max_resident == 0 || self.resident_count <= self.max_resident {
            return Ok(());
        }
        let low = (self.max_resident - self.max_resident / 8).max(1);
        let n_evict = self.resident_count - low;
        let mut by_shard = vec![Vec::new(); self.router.shards()];
        for &(_, id) in self.lru.iter().take(n_evict) {
            by_shard[self.streams[&id].shard].push(StreamId(id));
        }
        self.evict_streams(by_shard)
    }

    /// Re-adopts one hibernated session: spill read (checksum-checked)
    /// → `restore` under the registered spec (kind + scheme-fingerprint
    /// checked) → adopt into its shard. Any failure poisons the engine:
    /// a cold session that cannot come back means state is already lost.
    fn readopt(&mut self, id: u64) -> Result<(), EngineError> {
        let record = match self.spill.read(id) {
            Ok(Some(r)) => r,
            Ok(None) => {
                // Registry says spilled but the log has no record: an
                // engine invariant broke, report it as corruption.
                let e = EngineError::Checkpoint(CheckpointError::Invalid(format!(
                    "hibernated stream {id} has no spill record"
                )));
                return Err(self.poison_with(e));
            }
            Err(e) => return Err(self.poison_with(e.into())),
        };
        let entry = self.streams.get(&id).expect("caller checked registry");
        let shard = entry.shard;
        let session = match Session::restore(entry.spec.clone(), record.0, &record.1) {
            Ok(s) => s,
            Err(e) => return Err(self.poison_with(EngineError::Checkpoint(e))),
        };
        let adopted = match &mut self.backend {
            Backend::Inline(s) => Some(s.adopt(StreamId(id), session)),
            Backend::Ring(r) => r.shard_op(shard, |s| s.adopt(StreamId(id), session)).ok(),
        };
        let Some(slot) = adopted else {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        };
        if let Err(e) = self.spill.remove(id) {
            return Err(self.poison_with(e.into()));
        }
        let entry = self.streams.get_mut(&id).expect("caller checked registry");
        entry.resident = true;
        entry.slot = slot;
        self.resident_count += 1;
        self.resident_per_shard[shard] += 1;
        self.spilled_count -= 1;
        if self.max_resident > 0 {
            self.lru.insert((entry.last_touch, id));
        }
        self.metrics.readoptions.inc();
        self.sync_storage_metrics();
        Ok(())
    }

    /// Touch accounting + re-adoption sweep run before a batch is
    /// dispatched, when (and only when) hibernation is in play:
    /// validates every id, bumps each touched stream's LRU position, and
    /// re-adopts the hibernated sessions the batch is about to touch.
    fn prepare_batch(&mut self, events: &[Event]) -> Result<(), EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let mut need_adopt: Vec<u64> = Vec::new();
        let mut last: Option<u64> = None;
        for ev in events {
            if last == Some(ev.stream.0) {
                continue;
            }
            last = Some(ev.stream.0);
            let Some(entry) = self.streams.get_mut(&ev.stream.0) else {
                return Err(EngineError::UnknownStream(ev.stream));
            };
            if entry.last_touch == clock {
                continue; // already counted in this batch
            }
            if entry.resident {
                if self.max_resident > 0 {
                    self.lru.remove(&(entry.last_touch, ev.stream.0));
                    self.lru.insert((clock, ev.stream.0));
                }
            } else {
                need_adopt.push(ev.stream.0);
            }
            entry.last_touch = clock;
        }
        for id in need_adopt {
            self.readopt(id)?;
        }
        Ok(())
    }

    /// Ingests one interleaved batch synchronously.
    ///
    /// Events are routed to their stream's shard (preserving per-stream
    /// order), the shards process in parallel, and the call returns
    /// once this batch's epoch watermark is reached — the caller helps
    /// drain the rings while it waits, so a saturated host processes
    /// mostly inline instead of context-switching. The result holds one
    /// [`Output`] per stream touched by the batch, in first-touch order
    /// of `events` — a deterministic function of the input alone.
    ///
    /// Under a [`MemoryBudget`], hibernated streams the batch touches
    /// are transparently re-adopted first, and the resident count is
    /// trimmed back under the cap before the call returns. Neither step
    /// changes any stream's output by a single bit.
    ///
    /// Must not be interleaved with uncollected [`Engine::submit`]
    /// epochs (fails with [`EngineError::UncollectedEpochs`]; collect
    /// them first).
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        self.ensure_live()?;
        if !self.outstanding.is_empty() {
            return Err(EngineError::UncollectedEpochs);
        }
        self.submit(events)?;
        let (_, outputs) = self
            .collect_next()?
            .expect("submit queued exactly one epoch");
        Ok(outputs)
    }

    /// Publishes one interleaved batch without waiting for it: the
    /// pipelined half of the ingest API. Returns the batch's epoch
    /// number; its outputs arrive via [`Engine::collect_next`] /
    /// [`Engine::try_collect_next`], strictly in submission order. At
    /// most `ring_capacity` sub-batches per shard sit unapplied — a
    /// publish into a full ring drains an entry on the caller thread
    /// before parking, so backpressure converts into useful work.
    pub fn submit(&mut self, events: &[Event]) -> Result<u64, EngineError> {
        self.ensure_live()?;
        if self.max_resident > 0 || self.spilled_count > 0 {
            self.prepare_batch(events)?;
        }
        self.maybe_rebalance()?;
        self.epoch += 1;
        let epoch = self.epoch;
        if matches!(self.backend, Backend::Inline(_)) {
            let outputs = self.dispatch_inline(events)?;
            self.outstanding
                .push_back(PendingEpoch::Ready(epoch, outputs));
        } else {
            let meta = self.route_and_publish(epoch, events)?;
            self.outstanding.push_back(PendingEpoch::Meta(meta));
        }
        self.metrics.batches.inc();
        self.metrics.epochs_submitted.inc();
        self.metrics.items.add(events.len() as u64);
        if self.max_resident > 0 {
            self.enforce_budget()?;
        }
        Ok(epoch)
    }

    /// Collects the oldest outstanding epoch's outputs, blocking (and
    /// help-draining) until its watermark is reached. `Ok(None)` when
    /// nothing is outstanding.
    pub fn collect_next(&mut self) -> Result<Option<(u64, Vec<Output>)>, EngineError> {
        self.ensure_live()?;
        match self.outstanding.pop_front() {
            None => Ok(None),
            Some(PendingEpoch::Ready(epoch, outputs)) => {
                self.metrics.epochs_collected.inc();
                Ok(Some((epoch, outputs)))
            }
            Some(PendingEpoch::Meta(meta)) => {
                let outputs = self.collect_meta(&meta)?;
                let epoch = meta.epoch;
                self.recycle_meta(meta);
                self.metrics.epochs_collected.inc();
                Ok(Some((epoch, outputs)))
            }
        }
    }

    /// Non-blocking [`collect_next`](Self::collect_next): collects the
    /// oldest outstanding epoch only when its watermark is already
    /// reached. (A poisoned shard counts as ready, so the typed error
    /// surfaces here instead of needing a blocking call.)
    pub fn try_collect_next(&mut self) -> Result<Option<(u64, Vec<Output>)>, EngineError> {
        self.ensure_live()?;
        let ready = match self.outstanding.front() {
            None => return Ok(None),
            Some(PendingEpoch::Ready(..)) => true,
            Some(PendingEpoch::Meta(meta)) => match &self.backend {
                Backend::Ring(r) => meta
                    .shard_seq
                    .iter()
                    .all(|&(s, seq)| r.applied(s as usize) >= seq || r.is_poisoned(s as usize)),
                Backend::Inline(_) => true,
            },
        };
        if ready {
            self.collect_next()
        } else {
            Ok(None)
        }
    }

    /// Epochs submitted but not yet collected.
    pub fn outstanding_epochs(&self) -> usize {
        self.outstanding.len()
    }

    /// Configured per-shard ring capacity.
    pub fn ring_capacity(&self) -> usize {
        self.ring_capacity
    }

    /// The single-worker ingest body: validate and hand the whole slice
    /// to the inline shard — no routing pass, no copy, no ring. Its
    /// first-touch order IS the batch's first-touch order.
    fn dispatch_inline(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        // Validate the ids up front so an error dispatches nothing
        // (run-cached: consecutive events of one stream cost one
        // lookup).
        let mut last: Option<u64> = None;
        for ev in events {
            if last != Some(ev.stream.0) {
                if !self.streams.contains_key(&ev.stream.0) {
                    return Err(EngineError::UnknownStream(ev.stream));
                }
                last = Some(ev.stream.0);
            }
        }
        let Backend::Inline(shard) = &mut self.backend else {
            unreachable!("caller checked the backend");
        };
        // Same containment as a ring consumer: a session panic poisons
        // the shard, not the caller.
        match catch_unwind(AssertUnwindSafe(|| shard.ingest_slice(events))) {
            Ok(outs) => Ok(outs
                .into_iter()
                .map(|(stream, samples)| Output { stream, samples })
                .collect()),
            Err(_panic) => {
                let e = EngineError::WorkerLost { shard: 0 };
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }

    /// The ring ingest front half: one routing pass fills per-shard
    /// staging buffers (events plus `(slot, len)` run descriptors — the
    /// consumer never hashes a stream id) and the epoch's first-touch
    /// metadata, then every non-empty shard slice is published to its
    /// ring. An unknown id rejects the batch before anything publishes.
    fn route_and_publish(
        &mut self,
        epoch: u64,
        events: &[Event],
    ) -> Result<EpochMeta, EngineError> {
        let mut meta = self.meta_pool.pop().unwrap_or_else(EpochMeta::new);
        meta.reset(epoch);
        let window = self.load_window;
        let mut i = 0usize;
        let mut unknown: Option<StreamId> = None;
        while i < events.len() {
            let id = events[i].stream;
            let Some(entry) = self.streams.get_mut(&id.0) else {
                unknown = Some(id);
                break;
            };
            if entry.epoch_stamp != epoch {
                entry.epoch_stamp = epoch;
                meta.slot_of.insert(id.0, meta.touch_order.len() as u32);
                meta.touch_order.push(id);
            }
            let (shard, slot) = (entry.shard, entry.slot);
            let start = i;
            i += 1;
            while i < events.len() && events[i].stream == id {
                i += 1;
            }
            let len = (i - start) as u32;
            if entry.load_stamp != window {
                entry.load_stamp = window;
                entry.load = 0;
            }
            entry.load += len as u64;
            self.shard_load[shard] += len as u64;
            let buf = &mut self.staging[shard];
            buf.events.extend_from_slice(&events[start..i]);
            buf.runs.push((slot, len));
        }
        if let Some(id) = unknown {
            for b in &mut self.staging {
                b.events.clear();
                b.runs.clear();
            }
            self.recycle_meta(meta);
            return Err(EngineError::UnknownStream(id));
        }
        let mut lost: Option<usize> = None;
        {
            let Backend::Ring(ring) = &self.backend else {
                unreachable!("caller checked the backend");
            };
            for shard in 0..self.staging.len() {
                if self.staging[shard].runs.is_empty() {
                    continue;
                }
                let (mut ev_buf, mut run_buf) = self.buf_pool.pop().unwrap_or_default();
                ev_buf.clear();
                run_buf.clear();
                let buf = &mut self.staging[shard];
                let events = std::mem::replace(&mut buf.events, ev_buf);
                let runs = std::mem::replace(&mut buf.runs, run_buf);
                self.published[shard] += 1;
                let seq = self.published[shard];
                if ring.publish(shard, Entry { seq, events, runs }).is_err() {
                    lost = Some(shard);
                    break;
                }
                meta.shard_seq.push((shard as u32, seq));
            }
        }
        if let Some(shard) = lost {
            for b in &mut self.staging {
                b.events.clear();
                b.runs.clear();
            }
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        }
        Ok(meta)
    }

    /// The ring ingest back half: wait out each participating shard's
    /// watermark (helping to drain meanwhile), pop its completed
    /// result, and merge per-stream samples back into the epoch's
    /// first-touch order — fixed at routing time, so output order never
    /// depends on which thread applied what.
    fn collect_meta(&mut self, meta: &EpochMeta) -> Result<Vec<Output>, EngineError> {
        let mut per_stream: Vec<Option<Vec<Sample>>> = vec![None; meta.touch_order.len()];
        let mut lost: Option<usize> = None;
        {
            let Backend::Ring(ring) = &self.backend else {
                unreachable!("meta epochs exist only on the ring backend");
            };
            for &(shard, seq) in &meta.shard_seq {
                let shard = shard as usize;
                if ring.wait_applied(shard, seq).is_err() {
                    lost = Some(shard);
                    break;
                }
                let (done_seq, outs) = ring.take_done(shard, &mut self.buf_pool);
                debug_assert_eq!(done_seq, seq, "results collect in publish order");
                for (id, samples) in outs {
                    per_stream[meta.slot_of[&id.0] as usize] = Some(samples);
                }
            }
        }
        if let Some(shard) = lost {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        }
        Ok(meta
            .touch_order
            .iter()
            .zip(per_stream)
            .map(|(&stream, samples)| Output {
                stream,
                samples: samples.unwrap_or_default(),
            })
            .collect())
    }

    fn recycle_meta(&mut self, mut meta: EpochMeta) {
        if self.meta_pool.len() < 64 {
            meta.reset(0);
            self.meta_pool.push(meta);
        }
    }

    /// Runs the rebalance check when its cadence is due.
    fn maybe_rebalance(&mut self) -> Result<(), EngineError> {
        if self.rebalance_every == 0
            || self.epoch == 0
            || !self.epoch.is_multiple_of(self.rebalance_every)
            || !matches!(self.backend, Backend::Ring(_))
        {
            return Ok(());
        }
        self.rebalance_now()?;
        Ok(())
    }

    /// Runs the skew check immediately (normally driven by
    /// [`RebalanceConfig::every_batches`]): when the hottest shard's
    /// ingest load since the last check exceeds `ratio` × the per-shard
    /// mean, its lowest-traffic streams migrate to the coldest shard
    /// until the hot shard is back around the mean — one hot stream no
    /// longer idles the other workers. Returns how many streams moved.
    /// The decision is a deterministic function of the ingest history
    /// (ties break by stream id); outputs are never affected.
    pub fn rebalance_now(&mut self) -> Result<usize, EngineError> {
        self.ensure_live()?;
        let shards = self.shard_load.len();
        if shards < 2 {
            return Ok(0);
        }
        let total: u64 = self.shard_load.iter().sum();
        let mean = total as f64 / shards as f64;
        let mut hot = 0usize;
        let mut cold = 0usize;
        for s in 0..shards {
            if self.shard_load[s] > self.shard_load[hot] {
                hot = s;
            }
            if self.shard_load[s] < self.shard_load[cold] {
                cold = s;
            }
        }
        let hot_load = self.shard_load[hot];
        if total == 0
            || (hot_load as f64) <= mean * self.rebalance_ratio
            || self.resident_per_shard[hot] <= 1
        {
            self.bump_load_window();
            return Ok(0);
        }
        // The hot shard's resident streams, coldest first (ties broken
        // by id so hash-map iteration order cannot leak into placement).
        let window = self.load_window;
        let mut members: Vec<(u64, u64)> = self
            .streams
            .iter()
            .filter(|(_, e)| e.resident && e.shard == hot)
            .map(|(id, e)| {
                let load = if e.load_stamp == window { e.load } else { 0 };
                (load, *id)
            })
            .collect();
        members.sort_unstable();
        let mut moved = 0usize;
        let mut hot_now = hot_load as f64;
        let mut cold_now = self.shard_load[cold] as f64;
        // The hottest stream stays put: a single stream cannot be
        // split, only unburdened.
        for &(load, id) in members.iter().take(members.len() - 1) {
            if hot_now <= mean || cold_now + load as f64 > mean {
                break;
            }
            self.migrate_stream(StreamId(id), cold)?;
            hot_now -= load as f64;
            cold_now += load as f64;
            moved += 1;
        }
        self.bump_load_window();
        self.metrics.rebalance_steals.add(moved as u64);
        Ok(moved)
    }

    /// Starts a fresh load-accounting window (per-stream counts expire
    /// lazily via their stamp).
    fn bump_load_window(&mut self) {
        self.load_window += 1;
        for l in &mut self.shard_load {
            *l = 0;
        }
    }

    /// Migrates one stream to shard `to` (snapshot → transfer → adopt;
    /// the `WMSS` checkpoint encoding is the migration payload). The
    /// source shard is synced first, so no published events are
    /// outstanding against the moving session; a hibernated stream just
    /// retargets its registry entry. Returns `false` when the stream
    /// already lives on `to`. Outputs are never affected — the
    /// equivalence wall forces migration at arbitrary points and
    /// byte-compares against the sequential pipeline.
    ///
    /// # Panics
    ///
    /// Panics when `to >= workers()`.
    pub fn migrate_stream(&mut self, id: StreamId, to: usize) -> Result<bool, EngineError> {
        self.ensure_live()?;
        assert!(to < self.workers(), "target shard out of range");
        let Some(entry) = self.streams.get(&id.0) else {
            return Err(EngineError::UnknownStream(id));
        };
        let from = entry.shard;
        if from == to {
            return Ok(false);
        }
        if !entry.resident {
            self.streams.get_mut(&id.0).expect("checked").shard = to;
            return Ok(true);
        }
        let spec = entry.spec.clone();
        self.sync_shard(from)?;
        let snaps = match &self.backend {
            Backend::Ring(r) => r.shard_op(from, |s| s.evict(&[id])).ok(),
            Backend::Inline(_) => unreachable!("a single shard cannot migrate"),
        };
        let Some(snaps) = snaps else {
            return Err(self.poison_with(EngineError::WorkerLost { shard: from }));
        };
        let (_, kind, bytes) = snaps.into_iter().next().expect("evicted exactly one");
        // From here the session exists only as bytes: failing to
        // re-materialize it is state loss and poisons the engine.
        let session = match Session::restore(spec, kind, &bytes) {
            Ok(s) => s,
            Err(e) => return Err(self.poison_with(EngineError::Checkpoint(e))),
        };
        let slot = match &self.backend {
            Backend::Ring(r) => r.shard_op(to, |s| s.adopt(id, session)).ok(),
            Backend::Inline(_) => unreachable!("a single shard cannot migrate"),
        };
        let Some(slot) = slot else {
            return Err(self.poison_with(EngineError::WorkerLost { shard: to }));
        };
        let entry = self.streams.get_mut(&id.0).expect("checked");
        entry.shard = to;
        entry.slot = slot;
        self.resident_per_shard[from] -= 1;
        self.resident_per_shard[to] += 1;
        Ok(true)
    }

    /// Captures a [`Checkpoint`] of every registered session at the
    /// current batch boundary.
    ///
    /// This is a read-only barrier: each shard snapshots its sessions in
    /// registration order without mutating them, so a run that
    /// checkpoints produces exactly the same outputs as one that does
    /// not. The returned checkpoint's `meta` is empty; callers stash
    /// their own resume bookkeeping there before serializing.
    ///
    /// Checkpoints are **incremental at the serialization layer**: each
    /// shard caches the last snapshot per session keyed by its mutation
    /// count, so a session untouched since the previous checkpoint is
    /// not re-serialized. Hibernated sessions are cheaper still — their
    /// bytes are copied straight out of the spill log
    /// (checksum-verified), with no re-adoption and no serialization.
    /// The checkpoint itself stays fully self-contained: restoring needs
    /// the checkpoint alone, never the spill file.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, EngineError> {
        self.ensure_live()?;
        let started = std::time::Instant::now();
        // Snapshot at the watermark: every published event must be
        // applied before any session serializes. (Uncollected epochs
        // stay collectible afterwards — their results are already in
        // the done queues.)
        self.sync_all()?;
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); self.router.shards()];
        let mut hibernated: Vec<StreamId> = Vec::new();
        for &id in &self.order {
            let entry = &self.streams[&id.0];
            if entry.resident {
                per_shard[entry.shard].push(id);
            } else {
                hibernated.push(id);
            }
        }
        let mut by_id: HashMap<u64, (u8, Vec<u8>)> = HashMap::new();
        for id in hibernated {
            match self.spill.read(id.0) {
                Ok(Some((kind, bytes))) => {
                    by_id.insert(id.0, (kind, bytes));
                }
                Ok(None) => {
                    let e = EngineError::Checkpoint(CheckpointError::Invalid(format!(
                        "hibernated stream {id} has no spill record"
                    )));
                    return Err(self.poison_with(e));
                }
                Err(e) => return Err(self.poison_with(e.into())),
            }
        }
        let mut lost: Option<usize> = None;
        match &mut self.backend {
            Backend::Inline(shard) => {
                match catch_unwind(AssertUnwindSafe(|| shard.snapshot(&per_shard[0]))) {
                    Ok(snaps) => {
                        for (id, kind, bytes) in snaps {
                            by_id.insert(id.0, (kind, bytes));
                        }
                    }
                    Err(_panic) => lost = Some(0),
                }
            }
            Backend::Ring(ring) => {
                // Shards are quiesced (synced above), so the snapshot
                // pass runs as plain control ops on the caller thread.
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    match ring.shard_op(w, |s| s.snapshot(&ids)) {
                        Ok(snaps) => {
                            for (id, kind, bytes) in snaps {
                                by_id.insert(id.0, (kind, bytes));
                            }
                        }
                        Err(()) => {
                            lost = Some(w);
                            break;
                        }
                    }
                }
            }
        }
        if let Some(w) = lost {
            return Err(self.poison_with(EngineError::WorkerLost { shard: w }));
        }
        let streams = self
            .order
            .iter()
            .map(|id| {
                let (kind, snapshot) = by_id.remove(&id.0).expect("every stream snapshotted");
                CheckpointStream {
                    id: *id,
                    kind,
                    snapshot,
                }
            })
            .collect();
        self.metrics
            .checkpoint_seconds
            .observe_duration(started.elapsed());
        Ok(Checkpoint {
            meta: Vec::new(),
            streams,
        })
    }

    /// Flushes every registered stream and shuts the executor down.
    ///
    /// Embedding streams drain their residual window into
    /// [`StreamOutcome::tail`] and report their [`EmbedStats`];
    /// detection streams produce their [`DetectionReport`]. Outcomes are
    /// in registration order.
    ///
    /// Hibernated sessions are re-adopted for their flush in chunks of
    /// at most `max_resident` per shard, so finishing a million-stream
    /// registry never materializes more sessions than the budget allows.
    pub fn finish(mut self) -> Result<Vec<StreamOutcome>, EngineError> {
        self.ensure_live()?;
        // Finishing consumes the engine; silently discarding pipelined
        // outputs would be data loss, so the caller must collect first.
        if !self.outstanding.is_empty() {
            return Err(EngineError::UncollectedEpochs);
        }
        self.sync_all()?;
        let shards = self.router.shards();
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); shards];
        let mut hibernated: Vec<Vec<StreamId>> = vec![Vec::new(); shards];
        for &id in &self.order {
            let entry = &self.streams[&id.0];
            if entry.resident {
                per_shard[entry.shard].push(id);
            } else {
                hibernated[entry.shard].push(id);
            }
        }
        let mut by_id: HashMap<u64, StreamOutcome> = HashMap::new();
        // Pass 1: flush every resident session, all shards in parallel.
        match &mut self.backend {
            Backend::Inline(shard) => {
                let ids = std::mem::take(&mut per_shard[0]);
                match catch_unwind(AssertUnwindSafe(|| shard.finish(ids))) {
                    Ok(outcomes) => {
                        for o in outcomes {
                            by_id.insert(o.stream.0, o);
                        }
                    }
                    Err(_panic) => {
                        let e = EngineError::WorkerLost { shard: 0 };
                        self.poison = Some(e.clone());
                        return Err(e);
                    }
                }
            }
            Backend::Ring(ring) => {
                let mut lost: Option<usize> = None;
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    match ring.shard_op(w, |s| s.finish(ids)) {
                        Ok(outcomes) => {
                            for o in outcomes {
                                by_id.insert(o.stream.0, o);
                            }
                        }
                        Err(()) => {
                            lost = Some(w);
                            break;
                        }
                    }
                }
                if let Some(w) = lost {
                    return Err(self.poison_with(EngineError::WorkerLost { shard: w }));
                }
            }
        }
        // Pass 2: re-adopt and flush hibernated sessions, shard by
        // shard, in budget-sized chunks.
        let chunk_size = if self.max_resident > 0 {
            self.max_resident
        } else {
            usize::MAX
        };
        for (w, shard_ids) in hibernated.iter_mut().enumerate().take(shards) {
            let ids = std::mem::take(shard_ids);
            if ids.is_empty() {
                continue;
            }
            for chunk in ids.chunks(chunk_size) {
                for id in chunk {
                    self.readopt(id.0)?;
                }
                for o in self.finish_shard(w, chunk.to_vec())? {
                    by_id.insert(o.stream.0, o);
                }
            }
        }
        Ok(self
            .order
            .iter()
            .map(|id| by_id.remove(&id.0).expect("every stream flushed"))
            .collect())
    }

    /// Flushes the listed sessions on one shard (pass 2 of `finish`).
    fn finish_shard(
        &mut self,
        w: usize,
        ids: Vec<StreamId>,
    ) -> Result<Vec<StreamOutcome>, EngineError> {
        let outcomes = match &mut self.backend {
            Backend::Inline(shard) => catch_unwind(AssertUnwindSafe(|| shard.finish(ids))).ok(),
            Backend::Ring(ring) => ring.shard_op(w, |s| s.finish(ids)).ok(),
        };
        match outcomes {
            Some(outcomes) => Ok(outcomes),
            None => Err(self.poison_with(EngineError::WorkerLost { shard: w })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wms_core::encoding::initial::InitialEncoder;
    use wms_core::{Scheme, Watermark, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn embed_spec() -> StreamSpec {
        let p = WmParams {
            window: 64,
            degree: 2,
            radius: 0.01,
            max_subset: 4,
            label_len: 3,
            label_stride: 1,
            ..WmParams::default()
        };
        let scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(5))).unwrap();
        StreamSpec::Embed(Arc::new(
            EmbedConfig::new(scheme, Arc::new(InitialEncoder), Watermark::single(true)).unwrap(),
        ))
    }

    fn wave(n: usize, phase: f64) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 + phase;
                0.3 * (t * core::f64::consts::TAU / 23.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r1 = ShardRouter::new(Key::from_u64(9), 8);
        let r2 = ShardRouter::new(Key::from_u64(9), 8);
        for id in 0..500u64 {
            let s = r1.shard_of(StreamId(id));
            assert!(s < 8);
            assert_eq!(s, r2.shard_of(StreamId(id)), "stable for id {id}");
        }
        // A different key produces a different placement somewhere.
        let other = ShardRouter::new(Key::from_u64(10), 8);
        assert!((0..500u64).any(|id| r1.shard_of(StreamId(id)) != other.shard_of(StreamId(id))));
    }

    #[test]
    fn router_spreads_streams() {
        let r = ShardRouter::new(Key::from_u64(1), 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[r.shard_of(StreamId(id))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed shard load: {counts:?}");
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            e.register(StreamId(1), embed_spec()).unwrap();
            assert_eq!(
                e.register(StreamId(1), embed_spec()),
                Err(EngineError::DuplicateStream(StreamId(1)))
            );
        }
    }

    #[test]
    fn unknown_stream_rejected_without_side_effects() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            e.register(StreamId(1), embed_spec()).unwrap();
            let known = Event::new(StreamId(1), Sample::new(0, 0.1));
            let unknown = Event::new(StreamId(2), Sample::new(0, 0.1));
            assert_eq!(
                e.ingest(&[known, unknown]),
                Err(EngineError::UnknownStream(StreamId(2)))
            );
            // The batch was rejected atomically: stream 1 saw nothing, so
            // its full run through finish drains an empty window.
            let outcomes = e.finish().unwrap();
            assert_eq!(outcomes[0].embed_stats.unwrap().items_in, 0);
        }
    }

    #[test]
    fn outputs_follow_first_touch_order_and_conserve_samples() {
        for workers in [1, 2, 3] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            for id in [4u64, 9, 2] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let streams: Vec<(StreamId, Vec<Sample>)> = [4u64, 9, 2]
                .iter()
                .map(|&id| (StreamId(id), wave(300, id as f64)))
                .collect();
            // Interleave round-robin; batch in chunks of 7.
            let mut events = Vec::new();
            for i in 0..300 {
                for (id, s) in &streams {
                    events.push(Event::new(*id, s[i]));
                }
            }
            let mut emitted: HashMap<u64, Vec<Sample>> = HashMap::new();
            for chunk in events.chunks(7) {
                let outs = e.ingest(chunk).unwrap();
                // First-touch order of the chunk.
                let mut seen = Vec::new();
                for ev in chunk {
                    if !seen.contains(&ev.stream) {
                        seen.push(ev.stream);
                    }
                }
                assert_eq!(outs.iter().map(|o| o.stream).collect::<Vec<_>>(), seen);
                for o in outs {
                    emitted.entry(o.stream.0).or_default().extend(o.samples);
                }
            }
            for o in e.finish().unwrap() {
                emitted.entry(o.stream.0).or_default().extend(o.tail);
            }
            for (id, s) in &streams {
                let got = &emitted[&id.0];
                assert_eq!(got.len(), s.len(), "stream {id} lost samples");
                for (a, b) in got.iter().zip(s) {
                    assert_eq!(a.index, b.index, "stream {id} reordered");
                }
            }
        }
    }

    #[test]
    fn finish_outcomes_in_registration_order() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            for id in [11u64, 3, 7] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let ids: Vec<u64> = e.finish().unwrap().iter().map(|o| o.stream.0).collect();
            assert_eq!(ids, vec![11, 3, 7]);
        }
    }

    #[test]
    fn budget_caps_resident_sessions_with_per_shard_accounting() {
        for workers in [1usize, 3] {
            let cfg = EngineConfig::with_workers(workers).with_budget(MemoryBudget::resident(5));
            let mut e = Engine::new(cfg).unwrap();
            for id in 0..20u64 {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            assert!(
                e.resident_streams() <= 5,
                "{} resident",
                e.resident_streams()
            );
            assert_eq!(e.resident_streams() + e.spilled_streams(), 20);
            assert_eq!(
                e.resident_per_shard().iter().sum::<usize>(),
                e.resident_streams(),
                "per-shard accounts must sum to the resident total"
            );
            assert_eq!(e.is_resident(StreamId(99)), None, "unregistered id");
            // Every stream still finishes, spilled or not.
            assert_eq!(e.finish().unwrap().len(), 20);
        }
    }

    #[test]
    fn hibernate_explicitly_and_readopt_on_touch() {
        let cfg = EngineConfig::with_workers(2).with_budget(MemoryBudget::resident(8));
        let mut e = Engine::new(cfg).unwrap();
        for id in 0..4u64 {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        assert_eq!(
            e.hibernate(StreamId(50)),
            Err(EngineError::UnknownStream(StreamId(50)))
        );
        assert!(e.hibernate(StreamId(2)).unwrap(), "first eviction evicts");
        assert!(!e.hibernate(StreamId(2)).unwrap(), "already hibernated");
        assert_eq!(e.is_resident(StreamId(2)), Some(false));
        assert_eq!(e.spilled_streams(), 1);
        assert!(e.spill_stats().records >= 1);
        // Touching the stream transparently re-adopts it.
        let s = wave(3, 2.0);
        let events: Vec<Event> = s.iter().map(|&s| Event::new(StreamId(2), s)).collect();
        e.ingest(&events).unwrap();
        assert_eq!(e.is_resident(StreamId(2)), Some(true));
        assert_eq!(e.spilled_streams(), 0);
        e.finish().unwrap();
    }

    #[test]
    fn noop_streams_process_under_budget() {
        let cfg = EngineConfig::with_workers(2).with_budget(MemoryBudget::resident(3));
        let mut e = Engine::new(cfg).unwrap();
        for id in 0..10u64 {
            e.register(StreamId(id), StreamSpec::NoOp).unwrap();
        }
        let events: Vec<Event> = (0..10u64)
            .map(|id| Event::new(StreamId(id), Sample::new(0, 0.5)))
            .collect();
        let outs = e.ingest(&events).unwrap();
        assert!(outs.iter().all(|o| o.samples.is_empty()));
        assert!(e.resident_streams() <= 3);
        for o in e.finish().unwrap() {
            assert!(o.tail.is_empty());
            assert!(o.embed_stats.is_none());
            assert!(o.report.is_none());
        }
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let mut e = Engine::new(EngineConfig::with_workers(2)).unwrap();
        for id in [11u64, 3, 7] {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        let mut ck = e.checkpoint().unwrap();
        ck.meta = b"cursor=42".to_vec();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.meta, b"cursor=42");
        assert_eq!(
            back.streams().collect::<Vec<_>>(),
            vec![StreamId(11), StreamId(3), StreamId(7)],
            "registration order preserved"
        );
        assert_eq!(back.num_streams(), 3);
        // Truncations fail loudly.
        for cut in [0usize, 3, 6, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
