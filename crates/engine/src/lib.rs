//! # wms-engine
//!
//! Sharded multi-stream watermarking engine: the paper's single-stream
//! pipeline ([`wms_core`]) lifted into a multi-tenant service core.
//!
//! * **Session registry** — every live stream is a [`StreamId`]-keyed
//!   session owning its per-stream state
//!   ([`EmbedSession`](wms_core::EmbedSession) /
//!   [`DetectSession`](wms_core::DetectSession)); the immutable
//!   configuration ([`EmbedConfig`] /
//!   [`DetectConfig`]) is shared across streams behind an `Arc`, so a
//!   tenant with one key and thousands of sensors pays for the scheme
//!   once.
//! * **Batched ingestion** — [`Engine::ingest`] takes a slice of
//!   interleaved [`Event`]s, groups them by shard, and returns each
//!   touched stream's emitted samples.
//! * **Parallel shard executor** — shard-per-worker `std::thread`s (the
//!   workspace is offline: channels and threads, no async runtime); each
//!   worker exclusively owns its shard's sessions, so the hot path takes
//!   no locks. With exactly **one** worker the engine keeps the shard on
//!   the caller thread and runs every sub-batch inline — no channel
//!   round-trip, no cross-thread hand-off — which recovers the
//!   sequential pipeline's throughput for single-shard workloads.
//! * **Checkpoint/restore** — [`Engine::checkpoint`] captures every
//!   session's replay state in a versioned binary [`Checkpoint`];
//!   [`Engine::restore`] rebuilds an engine that continues
//!   **bit-identically** to one that never stopped.
//!
//! ## Ordering and determinism
//!
//! Samples of one stream are processed in the order they appear in the
//! ingest batches, and batches in call order — so each session sees
//! exactly the sample sequence a dedicated single-stream pipeline would,
//! and its outputs are **bit-identical** to that pipeline's (the
//! equivalence tests in `tests/` prove it). Result ordering never
//! depends on thread timing: `ingest` returns streams in first-touch
//! order of the input batch, [`Engine::finish`] returns them in
//! registration order, whatever the worker count.
//!
//! Shard assignment is keyed hashing through [`wms_crypto`]
//! ([`ShardRouter`]), not `DefaultHasher`, so a stream's shard is stable
//! across runs, processes and Rust versions for a given engine key and
//! shard count.
//!
//! ## Checkpoints
//!
//! A [`Checkpoint`] is taken at a batch boundary (between `ingest`
//! calls): the engine barriers over its shards, snapshots every session
//! in registration order without disturbing it, and hands back a
//! structure the caller can serialize ([`Checkpoint::to_bytes`]) and
//! persist. [`Engine::restore`] re-adopts the sessions under
//! caller-resolved [`StreamSpec`]s; each session snapshot is stamped
//! with its scheme's
//! [`memo_fingerprint`](wms_core::Scheme::memo_fingerprint), so a
//! restore against a different key/τ/γ/α fails with a typed
//! [`CheckpointError`] instead of silently losing watermark sync. The
//! worker count is *not* part of the state: a checkpoint taken on 8
//! workers restores onto 1 (or vice versa) and still replays
//! bit-identically.
//!
//! ## Worker loss
//!
//! A panic inside a session (a bug in an encoder, a poisoned stream)
//! does not cascade: the worker catches it, reports the shard as lost,
//! and [`Engine::ingest`]/[`Engine::finish`]/[`Engine::checkpoint`]
//! surface [`EngineError::WorkerLost`] on the caller thread. The engine
//! is poisoned afterwards — the lost shard's sessions are gone — and
//! every later call returns the same error; dropping the engine remains
//! safe and panic-free.
//!
//! ## Backpressure
//!
//! `ingest` is synchronous: it dispatches one sub-batch per shard and
//! blocks until every worker has drained its share (a barrier per call).
//! Callers control memory by choosing the batch size; the engine never
//! buffers more than one in-flight batch per worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod worker;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use wms_core::checkpoint::{ByteReader, ByteWriter};
pub use wms_core::CheckpointError;
use wms_core::{DetectConfig, DetectionReport, EmbedConfig, EmbedStats};
use wms_crypto::{Key, KeyedHash};
use wms_stream::Sample;
pub use wms_stream::{Event, StreamId};
use worker::{Cmd, Reply, Session, Shard, WorkerHandle};

/// How a registered stream processes its samples.
#[derive(Clone)]
pub enum StreamSpec {
    /// Watermark-embedding session; emits (possibly altered) samples.
    Embed(Arc<EmbedConfig>),
    /// Detection session; emits nothing until `finish`, which yields its
    /// [`DetectionReport`].
    Detect(Arc<DetectConfig>),
    /// Test-only fault injection: the session panics while processing
    /// its `panic_after`-th sample (1-based; `0` behaves as `1`). Exists
    /// so the worker-loss path has a deterministic regression test; a
    /// production registry has no reason to construct it.
    #[doc(hidden)]
    FaultInject {
        /// Sample number whose processing panics.
        panic_after: u64,
    },
}

/// Samples one stream emitted while a batch was ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The stream that produced the samples.
    pub stream: StreamId,
    /// Emitted samples, in stream order (empty when the window retained
    /// everything — detection streams always report empty here).
    pub samples: Vec<Sample>,
}

/// Final state of one stream after [`Engine::finish`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// The stream this outcome describes.
    pub stream: StreamId,
    /// Residual samples drained from an embedding session's window
    /// (empty for detection streams).
    pub tail: Vec<Sample>,
    /// Embedding counters (embedding streams only).
    pub embed_stats: Option<EmbedStats>,
    /// Detection report (detection streams only).
    pub report: Option<DetectionReport>,
}

/// Engine construction/ingestion errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `register` was called twice for the same id.
    DuplicateStream(StreamId),
    /// An ingested event names an unregistered stream.
    UnknownStream(StreamId),
    /// A shard worker panicked. Its sessions are lost and the engine is
    /// poisoned: every further `ingest`/`checkpoint`/`finish` returns
    /// this error (dropping the engine stays safe).
    WorkerLost {
        /// The shard whose worker was lost.
        shard: usize,
    },
    /// [`Engine::restore`] could not resolve a [`StreamSpec`] for a
    /// stream recorded in the checkpoint.
    MissingSpec(StreamId),
    /// A checkpoint could not be decoded or applied (truncation, version
    /// skew, or a scheme-fingerprint mismatch).
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => write!(f, "stream {id} already registered"),
            EngineError::UnknownStream(id) => write!(f, "stream {id} is not registered"),
            EngineError::WorkerLost { shard } => write!(
                f,
                "shard {shard} worker lost to a panic; the engine is poisoned"
            ),
            EngineError::MissingSpec(id) => {
                write!(f, "no spec resolved for checkpointed stream {id}")
            }
            EngineError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// Deterministic keyed `StreamId -> shard` routing.
///
/// Uses the workspace's keyed one-way hash rather than
/// `std::hash::DefaultHasher`: the standard hasher is seeded per process
/// and its algorithm is not stable across Rust versions, so shard
/// assignment would change from run to run. Keyed MD5 of the id under a
/// fixed engine key is stable everywhere and costs one compression per
/// route (amortized to zero by batching).
#[derive(Clone)]
pub struct ShardRouter {
    hash: KeyedHash,
    shards: usize,
}

/// Domain-separation prefix for shard routing.
const SHARD_DOMAIN: &[u8] = b"wms/engine/shard";

impl ShardRouter {
    /// Router over `shards` shards keyed by `key` (`shards >= 1`).
    pub fn new(key: Key, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter {
            hash: KeyedHash::md5(key),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: StreamId) -> usize {
        (self
            .hash
            .hash_u64_parts(&[SHARD_DOMAIN, &id.0.to_le_bytes()])
            % self.shards as u64) as usize
    }
}

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Key for the shard router. The default is a fixed public constant:
    /// shard placement is a load-balancing concern, not a secret, and a
    /// fixed key keeps placement reproducible across deployments.
    pub shard_key: Key,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shard_key: Key::from_bytes(&b"wms/engine/default-shard-key"[..]),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// Checkpoint format magic.
const CK_MAGIC: [u8; 4] = *b"WMSC";
/// Newest engine checkpoint version this build reads and writes.
const CK_VERSION: u16 = 1;

/// One stream's entry in a checkpoint: its id, session kind tag, and
/// versioned session snapshot bytes.
struct CheckpointStream {
    id: StreamId,
    kind: u8,
    snapshot: Vec<u8>,
}

/// A consistent engine state captured at a batch boundary.
///
/// Contains every registered session's replay state in registration
/// order, plus a caller-defined `meta` blob (resume bookkeeping such as
/// an input cursor — the engine carries it verbatim and never reads it).
/// Serialize with [`to_bytes`](Self::to_bytes), decode with
/// [`from_bytes`](Self::from_bytes), re-animate with
/// [`Engine::restore`].
pub struct Checkpoint {
    /// Caller-defined resume metadata, carried verbatim.
    pub meta: Vec<u8>,
    streams: Vec<CheckpointStream>,
}

impl Checkpoint {
    /// Serializes to the versioned binary format (magic `WMSC`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(CK_MAGIC);
        w.put_u16(CK_VERSION);
        w.put_bytes(&self.meta);
        w.put_u64(self.streams.len() as u64);
        for s in &self.streams {
            w.put_u64(s.id.0);
            w.put_u8(s.kind);
            w.put_bytes(&s.snapshot);
        }
        w.into_bytes()
    }

    /// Decodes a [`to_bytes`](Self::to_bytes) image, rejecting
    /// truncation, trailing garbage and unknown versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = ByteReader::with_magic(bytes, CK_MAGIC)?;
        let version = r.get_u16()?;
        if version != CK_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CK_VERSION,
            });
        }
        let meta = r.get_bytes()?.to_vec();
        let n = r.get_len(17)?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let id = StreamId(r.get_u64()?);
            let kind = r.get_u8()?;
            let snapshot = r.get_bytes()?.to_vec();
            streams.push(CheckpointStream { id, kind, snapshot });
        }
        r.finish()?;
        Ok(Checkpoint { meta, streams })
    }

    /// The checkpointed streams, in their registration order.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.streams.iter().map(|s| s.id)
    }

    /// Number of checkpointed streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }
}

/// Where the shards live: inline on the caller thread (single worker) or
/// behind per-shard worker threads.
enum Backend {
    /// `workers == 1`: no thread, no channels — every sub-batch runs on
    /// the caller thread against the directly-owned shard. This is what
    /// makes single-shard batches as fast as the sequential pipeline.
    Inline(Box<Shard>),
    /// `workers > 1`: one thread per shard.
    Threads(Vec<WorkerHandle>),
}

/// The multi-stream engine: session registry + shard executor.
pub struct Engine {
    router: ShardRouter,
    backend: Backend,
    /// `id -> shard`, also the duplicate/unknown-id check.
    shard_of: HashMap<u64, usize>,
    /// Registration order (drives `finish` output ordering).
    order: Vec<StreamId>,
    /// Scratch: per-shard event sub-batches, reused across `ingest`s.
    batches: Vec<Vec<Event>>,
    /// First shard lost to a panic; poisons every subsequent operation.
    lost: Option<usize>,
}

impl Engine {
    /// Spawns the shard executor (or adopts the single shard inline).
    pub fn new(config: EngineConfig) -> Self {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let router = ShardRouter::new(config.shard_key, workers);
        let backend = if workers == 1 {
            Backend::Inline(Box::new(Shard::new()))
        } else {
            Backend::Threads((0..workers).map(WorkerHandle::spawn).collect())
        };
        Engine {
            router,
            backend,
            shard_of: HashMap::new(),
            order: Vec::new(),
            batches: vec![Vec::new(); workers],
            lost: None,
        }
    }

    /// Rebuilds an engine from a [`Checkpoint`], resolving each
    /// checkpointed stream's [`StreamSpec`] through `spec_of` (specs
    /// hold key material and trait objects, so they cannot live inside
    /// the checkpoint itself). Streams are re-registered in their
    /// original registration order; the worker count may differ from the
    /// checkpointing engine's — shard placement is recomputed and the
    /// replay stays bit-identical.
    ///
    /// Fails with [`EngineError::MissingSpec`] when `spec_of` cannot name
    /// a stream, and with [`EngineError::Checkpoint`] when a session
    /// snapshot does not decode under its spec — in particular
    /// [`CheckpointError::FingerprintMismatch`] when the spec's scheme
    /// (key/τ/γ/α) differs from the one the snapshot was taken under.
    pub fn restore(
        config: EngineConfig,
        checkpoint: &Checkpoint,
        mut spec_of: impl FnMut(StreamId) -> Option<StreamSpec>,
    ) -> Result<Engine, EngineError> {
        let mut engine = Engine::new(config);
        for entry in &checkpoint.streams {
            let spec = spec_of(entry.id).ok_or(EngineError::MissingSpec(entry.id))?;
            let session = Session::restore(spec, entry.kind, &entry.snapshot)?;
            let shard = engine.router.shard_of(entry.id);
            if engine.shard_of.insert(entry.id.0, shard).is_some() {
                return Err(EngineError::DuplicateStream(entry.id));
            }
            engine.order.push(entry.id);
            match &mut engine.backend {
                Backend::Inline(s) => s.adopt(entry.id, session),
                Backend::Threads(ws) => {
                    let ok = ws[shard]
                        .request(Cmd::Adopt(entry.id, Box::new(session)))
                        .is_ok()
                        && matches!(ws[shard].wait(), Ok(Reply::Registered));
                    if !ok {
                        engine.lost = Some(shard);
                        return Err(EngineError::WorkerLost { shard });
                    }
                }
            }
        }
        Ok(engine)
    }

    /// Number of worker threads (= shards).
    pub fn workers(&self) -> usize {
        self.router.shards()
    }

    /// Registered streams, in registration order.
    pub fn streams(&self) -> &[StreamId] {
        &self.order
    }

    /// `Err(WorkerLost)` once any shard has been lost to a panic.
    fn ensure_live(&self) -> Result<(), EngineError> {
        match self.lost {
            Some(shard) => Err(EngineError::WorkerLost { shard }),
            None => Ok(()),
        }
    }

    /// Registers a stream. Fails on duplicate ids; the spec's parameters
    /// were already validated when its config was built.
    pub fn register(&mut self, id: StreamId, spec: StreamSpec) -> Result<(), EngineError> {
        self.ensure_live()?;
        let shard = self.router.shard_of(id);
        if self.shard_of.insert(id.0, shard).is_some() {
            return Err(EngineError::DuplicateStream(id));
        }
        self.order.push(id);
        match &mut self.backend {
            Backend::Inline(s) => {
                s.register(id, spec);
                Ok(())
            }
            Backend::Threads(ws) => {
                let ok = ws[shard].request(Cmd::Register(id, spec)).is_ok()
                    && matches!(ws[shard].wait(), Ok(Reply::Registered));
                if ok {
                    Ok(())
                } else {
                    self.lost = Some(shard);
                    Err(EngineError::WorkerLost { shard })
                }
            }
        }
    }

    /// Ingests one interleaved batch.
    ///
    /// Events are routed to their stream's shard (preserving per-stream
    /// order), the shards run in parallel, and the call returns once all
    /// of them are done. The result holds one [`Output`] per stream
    /// touched by the batch, in first-touch order of `events` — a
    /// deterministic function of the input alone.
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        self.ensure_live()?;
        if let Backend::Inline(shard) = &mut self.backend {
            // Single shard: no partitioning, no output merge — validate
            // the ids (run-cached: consecutive events of one stream cost
            // one lookup) and hand the slice straight to the shard. Its
            // first-touch order IS the batch's first-touch order.
            let mut last: Option<u64> = None;
            for ev in events {
                if last != Some(ev.stream.0) {
                    if !self.shard_of.contains_key(&ev.stream.0) {
                        return Err(EngineError::UnknownStream(ev.stream));
                    }
                    last = Some(ev.stream.0);
                }
            }
            // Same containment as a worker thread: a session panic
            // poisons the shard, not the caller.
            return match catch_unwind(AssertUnwindSafe(|| shard.ingest_slice(events))) {
                Ok(outs) => Ok(outs
                    .into_iter()
                    .map(|(stream, samples)| Output { stream, samples })
                    .collect()),
                Err(_panic) => {
                    self.lost = Some(0);
                    Err(EngineError::WorkerLost { shard: 0 })
                }
            };
        }
        // Validate + partition up front so an error dispatches nothing.
        for b in &mut self.batches {
            b.clear();
        }
        let mut touch_order: Vec<StreamId> = Vec::new();
        let mut touched: HashMap<u64, usize> = HashMap::new();
        let mut last: Option<(u64, usize)> = None;
        for &ev in events {
            let shard = match last {
                Some((id, s)) if id == ev.stream.0 => s,
                _ => {
                    let Some(&s) = self.shard_of.get(&ev.stream.0) else {
                        return Err(EngineError::UnknownStream(ev.stream));
                    };
                    touched.entry(ev.stream.0).or_insert_with(|| {
                        touch_order.push(ev.stream);
                        touch_order.len() - 1
                    });
                    last = Some((ev.stream.0, s));
                    s
                }
            };
            self.batches[shard].push(ev);
        }
        let mut per_stream: Vec<Option<Vec<Sample>>> = vec![None; touch_order.len()];
        match &mut self.backend {
            Backend::Inline(_) => unreachable!("handled above"),
            Backend::Threads(workers) => {
                // Dispatch to every shard with work, then barrier on the
                // replies (worker index order — determinism never leans
                // on timing). A lost worker does not cut the barrier
                // short: the remaining shards are still drained so their
                // state stays consistent with the command stream.
                let active: Vec<usize> = (0..workers.len())
                    .filter(|&w| !self.batches[w].is_empty())
                    .collect();
                let mut first_lost: Option<usize> = None;
                for &w in &active {
                    let batch = std::mem::take(&mut self.batches[w]);
                    if workers[w].request(Cmd::Ingest(batch)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for &w in &active {
                    match workers[w].wait() {
                        Ok(Reply::Ingested { outs, batch }) => {
                            self.batches[w] = batch;
                            for (id, samples) in outs {
                                per_stream[touched[&id.0]] = Some(samples);
                            }
                        }
                        Ok(_) => unreachable!("ingest reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    self.lost = Some(w);
                    return Err(EngineError::WorkerLost { shard: w });
                }
            }
        }
        Ok(touch_order
            .into_iter()
            .zip(per_stream)
            .map(|(stream, samples)| Output {
                stream,
                samples: samples.unwrap_or_default(),
            })
            .collect())
    }

    /// Captures a [`Checkpoint`] of every registered session at the
    /// current batch boundary.
    ///
    /// This is a read-only barrier: each shard snapshots its sessions in
    /// registration order without mutating them, so a run that
    /// checkpoints produces exactly the same outputs as one that does
    /// not. The returned checkpoint's `meta` is empty; callers stash
    /// their own resume bookkeeping there before serializing.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, EngineError> {
        self.ensure_live()?;
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); self.router.shards()];
        for &id in &self.order {
            per_shard[self.shard_of[&id.0]].push(id);
        }
        let mut by_id: HashMap<u64, (u8, Vec<u8>)> = HashMap::new();
        match &mut self.backend {
            Backend::Inline(shard) => {
                match catch_unwind(AssertUnwindSafe(|| shard.snapshot(&per_shard[0]))) {
                    Ok(snaps) => {
                        for (id, kind, bytes) in snaps {
                            by_id.insert(id.0, (kind, bytes));
                        }
                    }
                    Err(_panic) => {
                        self.lost = Some(0);
                        return Err(EngineError::WorkerLost { shard: 0 });
                    }
                }
            }
            Backend::Threads(workers) => {
                let mut first_lost: Option<usize> = None;
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if workers[w].request(Cmd::Snapshot(ids)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for (w, handle) in workers.iter_mut().enumerate() {
                    match handle.wait() {
                        Ok(Reply::Snapshots(snaps)) => {
                            for (id, kind, bytes) in snaps {
                                by_id.insert(id.0, (kind, bytes));
                            }
                        }
                        Ok(_) => unreachable!("snapshot reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    self.lost = Some(w);
                    return Err(EngineError::WorkerLost { shard: w });
                }
            }
        }
        let streams = self
            .order
            .iter()
            .map(|id| {
                let (kind, snapshot) = by_id.remove(&id.0).expect("every stream snapshotted");
                CheckpointStream {
                    id: *id,
                    kind,
                    snapshot,
                }
            })
            .collect();
        Ok(Checkpoint {
            meta: Vec::new(),
            streams,
        })
    }

    /// Flushes every registered stream and shuts the executor down.
    ///
    /// Embedding streams drain their residual window into
    /// [`StreamOutcome::tail`] and report their [`EmbedStats`];
    /// detection streams produce their [`DetectionReport`]. Outcomes are
    /// in registration order.
    pub fn finish(mut self) -> Result<Vec<StreamOutcome>, EngineError> {
        self.ensure_live()?;
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); self.router.shards()];
        for &id in &self.order {
            per_shard[self.shard_of[&id.0]].push(id);
        }
        let mut by_id: HashMap<u64, StreamOutcome> = HashMap::new();
        match &mut self.backend {
            Backend::Inline(shard) => {
                let ids = std::mem::take(&mut per_shard[0]);
                match catch_unwind(AssertUnwindSafe(|| shard.finish(ids))) {
                    Ok(outcomes) => {
                        for o in outcomes {
                            by_id.insert(o.stream.0, o);
                        }
                    }
                    Err(_panic) => {
                        self.lost = Some(0);
                        return Err(EngineError::WorkerLost { shard: 0 });
                    }
                }
            }
            Backend::Threads(workers) => {
                let mut first_lost: Option<usize> = None;
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if workers[w].request(Cmd::Finish(ids)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for (w, handle) in workers.iter_mut().enumerate() {
                    match handle.wait() {
                        Ok(Reply::Finished(outcomes)) => {
                            for o in outcomes {
                                by_id.insert(o.stream.0, o);
                            }
                        }
                        Ok(_) => unreachable!("finish reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    return Err(EngineError::WorkerLost { shard: w });
                }
            }
        }
        Ok(self
            .order
            .iter()
            .map(|id| by_id.remove(&id.0).expect("every stream flushed"))
            .collect())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Backend::Threads(workers) = &mut self.backend {
            for w in workers {
                w.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wms_core::encoding::initial::InitialEncoder;
    use wms_core::{Scheme, Watermark, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn embed_spec() -> StreamSpec {
        let p = WmParams {
            window: 64,
            degree: 2,
            radius: 0.01,
            max_subset: 4,
            label_len: 3,
            label_stride: 1,
            ..WmParams::default()
        };
        let scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(5))).unwrap();
        StreamSpec::Embed(Arc::new(
            EmbedConfig::new(scheme, Arc::new(InitialEncoder), Watermark::single(true)).unwrap(),
        ))
    }

    fn wave(n: usize, phase: f64) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 + phase;
                0.3 * (t * core::f64::consts::TAU / 23.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r1 = ShardRouter::new(Key::from_u64(9), 8);
        let r2 = ShardRouter::new(Key::from_u64(9), 8);
        for id in 0..500u64 {
            let s = r1.shard_of(StreamId(id));
            assert!(s < 8);
            assert_eq!(s, r2.shard_of(StreamId(id)), "stable for id {id}");
        }
        // A different key produces a different placement somewhere.
        let other = ShardRouter::new(Key::from_u64(10), 8);
        assert!((0..500u64).any(|id| r1.shard_of(StreamId(id)) != other.shard_of(StreamId(id))));
    }

    #[test]
    fn router_spreads_streams() {
        let r = ShardRouter::new(Key::from_u64(1), 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[r.shard_of(StreamId(id))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed shard load: {counts:?}");
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers));
            e.register(StreamId(1), embed_spec()).unwrap();
            assert_eq!(
                e.register(StreamId(1), embed_spec()),
                Err(EngineError::DuplicateStream(StreamId(1)))
            );
        }
    }

    #[test]
    fn unknown_stream_rejected_without_side_effects() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers));
            e.register(StreamId(1), embed_spec()).unwrap();
            let known = Event::new(StreamId(1), Sample::new(0, 0.1));
            let unknown = Event::new(StreamId(2), Sample::new(0, 0.1));
            assert_eq!(
                e.ingest(&[known, unknown]),
                Err(EngineError::UnknownStream(StreamId(2)))
            );
            // The batch was rejected atomically: stream 1 saw nothing, so
            // its full run through finish drains an empty window.
            let outcomes = e.finish().unwrap();
            assert_eq!(outcomes[0].embed_stats.unwrap().items_in, 0);
        }
    }

    #[test]
    fn outputs_follow_first_touch_order_and_conserve_samples() {
        for workers in [1, 2, 3] {
            let mut e = Engine::new(EngineConfig::with_workers(workers));
            for id in [4u64, 9, 2] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let streams: Vec<(StreamId, Vec<Sample>)> = [4u64, 9, 2]
                .iter()
                .map(|&id| (StreamId(id), wave(300, id as f64)))
                .collect();
            // Interleave round-robin; batch in chunks of 7.
            let mut events = Vec::new();
            for i in 0..300 {
                for (id, s) in &streams {
                    events.push(Event::new(*id, s[i]));
                }
            }
            let mut emitted: HashMap<u64, Vec<Sample>> = HashMap::new();
            for chunk in events.chunks(7) {
                let outs = e.ingest(chunk).unwrap();
                // First-touch order of the chunk.
                let mut seen = Vec::new();
                for ev in chunk {
                    if !seen.contains(&ev.stream) {
                        seen.push(ev.stream);
                    }
                }
                assert_eq!(outs.iter().map(|o| o.stream).collect::<Vec<_>>(), seen);
                for o in outs {
                    emitted.entry(o.stream.0).or_default().extend(o.samples);
                }
            }
            for o in e.finish().unwrap() {
                emitted.entry(o.stream.0).or_default().extend(o.tail);
            }
            for (id, s) in &streams {
                let got = &emitted[&id.0];
                assert_eq!(got.len(), s.len(), "stream {id} lost samples");
                for (a, b) in got.iter().zip(s) {
                    assert_eq!(a.index, b.index, "stream {id} reordered");
                }
            }
        }
    }

    #[test]
    fn finish_outcomes_in_registration_order() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers));
            for id in [11u64, 3, 7] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let ids: Vec<u64> = e.finish().unwrap().iter().map(|o| o.stream.0).collect();
            assert_eq!(ids, vec![11, 3, 7]);
        }
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let mut e = Engine::new(EngineConfig::with_workers(2));
        for id in [11u64, 3, 7] {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        let mut ck = e.checkpoint().unwrap();
        ck.meta = b"cursor=42".to_vec();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.meta, b"cursor=42");
        assert_eq!(
            back.streams().collect::<Vec<_>>(),
            vec![StreamId(11), StreamId(3), StreamId(7)],
            "registration order preserved"
        );
        assert_eq!(back.num_streams(), 3);
        // Truncations fail loudly.
        for cut in [0usize, 3, 6, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
