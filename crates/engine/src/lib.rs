//! # wms-engine
//!
//! Sharded multi-stream watermarking engine: the paper's single-stream
//! pipeline ([`wms_core`]) lifted into a multi-tenant service core.
//!
//! * **Session registry** — every live stream is a [`StreamId`]-keyed
//!   session owning its per-stream state
//!   ([`EmbedSession`](wms_core::EmbedSession) /
//!   [`DetectSession`](wms_core::DetectSession)); the immutable
//!   configuration ([`EmbedConfig`] /
//!   [`DetectConfig`]) is shared across streams behind an `Arc`, so a
//!   tenant with one key and thousands of sensors pays for the scheme
//!   once.
//! * **Batched ingestion** — [`Engine::ingest`] takes a slice of
//!   interleaved [`Event`]s, groups them by shard, and returns each
//!   touched stream's emitted samples.
//! * **Parallel shard executor** — shard-per-worker `std::thread`s (the
//!   workspace is offline: channels and threads, no async runtime); each
//!   worker exclusively owns its shard's sessions, so the hot path takes
//!   no locks.
//!
//! ## Ordering and determinism
//!
//! Samples of one stream are processed in the order they appear in the
//! ingest batches, and batches in call order — so each session sees
//! exactly the sample sequence a dedicated single-stream pipeline would,
//! and its outputs are **bit-identical** to that pipeline's (the
//! equivalence tests in `tests/` prove it). Result ordering never
//! depends on thread timing: `ingest` returns streams in first-touch
//! order of the input batch, [`Engine::finish`] returns them in
//! registration order, whatever the worker count.
//!
//! Shard assignment is keyed hashing through [`wms_crypto`]
//! ([`ShardRouter`]), not `DefaultHasher`, so a stream's shard is stable
//! across runs, processes and Rust versions for a given engine key and
//! shard count.
//!
//! ## Backpressure
//!
//! `ingest` is synchronous: it dispatches one sub-batch per shard and
//! blocks until every worker has drained its share (a barrier per call).
//! Callers control memory by choosing the batch size; the engine never
//! buffers more than one in-flight batch per worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod worker;

use std::collections::HashMap;
use std::sync::Arc;
use wms_core::{DetectConfig, DetectionReport, EmbedConfig, EmbedStats};
use wms_crypto::{Key, KeyedHash};
use wms_stream::Sample;
pub use wms_stream::{Event, StreamId};
use worker::{Cmd, Reply, WorkerHandle};

/// How a registered stream processes its samples.
#[derive(Clone)]
pub enum StreamSpec {
    /// Watermark-embedding session; emits (possibly altered) samples.
    Embed(Arc<EmbedConfig>),
    /// Detection session; emits nothing until `finish`, which yields its
    /// [`DetectionReport`].
    Detect(Arc<DetectConfig>),
}

/// Samples one stream emitted while a batch was ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The stream that produced the samples.
    pub stream: StreamId,
    /// Emitted samples, in stream order (empty when the window retained
    /// everything — detection streams always report empty here).
    pub samples: Vec<Sample>,
}

/// Final state of one stream after [`Engine::finish`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// The stream this outcome describes.
    pub stream: StreamId,
    /// Residual samples drained from an embedding session's window
    /// (empty for detection streams).
    pub tail: Vec<Sample>,
    /// Embedding counters (embedding streams only).
    pub embed_stats: Option<EmbedStats>,
    /// Detection report (detection streams only).
    pub report: Option<DetectionReport>,
}

/// Engine construction/ingestion errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `register` was called twice for the same id.
    DuplicateStream(StreamId),
    /// An ingested event names an unregistered stream.
    UnknownStream(StreamId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => write!(f, "stream {id} already registered"),
            EngineError::UnknownStream(id) => write!(f, "stream {id} is not registered"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Deterministic keyed `StreamId -> shard` routing.
///
/// Uses the workspace's keyed one-way hash rather than
/// `std::hash::DefaultHasher`: the standard hasher is seeded per process
/// and its algorithm is not stable across Rust versions, so shard
/// assignment would change from run to run. Keyed MD5 of the id under a
/// fixed engine key is stable everywhere and costs one compression per
/// route (amortized to zero by batching).
#[derive(Clone)]
pub struct ShardRouter {
    hash: KeyedHash,
    shards: usize,
}

/// Domain-separation prefix for shard routing.
const SHARD_DOMAIN: &[u8] = b"wms/engine/shard";

impl ShardRouter {
    /// Router over `shards` shards keyed by `key` (`shards >= 1`).
    pub fn new(key: Key, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter {
            hash: KeyedHash::md5(key),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: StreamId) -> usize {
        (self
            .hash
            .hash_u64_parts(&[SHARD_DOMAIN, &id.0.to_le_bytes()])
            % self.shards as u64) as usize
    }
}

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Key for the shard router. The default is a fixed public constant:
    /// shard placement is a load-balancing concern, not a secret, and a
    /// fixed key keeps placement reproducible across deployments.
    pub shard_key: Key,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shard_key: Key::from_bytes(&b"wms/engine/default-shard-key"[..]),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }
}

/// The multi-stream engine: session registry + shard executor.
pub struct Engine {
    router: ShardRouter,
    workers: Vec<WorkerHandle>,
    /// `id -> shard`, also the duplicate/unknown-id check.
    shard_of: HashMap<u64, usize>,
    /// Registration order (drives `finish` output ordering).
    order: Vec<StreamId>,
    /// Scratch: per-shard event sub-batches, reused across `ingest`s.
    batches: Vec<Vec<Event>>,
}

impl Engine {
    /// Spawns the shard executor.
    pub fn new(config: EngineConfig) -> Self {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let router = ShardRouter::new(config.shard_key, workers);
        let handles = (0..workers).map(WorkerHandle::spawn).collect();
        Engine {
            router,
            workers: handles,
            shard_of: HashMap::new(),
            order: Vec::new(),
            batches: vec![Vec::new(); workers],
        }
    }

    /// Number of worker threads (= shards).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Registered streams, in registration order.
    pub fn streams(&self) -> &[StreamId] {
        &self.order
    }

    /// Registers a stream. Fails on duplicate ids; the spec's parameters
    /// were already validated when its config was built.
    pub fn register(&mut self, id: StreamId, spec: StreamSpec) -> Result<(), EngineError> {
        let shard = self.router.shard_of(id);
        if self.shard_of.insert(id.0, shard).is_some() {
            return Err(EngineError::DuplicateStream(id));
        }
        self.order.push(id);
        self.workers[shard].request(Cmd::Register(id, spec));
        let Reply::Registered = self.workers[shard].wait() else {
            unreachable!("register reply");
        };
        Ok(())
    }

    /// Ingests one interleaved batch.
    ///
    /// Events are routed to their stream's shard (preserving per-stream
    /// order), the shards run in parallel, and the call returns once all
    /// of them are done. The result holds one [`Output`] per stream
    /// touched by the batch, in first-touch order of `events` — a
    /// deterministic function of the input alone.
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        // Validate + partition up front so an error dispatches nothing.
        for b in &mut self.batches {
            b.clear();
        }
        let mut touch_order: Vec<StreamId> = Vec::new();
        let mut touched: HashMap<u64, usize> = HashMap::new();
        for &ev in events {
            let Some(&shard) = self.shard_of.get(&ev.stream.0) else {
                return Err(EngineError::UnknownStream(ev.stream));
            };
            self.batches[shard].push(ev);
            touched.entry(ev.stream.0).or_insert_with(|| {
                touch_order.push(ev.stream);
                touch_order.len() - 1
            });
        }
        // Dispatch to every shard with work, then barrier on the replies
        // (worker index order — determinism never leans on timing).
        let active: Vec<usize> = (0..self.workers.len())
            .filter(|&w| !self.batches[w].is_empty())
            .collect();
        for &w in &active {
            let batch = std::mem::take(&mut self.batches[w]);
            self.workers[w].request(Cmd::Ingest(batch));
        }
        let mut per_stream: Vec<Option<Vec<Sample>>> = vec![None; touch_order.len()];
        for &w in &active {
            let Reply::Ingested { outs, batch } = self.workers[w].wait() else {
                unreachable!("ingest reply");
            };
            // Reclaim the drained buffer so steady state reuses its
            // capacity instead of reallocating per ingest.
            self.batches[w] = batch;
            for (id, samples) in outs {
                per_stream[touched[&id.0]] = Some(samples);
            }
        }
        Ok(touch_order
            .into_iter()
            .zip(per_stream)
            .map(|(stream, samples)| Output {
                stream,
                samples: samples.unwrap_or_default(),
            })
            .collect())
    }

    /// Flushes every registered stream and shuts the executor down.
    ///
    /// Embedding streams drain their residual window into
    /// [`StreamOutcome::tail`] and report their [`EmbedStats`];
    /// detection streams produce their [`DetectionReport`]. Outcomes are
    /// in registration order.
    pub fn finish(mut self) -> Vec<StreamOutcome> {
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); self.workers.len()];
        for &id in &self.order {
            per_shard[self.shard_of[&id.0]].push(id);
        }
        for (w, ids) in per_shard.into_iter().enumerate() {
            self.workers[w].request(Cmd::Finish(ids));
        }
        let mut by_id: HashMap<u64, StreamOutcome> = HashMap::new();
        for w in &mut self.workers {
            let Reply::Finished(outcomes) = w.wait() else {
                unreachable!("finish reply");
            };
            for o in outcomes {
                by_id.insert(o.stream.0, o);
            }
        }
        self.order
            .iter()
            .map(|id| by_id.remove(&id.0).expect("every stream flushed"))
            .collect()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        for w in &mut self.workers {
            w.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wms_core::encoding::initial::InitialEncoder;
    use wms_core::{Scheme, Watermark, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn embed_spec() -> StreamSpec {
        let p = WmParams {
            window: 64,
            degree: 2,
            radius: 0.01,
            max_subset: 4,
            label_len: 3,
            label_stride: 1,
            ..WmParams::default()
        };
        let scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(5))).unwrap();
        StreamSpec::Embed(Arc::new(
            EmbedConfig::new(scheme, Arc::new(InitialEncoder), Watermark::single(true)).unwrap(),
        ))
    }

    fn wave(n: usize, phase: f64) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 + phase;
                0.3 * (t * core::f64::consts::TAU / 23.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r1 = ShardRouter::new(Key::from_u64(9), 8);
        let r2 = ShardRouter::new(Key::from_u64(9), 8);
        for id in 0..500u64 {
            let s = r1.shard_of(StreamId(id));
            assert!(s < 8);
            assert_eq!(s, r2.shard_of(StreamId(id)), "stable for id {id}");
        }
        // A different key produces a different placement somewhere.
        let other = ShardRouter::new(Key::from_u64(10), 8);
        assert!((0..500u64).any(|id| r1.shard_of(StreamId(id)) != other.shard_of(StreamId(id))));
    }

    #[test]
    fn router_spreads_streams() {
        let r = ShardRouter::new(Key::from_u64(1), 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[r.shard_of(StreamId(id))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed shard load: {counts:?}");
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut e = Engine::new(EngineConfig::with_workers(2));
        e.register(StreamId(1), embed_spec()).unwrap();
        assert_eq!(
            e.register(StreamId(1), embed_spec()),
            Err(EngineError::DuplicateStream(StreamId(1)))
        );
    }

    #[test]
    fn unknown_stream_rejected_without_side_effects() {
        let mut e = Engine::new(EngineConfig::with_workers(2));
        e.register(StreamId(1), embed_spec()).unwrap();
        let known = Event::new(StreamId(1), Sample::new(0, 0.1));
        let unknown = Event::new(StreamId(2), Sample::new(0, 0.1));
        assert_eq!(
            e.ingest(&[known, unknown]),
            Err(EngineError::UnknownStream(StreamId(2)))
        );
        // The batch was rejected atomically: stream 1 saw nothing, so
        // its full run through finish drains an empty window.
        let outcomes = e.finish();
        assert_eq!(outcomes[0].embed_stats.unwrap().items_in, 0);
    }

    #[test]
    fn outputs_follow_first_touch_order_and_conserve_samples() {
        for workers in [1, 2, 3] {
            let mut e = Engine::new(EngineConfig::with_workers(workers));
            for id in [4u64, 9, 2] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let streams: Vec<(StreamId, Vec<Sample>)> = [4u64, 9, 2]
                .iter()
                .map(|&id| (StreamId(id), wave(300, id as f64)))
                .collect();
            // Interleave round-robin; batch in chunks of 7.
            let mut events = Vec::new();
            for i in 0..300 {
                for (id, s) in &streams {
                    events.push(Event::new(*id, s[i]));
                }
            }
            let mut emitted: HashMap<u64, Vec<Sample>> = HashMap::new();
            for chunk in events.chunks(7) {
                let outs = e.ingest(chunk).unwrap();
                // First-touch order of the chunk.
                let mut seen = Vec::new();
                for ev in chunk {
                    if !seen.contains(&ev.stream) {
                        seen.push(ev.stream);
                    }
                }
                assert_eq!(outs.iter().map(|o| o.stream).collect::<Vec<_>>(), seen);
                for o in outs {
                    emitted.entry(o.stream.0).or_default().extend(o.samples);
                }
            }
            for o in e.finish() {
                emitted.entry(o.stream.0).or_default().extend(o.tail);
            }
            for (id, s) in &streams {
                let got = &emitted[&id.0];
                assert_eq!(got.len(), s.len(), "stream {id} lost samples");
                for (a, b) in got.iter().zip(s) {
                    assert_eq!(a.index, b.index, "stream {id} reordered");
                }
            }
        }
    }

    #[test]
    fn finish_outcomes_in_registration_order() {
        let mut e = Engine::new(EngineConfig::with_workers(2));
        for id in [11u64, 3, 7] {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        let ids: Vec<u64> = e.finish().iter().map(|o| o.stream.0).collect();
        assert_eq!(ids, vec![11, 3, 7]);
    }
}
