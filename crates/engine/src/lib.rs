//! # wms-engine
//!
//! Sharded multi-stream watermarking engine: the paper's single-stream
//! pipeline ([`wms_core`]) lifted into a multi-tenant service core.
//!
//! * **Session registry** — every live stream is a [`StreamId`]-keyed
//!   session owning its per-stream state
//!   ([`EmbedSession`](wms_core::EmbedSession) /
//!   [`DetectSession`](wms_core::DetectSession)); the immutable
//!   configuration ([`EmbedConfig`] /
//!   [`DetectConfig`]) is shared across streams behind an `Arc`, so a
//!   tenant with one key and thousands of sensors pays for the scheme
//!   once.
//! * **Batched ingestion** — [`Engine::ingest`] takes a slice of
//!   interleaved [`Event`]s, groups them by shard, and returns each
//!   touched stream's emitted samples.
//! * **Parallel shard executor** — shard-per-worker `std::thread`s (the
//!   workspace is offline: channels and threads, no async runtime); each
//!   worker exclusively owns its shard's sessions, so the hot path takes
//!   no locks. With exactly **one** worker the engine keeps the shard on
//!   the caller thread and runs every sub-batch inline — no channel
//!   round-trip, no cross-thread hand-off — which recovers the
//!   sequential pipeline's throughput for single-shard workloads.
//! * **Checkpoint/restore** — [`Engine::checkpoint`] captures every
//!   session's replay state in a versioned binary [`Checkpoint`];
//!   [`Engine::restore`] rebuilds an engine that continues
//!   **bit-identically** to one that never stopped.
//!
//! ## Ordering and determinism
//!
//! Samples of one stream are processed in the order they appear in the
//! ingest batches, and batches in call order — so each session sees
//! exactly the sample sequence a dedicated single-stream pipeline would,
//! and its outputs are **bit-identical** to that pipeline's (the
//! equivalence tests in `tests/` prove it). Result ordering never
//! depends on thread timing: `ingest` returns streams in first-touch
//! order of the input batch, [`Engine::finish`] returns them in
//! registration order, whatever the worker count.
//!
//! Shard assignment is keyed hashing through [`wms_crypto`]
//! ([`ShardRouter`]), not `DefaultHasher`, so a stream's shard is stable
//! across runs, processes and Rust versions for a given engine key and
//! shard count.
//!
//! ## Checkpoints
//!
//! A [`Checkpoint`] is taken at a batch boundary (between `ingest`
//! calls): the engine barriers over its shards, snapshots every session
//! in registration order without disturbing it, and hands back a
//! structure the caller can serialize ([`Checkpoint::to_bytes`]) and
//! persist. [`Engine::restore`] re-adopts the sessions under
//! caller-resolved [`StreamSpec`]s; each session snapshot is stamped
//! with its scheme's
//! [`memo_fingerprint`](wms_core::Scheme::memo_fingerprint), so a
//! restore against a different key/τ/γ/α fails with a typed
//! [`CheckpointError`] instead of silently losing watermark sync. The
//! worker count is *not* part of the state: a checkpoint taken on 8
//! workers restores onto 1 (or vice versa) and still replays
//! bit-identically.
//!
//! ## Worker loss
//!
//! A panic inside a session (a bug in an encoder, a poisoned stream)
//! does not cascade: the worker catches it, reports the shard as lost,
//! and [`Engine::ingest`]/[`Engine::finish`]/[`Engine::checkpoint`]
//! surface [`EngineError::WorkerLost`] on the caller thread. The engine
//! is poisoned afterwards — the lost shard's sessions are gone — and
//! every later call returns the same error; dropping the engine remains
//! safe and panic-free.
//!
//! ## Backpressure
//!
//! `ingest` is synchronous: it dispatches one sub-batch per shard and
//! blocks until every worker has drained its share (a barrier per call).
//! Callers control memory by choosing the batch size; the engine never
//! buffers more than one in-flight batch per worker.
//!
//! ## Bounded memory (hibernation)
//!
//! With a [`MemoryBudget`] configured, the engine caps how many sessions
//! stay resident. Cold sessions — least recently touched first — are
//! *hibernated*: serialized with the same `WMSS` snapshot encoding
//! checkpoints use and parked in an append-only, periodically compacted
//! [`SpillFile`] (in-memory by default, file-backed via
//! [`SpillTarget::File`]). A touched hibernated stream is transparently
//! re-adopted (spill read → checksum check → `restore()` → fingerprint
//! check) before its batch processes, so callers never see the
//! difference: outputs stay **bit-identical** to an unbudgeted engine,
//! whatever gets evicted when. This is what turns a registry of a
//! million streams from "a million resident windows" into "ten thousand
//! resident windows plus a log" — see `Engine::hibernate`,
//! [`Engine::resident_streams`] and the registry rows in
//! `BENCH_engine.json`.
//!
//! The budget counts *sessions*, the unit the paper's state model is
//! priced in (one sliding window + labeler state ≈ a few kB); eviction
//! is enforced at batch boundaries, so one batch touching more than
//! `max_resident` distinct streams transiently exceeds the cap and is
//! trimmed back when the call returns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod spill;
mod worker;

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use wms_core::checkpoint::{ByteReader, ByteWriter};
pub use wms_core::CheckpointError;
use wms_core::{DetectConfig, DetectionReport, EmbedConfig, EmbedStats};
use wms_crypto::{Key, KeyedHash};
use wms_stream::Sample;
pub use wms_stream::{Event, StreamId};
use worker::{Cmd, Reply, Session, Shard, WorkerHandle};

pub use spill::{SpillError, SpillFile, SpillStats};

/// How a registered stream processes its samples.
#[derive(Clone)]
pub enum StreamSpec {
    /// Watermark-embedding session; emits (possibly altered) samples.
    Embed(Arc<EmbedConfig>),
    /// Detection session; emits nothing until `finish`, which yields its
    /// [`DetectionReport`].
    Detect(Arc<DetectConfig>),
    /// Test-only fault injection: the session panics while processing
    /// its `panic_after`-th sample (1-based; `0` behaves as `1`). Exists
    /// so the worker-loss path has a deterministic regression test; a
    /// production registry has no reason to construct it.
    #[doc(hidden)]
    FaultInject {
        /// Sample number whose processing panics.
        panic_after: u64,
    },
    /// Pass-through session: counts samples, emits nothing, costs almost
    /// nothing. Exists so benchmarks can measure the engine's own
    /// overhead (routing, batching, registry, eviction) isolated from
    /// the watermark windowing cost, and so capacity experiments can
    /// register millions of streams without paying for real sessions.
    NoOp,
}

/// Samples one stream emitted while a batch was ingested.
#[derive(Debug, Clone, PartialEq)]
pub struct Output {
    /// The stream that produced the samples.
    pub stream: StreamId,
    /// Emitted samples, in stream order (empty when the window retained
    /// everything — detection streams always report empty here).
    pub samples: Vec<Sample>,
}

/// Final state of one stream after [`Engine::finish`].
#[derive(Debug)]
pub struct StreamOutcome {
    /// The stream this outcome describes.
    pub stream: StreamId,
    /// Residual samples drained from an embedding session's window
    /// (empty for detection streams).
    pub tail: Vec<Sample>,
    /// Embedding counters (embedding streams only).
    pub embed_stats: Option<EmbedStats>,
    /// Detection report (detection streams only).
    pub report: Option<DetectionReport>,
}

/// Engine construction/ingestion errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `register` was called twice for the same id.
    DuplicateStream(StreamId),
    /// An ingested event names an unregistered stream.
    UnknownStream(StreamId),
    /// A shard worker panicked. Its sessions are lost and the engine is
    /// poisoned: every further `ingest`/`checkpoint`/`finish` returns
    /// this error (dropping the engine stays safe).
    WorkerLost {
        /// The shard whose worker was lost.
        shard: usize,
    },
    /// [`Engine::restore`] could not resolve a [`StreamSpec`] for a
    /// stream recorded in the checkpoint.
    MissingSpec(StreamId),
    /// A checkpoint could not be decoded or applied (truncation, version
    /// skew, or a scheme-fingerprint mismatch) — or a spilled session's
    /// record was corrupt when the engine tried to re-adopt it.
    Checkpoint(CheckpointError),
    /// The spill store failed at the I/O level (disk full, permissions,
    /// the file vanished). Session state may sit only in the spill, so
    /// the engine is poisoned once this happens.
    SpillIo(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DuplicateStream(id) => write!(f, "stream {id} already registered"),
            EngineError::UnknownStream(id) => write!(f, "stream {id} is not registered"),
            EngineError::WorkerLost { shard } => write!(
                f,
                "shard {shard} worker lost to a panic; the engine is poisoned"
            ),
            EngineError::MissingSpec(id) => {
                write!(f, "no spec resolved for checkpointed stream {id}")
            }
            EngineError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            EngineError::SpillIo(msg) => {
                write!(f, "spill store failed ({msg}); the engine is poisoned")
            }
        }
    }
}

impl EngineError {
    /// Stable small-integer identity for this error variant, mirroring
    /// [`CheckpointError::code`]: used for CLI exit-code mapping and
    /// `wmsd` NACK details. Append new values, never renumber.
    /// `Checkpoint` nests the inner code in the high byte so e.g. a
    /// fingerprint mismatch inside an engine restore stays
    /// distinguishable.
    pub fn code(&self) -> u16 {
        match self {
            EngineError::DuplicateStream(_) => 1,
            EngineError::UnknownStream(_) => 2,
            EngineError::WorkerLost { .. } => 3,
            EngineError::MissingSpec(_) => 4,
            EngineError::Checkpoint(c) => 0x100 | c.code(),
            EngineError::SpillIo(_) => 5,
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<SpillError> for EngineError {
    fn from(e: SpillError) -> Self {
        match e {
            SpillError::Io(msg) => EngineError::SpillIo(msg),
            // Corruption keeps its typed shape: callers can distinguish
            // a checksum mismatch from a truncation from version skew.
            SpillError::Corrupt(c) => EngineError::Checkpoint(c),
        }
    }
}

/// Deterministic keyed `StreamId -> shard` routing.
///
/// Uses the workspace's keyed one-way hash rather than
/// `std::hash::DefaultHasher`: the standard hasher is seeded per process
/// and its algorithm is not stable across Rust versions, so shard
/// assignment would change from run to run. Keyed MD5 of the id under a
/// fixed engine key is stable everywhere and costs one compression per
/// route (amortized to zero by batching).
#[derive(Clone)]
pub struct ShardRouter {
    hash: KeyedHash,
    shards: usize,
}

/// Domain-separation prefix for shard routing.
const SHARD_DOMAIN: &[u8] = b"wms/engine/shard";

impl ShardRouter {
    /// Router over `shards` shards keyed by `key` (`shards >= 1`).
    pub fn new(key: Key, shards: usize) -> Self {
        assert!(shards >= 1, "at least one shard");
        ShardRouter {
            hash: KeyedHash::md5(key),
            shards,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: StreamId) -> usize {
        (self
            .hash
            .hash_u64_parts(&[SHARD_DOMAIN, &id.0.to_le_bytes()])
            % self.shards as u64) as usize
    }
}

/// Where hibernated sessions are parked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillTarget {
    /// An anonymous in-memory log: bounds *session* memory (windows,
    /// labelers, scratch) while keeping the cold bytes in RAM. The
    /// default.
    Memory,
    /// An append-only log at this path, created if absent. A
    /// pre-existing log is reopened — its index is rebuilt and any torn
    /// tail from a crash is truncated — then cleared: checkpoints are
    /// self-contained, so records from a previous process are stale by
    /// definition.
    File(PathBuf),
}

/// Session-residency budget: how many sessions may stay materialized,
/// and where the cold ones go.
///
/// `max_resident == 0` (the default) disables eviction entirely — the
/// engine behaves exactly as before this knob existed, and the ingest
/// hot path pays nothing for it. With a budget, the engine keeps
/// per-shard residency accounts and evicts least-recently-touched
/// sessions down to the budget at every batch boundary (with a small
/// hysteresis so a registry hovering at the cap doesn't evict one
/// session per call). Eviction is invisible in the outputs: the
/// equivalence tests pin byte-identical results against an unbudgeted
/// engine across worker counts and eviction schedules.
///
/// The snapshot cache used for incremental checkpoints is *not* counted
/// against the budget: it holds serialized bytes, not sessions, and
/// only populates on engines that actually checkpoint.
#[derive(Clone, Debug)]
pub struct MemoryBudget {
    /// Maximum resident sessions across all shards (`0` = unbounded).
    pub max_resident: usize,
    /// Where evicted sessions are parked.
    pub spill: SpillTarget,
    /// Garbage fraction of the spill log that triggers compaction
    /// (`>= 1.0` disables auto-compaction; explicit compaction is still
    /// available on [`SpillFile`]).
    pub compact_ratio: f64,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget {
            max_resident: 0,
            spill: SpillTarget::Memory,
            compact_ratio: 0.5,
        }
    }
}

impl MemoryBudget {
    /// Budget of `max_resident` sessions spilling to memory.
    pub fn resident(max_resident: usize) -> Self {
        MemoryBudget {
            max_resident,
            ..MemoryBudget::default()
        }
    }

    /// Same budget, spilling to a file at `path`.
    pub fn with_spill_file(mut self, path: PathBuf) -> Self {
        self.spill = SpillTarget::File(path);
        self
    }
}

/// Engine construction parameters.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (= shards). `0` means one per available core.
    pub workers: usize,
    /// Key for the shard router. The default is a fixed public constant:
    /// shard placement is a load-balancing concern, not a secret, and a
    /// fixed key keeps placement reproducible across deployments.
    pub shard_key: Key,
    /// Session-residency budget (default: unbounded, no eviction).
    pub budget: MemoryBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            shard_key: Key::from_bytes(&b"wms/engine/default-shard-key"[..]),
            budget: MemoryBudget::default(),
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    /// Same config with a session-residency budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Checkpoint format magic.
const CK_MAGIC: [u8; 4] = *b"WMSC";
/// Newest engine checkpoint version this build reads and writes.
const CK_VERSION: u16 = 1;

/// One stream's entry in a checkpoint: its id, session kind tag, and
/// versioned session snapshot bytes.
struct CheckpointStream {
    id: StreamId,
    kind: u8,
    snapshot: Vec<u8>,
}

/// A consistent engine state captured at a batch boundary.
///
/// Contains every registered session's replay state in registration
/// order, plus a caller-defined `meta` blob (resume bookkeeping such as
/// an input cursor — the engine carries it verbatim and never reads it).
/// Serialize with [`to_bytes`](Self::to_bytes), decode with
/// [`from_bytes`](Self::from_bytes), re-animate with
/// [`Engine::restore`].
pub struct Checkpoint {
    /// Caller-defined resume metadata, carried verbatim.
    pub meta: Vec<u8>,
    streams: Vec<CheckpointStream>,
}

impl Checkpoint {
    /// Serializes to the versioned binary format (magic `WMSC`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_magic(CK_MAGIC);
        w.put_u16(CK_VERSION);
        w.put_bytes(&self.meta);
        w.put_u64(self.streams.len() as u64);
        for s in &self.streams {
            w.put_u64(s.id.0);
            w.put_u8(s.kind);
            w.put_bytes(&s.snapshot);
        }
        w.into_bytes()
    }

    /// Decodes a [`to_bytes`](Self::to_bytes) image, rejecting
    /// truncation, trailing garbage and unknown versions.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = ByteReader::with_magic(bytes, CK_MAGIC)?;
        let version = r.get_u16()?;
        if version != CK_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CK_VERSION,
            });
        }
        let meta = r.get_bytes()?.to_vec();
        let n = r.get_len(17)?;
        let mut streams = Vec::with_capacity(n);
        for _ in 0..n {
            let id = StreamId(r.get_u64()?);
            let kind = r.get_u8()?;
            let snapshot = r.get_bytes()?.to_vec();
            streams.push(CheckpointStream { id, kind, snapshot });
        }
        r.finish()?;
        Ok(Checkpoint { meta, streams })
    }

    /// The checkpointed streams, in their registration order.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.streams.iter().map(|s| s.id)
    }

    /// Number of checkpointed streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }
}

/// Where the shards live: inline on the caller thread (single worker) or
/// behind per-shard worker threads.
enum Backend {
    /// `workers == 1`: no thread, no channels — every sub-batch runs on
    /// the caller thread against the directly-owned shard. This is what
    /// makes single-shard batches as fast as the sequential pipeline.
    Inline(Box<Shard>),
    /// `workers > 1`: one thread per shard.
    Threads(Vec<WorkerHandle>),
}

/// One registered stream's registry entry. The spec is retained so a
/// hibernated session can be rebuilt on re-adoption; it is `Arc`-backed,
/// so the per-stream cost is a pointer, not a scheme.
struct StreamEntry {
    shard: usize,
    spec: StreamSpec,
    /// Value of the engine clock when this stream was last registered or
    /// touched by an ingest; the LRU sort key.
    last_touch: u64,
    /// Whether the session is materialized in its shard (vs spilled).
    resident: bool,
}

/// The multi-stream engine: session registry + shard executor.
pub struct Engine {
    router: ShardRouter,
    backend: Backend,
    /// Registry: `id -> entry`, also the duplicate/unknown-id check.
    streams: HashMap<u64, StreamEntry>,
    /// Registration order (drives `finish` output ordering).
    order: Vec<StreamId>,
    /// Scratch: per-shard event sub-batches, reused across `ingest`s.
    batches: Vec<Vec<Event>>,
    /// First fatal error (worker panic, spill I/O failure); replayed by
    /// every subsequent operation.
    poison: Option<EngineError>,
    /// Resident-session cap (`0` = unbounded).
    max_resident: usize,
    /// Hibernated sessions, keyed by stream id.
    spill: SpillFile,
    /// `(last_touch, id)` of every resident stream — the LRU order.
    /// Maintained only when a budget is active, so unbudgeted engines
    /// pay nothing on the hot path.
    lru: BTreeSet<(u64, u64)>,
    /// Monotonic touch clock: one tick per ingest call or registration.
    clock: u64,
    resident_count: usize,
    spilled_count: usize,
    /// Per-shard residency accounts (diagnostics; the budget itself is
    /// global, so a hot shard may hold more than its share).
    resident_per_shard: Vec<usize>,
}

impl Engine {
    /// Spawns the shard executor (or adopts the single shard inline) and
    /// opens the spill store.
    ///
    /// Fails with [`EngineError::SpillIo`] when a file spill target
    /// cannot be opened, and with [`EngineError::Checkpoint`] when a
    /// pre-existing spill log is damaged beyond the torn tail a crash
    /// legitimately leaves.
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let spill = match &config.budget.spill {
            SpillTarget::Memory => SpillFile::in_memory(config.budget.compact_ratio),
            SpillTarget::File(path) => {
                let mut s = SpillFile::open(path, config.budget.compact_ratio)?;
                // A reopened log's records belong to a previous process;
                // every live session arrives via register/restore, so
                // they are stale. (The reopen still mattered: it
                // truncated any torn tail and proved the log readable.)
                s.clear()?;
                s
            }
        };
        let router = ShardRouter::new(config.shard_key, workers);
        let backend = if workers == 1 {
            Backend::Inline(Box::new(Shard::new()))
        } else {
            Backend::Threads((0..workers).map(WorkerHandle::spawn).collect())
        };
        Ok(Engine {
            router,
            backend,
            streams: HashMap::new(),
            order: Vec::new(),
            batches: vec![Vec::new(); workers],
            poison: None,
            max_resident: config.budget.max_resident,
            spill,
            lru: BTreeSet::new(),
            clock: 0,
            resident_count: 0,
            spilled_count: 0,
            resident_per_shard: vec![0; workers],
        })
    }

    /// Rebuilds an engine from a [`Checkpoint`], resolving each
    /// checkpointed stream's [`StreamSpec`] through `spec_of` (specs
    /// hold key material and trait objects, so they cannot live inside
    /// the checkpoint itself). Streams are re-registered in their
    /// original registration order; the worker count may differ from the
    /// checkpointing engine's — shard placement is recomputed and the
    /// replay stays bit-identical.
    ///
    /// Fails with [`EngineError::MissingSpec`] when `spec_of` cannot name
    /// a stream, and with [`EngineError::Checkpoint`] when a session
    /// snapshot does not decode under its spec — in particular
    /// [`CheckpointError::FingerprintMismatch`] when the spec's scheme
    /// (key/τ/γ/α) differs from the one the snapshot was taken under.
    ///
    /// With a [`MemoryBudget`], the first `max_resident` streams (in
    /// checkpoint order) are materialized and validated eagerly; the
    /// rest are parked in the spill *without* deserializing — resuming a
    /// million-stream registry must not materialize a million sessions.
    /// Their validation (kind, fingerprint, checksum) happens when they
    /// are first touched, so a damaged cold entry surfaces its typed
    /// error at re-adoption instead of restore.
    pub fn restore(
        config: EngineConfig,
        checkpoint: &Checkpoint,
        mut spec_of: impl FnMut(StreamId) -> Option<StreamSpec>,
    ) -> Result<Engine, EngineError> {
        let mut engine = Engine::new(config)?;
        for entry in &checkpoint.streams {
            let spec = spec_of(entry.id).ok_or(EngineError::MissingSpec(entry.id))?;
            let shard = engine.router.shard_of(entry.id);
            if engine.streams.contains_key(&entry.id.0) {
                return Err(EngineError::DuplicateStream(entry.id));
            }
            engine.clock += 1;
            let park_cold = engine.max_resident > 0 && engine.resident_count >= engine.max_resident;
            if park_cold {
                engine
                    .spill
                    .append(entry.id.0, entry.kind, &entry.snapshot)?;
                engine.spilled_count += 1;
            } else {
                let session = Session::restore(spec.clone(), entry.kind, &entry.snapshot)?;
                match &mut engine.backend {
                    Backend::Inline(s) => s.adopt(entry.id, session),
                    Backend::Threads(ws) => {
                        let ok = ws[shard]
                            .request(Cmd::Adopt(entry.id, Box::new(session)))
                            .is_ok()
                            && matches!(ws[shard].wait(), Ok(Reply::Registered));
                        if !ok {
                            engine.poison = Some(EngineError::WorkerLost { shard });
                            return Err(EngineError::WorkerLost { shard });
                        }
                    }
                }
                engine.resident_count += 1;
                engine.resident_per_shard[shard] += 1;
                if engine.max_resident > 0 {
                    engine.lru.insert((engine.clock, entry.id.0));
                }
            }
            engine.streams.insert(
                entry.id.0,
                StreamEntry {
                    shard,
                    spec,
                    last_touch: engine.clock,
                    resident: !park_cold,
                },
            );
            engine.order.push(entry.id);
        }
        Ok(engine)
    }

    /// Number of worker threads (= shards).
    pub fn workers(&self) -> usize {
        self.router.shards()
    }

    /// Registered streams, in registration order.
    pub fn streams(&self) -> &[StreamId] {
        &self.order
    }

    /// Sessions currently materialized in their shards.
    pub fn resident_streams(&self) -> usize {
        self.resident_count
    }

    /// Sessions currently hibernated in the spill store.
    pub fn spilled_streams(&self) -> usize {
        self.spilled_count
    }

    /// Per-shard residency accounts (index = shard). The budget is
    /// global; this shows how it is distributed.
    pub fn resident_per_shard(&self) -> &[usize] {
        &self.resident_per_shard
    }

    /// Whether `id`'s session is resident (`None`: not registered).
    pub fn is_resident(&self, id: StreamId) -> Option<bool> {
        self.streams.get(&id.0).map(|e| e.resident)
    }

    /// Spill-store occupancy counters.
    pub fn spill_stats(&self) -> SpillStats {
        self.spill.stats()
    }

    /// Replays the first fatal error (worker panic, spill I/O failure).
    fn ensure_live(&self) -> Result<(), EngineError> {
        match &self.poison {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// The first fatal error that poisoned this engine, if any. A
    /// poisoned engine rejects every further `ingest` / `checkpoint` /
    /// `finish` with this error; long-lived front-ends (the `wmsd`
    /// daemon) use this to decide between NACKing one batch and shutting
    /// the whole service down.
    pub fn poisoned(&self) -> Option<&EngineError> {
        self.poison.as_ref()
    }

    fn poison_with(&mut self, e: EngineError) -> EngineError {
        self.poison = Some(e.clone());
        e
    }

    /// Registers a stream. Fails on duplicate ids; the spec's parameters
    /// were already validated when its config was built. Under a memory
    /// budget, registering past the cap hibernates the
    /// least-recently-touched sessions to make room.
    pub fn register(&mut self, id: StreamId, spec: StreamSpec) -> Result<(), EngineError> {
        self.ensure_live()?;
        let shard = self.router.shard_of(id);
        if self.streams.contains_key(&id.0) {
            return Err(EngineError::DuplicateStream(id));
        }
        self.clock += 1;
        self.streams.insert(
            id.0,
            StreamEntry {
                shard,
                spec: spec.clone(),
                last_touch: self.clock,
                resident: true,
            },
        );
        self.order.push(id);
        let registered = match &mut self.backend {
            Backend::Inline(s) => {
                s.register(id, spec);
                true
            }
            Backend::Threads(ws) => {
                ws[shard].request(Cmd::Register(id, spec)).is_ok()
                    && matches!(ws[shard].wait(), Ok(Reply::Registered))
            }
        };
        if !registered {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        }
        self.resident_count += 1;
        self.resident_per_shard[shard] += 1;
        if self.max_resident > 0 {
            self.lru.insert((self.clock, id.0));
            self.enforce_budget()?;
        }
        Ok(())
    }

    /// Hibernates one stream's session now: serialize, park in the
    /// spill, free the resident state. Returns `false` when the session
    /// was already hibernated. The stream stays fully usable — its next
    /// touch re-adopts it transparently — and its outputs are unchanged
    /// by when (or whether) this is called; the equivalence tests lean
    /// on exactly that to force eviction at arbitrary points.
    pub fn hibernate(&mut self, id: StreamId) -> Result<bool, EngineError> {
        self.ensure_live()?;
        let Some(entry) = self.streams.get(&id.0) else {
            return Err(EngineError::UnknownStream(id));
        };
        if !entry.resident {
            return Ok(false);
        }
        let mut by_shard = vec![Vec::new(); self.router.shards()];
        by_shard[entry.shard].push(id);
        self.evict_streams(by_shard)?;
        Ok(true)
    }

    /// Serializes and spills the given sessions (grouped per shard).
    /// Updates residency bookkeeping; poisons the engine on worker loss
    /// or spill I/O failure (the evicted state would otherwise be lost).
    fn evict_streams(&mut self, by_shard: Vec<Vec<StreamId>>) -> Result<(), EngineError> {
        let mut evicted: Vec<(StreamId, u8, Vec<u8>)> = Vec::new();
        let mut lost: Option<usize> = None;
        match &mut self.backend {
            Backend::Inline(shard) => {
                let ids = &by_shard[0];
                match catch_unwind(AssertUnwindSafe(|| shard.evict(ids))) {
                    Ok(snaps) => evicted.extend(snaps),
                    Err(_panic) => lost = Some(0),
                }
            }
            Backend::Threads(workers) => {
                let active: Vec<usize> = (0..workers.len())
                    .filter(|&w| !by_shard[w].is_empty())
                    .collect();
                for &w in &active {
                    let ids = by_shard[w].clone();
                    if workers[w].request(Cmd::Evict(ids)).is_err() {
                        lost.get_or_insert(w);
                    }
                }
                for &w in &active {
                    match workers[w].wait() {
                        Ok(Reply::Evicted(snaps)) => evicted.extend(snaps),
                        Ok(_) => unreachable!("evict reply"),
                        Err(()) => {
                            lost.get_or_insert(w);
                        }
                    }
                }
            }
        }
        if let Some(w) = lost {
            return Err(self.poison_with(EngineError::WorkerLost { shard: w }));
        }
        for (id, kind, bytes) in evicted {
            if let Err(e) = self.spill.append(id.0, kind, &bytes) {
                return Err(self.poison_with(e.into()));
            }
            let entry = self
                .streams
                .get_mut(&id.0)
                .expect("evicted id is registered");
            entry.resident = false;
            self.lru.remove(&(entry.last_touch, id.0));
            self.resident_count -= 1;
            self.resident_per_shard[entry.shard] -= 1;
            self.spilled_count += 1;
        }
        Ok(())
    }

    /// Evicts least-recently-touched sessions until the resident count
    /// is back under the budget. Hysteresis: once over the cap, evict
    /// down to ~7/8 of it in one sweep, so a registry hovering at the
    /// cap amortizes eviction instead of paying one worker round-trip
    /// per registration.
    fn enforce_budget(&mut self) -> Result<(), EngineError> {
        if self.max_resident == 0 || self.resident_count <= self.max_resident {
            return Ok(());
        }
        let low = (self.max_resident - self.max_resident / 8).max(1);
        let n_evict = self.resident_count - low;
        let mut by_shard = vec![Vec::new(); self.router.shards()];
        for &(_, id) in self.lru.iter().take(n_evict) {
            by_shard[self.streams[&id].shard].push(StreamId(id));
        }
        self.evict_streams(by_shard)
    }

    /// Re-adopts one hibernated session: spill read (checksum-checked)
    /// → `restore` under the registered spec (kind + scheme-fingerprint
    /// checked) → adopt into its shard. Any failure poisons the engine:
    /// a cold session that cannot come back means state is already lost.
    fn readopt(&mut self, id: u64) -> Result<(), EngineError> {
        let record = match self.spill.read(id) {
            Ok(Some(r)) => r,
            Ok(None) => {
                // Registry says spilled but the log has no record: an
                // engine invariant broke, report it as corruption.
                let e = EngineError::Checkpoint(CheckpointError::Invalid(format!(
                    "hibernated stream {id} has no spill record"
                )));
                return Err(self.poison_with(e));
            }
            Err(e) => return Err(self.poison_with(e.into())),
        };
        let entry = self.streams.get(&id).expect("caller checked registry");
        let shard = entry.shard;
        let session = match Session::restore(entry.spec.clone(), record.0, &record.1) {
            Ok(s) => s,
            Err(e) => return Err(self.poison_with(EngineError::Checkpoint(e))),
        };
        let adopted = match &mut self.backend {
            Backend::Inline(s) => {
                s.adopt(StreamId(id), session);
                true
            }
            Backend::Threads(ws) => {
                ws[shard]
                    .request(Cmd::Adopt(StreamId(id), Box::new(session)))
                    .is_ok()
                    && matches!(ws[shard].wait(), Ok(Reply::Registered))
            }
        };
        if !adopted {
            return Err(self.poison_with(EngineError::WorkerLost { shard }));
        }
        if let Err(e) = self.spill.remove(id) {
            return Err(self.poison_with(e.into()));
        }
        let entry = self.streams.get_mut(&id).expect("caller checked registry");
        entry.resident = true;
        self.resident_count += 1;
        self.resident_per_shard[shard] += 1;
        self.spilled_count -= 1;
        if self.max_resident > 0 {
            self.lru.insert((entry.last_touch, id));
        }
        Ok(())
    }

    /// Touch accounting + re-adoption sweep run before a batch is
    /// dispatched, when (and only when) hibernation is in play:
    /// validates every id, bumps each touched stream's LRU position, and
    /// re-adopts the hibernated sessions the batch is about to touch.
    fn prepare_batch(&mut self, events: &[Event]) -> Result<(), EngineError> {
        self.clock += 1;
        let clock = self.clock;
        let mut need_adopt: Vec<u64> = Vec::new();
        let mut last: Option<u64> = None;
        for ev in events {
            if last == Some(ev.stream.0) {
                continue;
            }
            last = Some(ev.stream.0);
            let Some(entry) = self.streams.get_mut(&ev.stream.0) else {
                return Err(EngineError::UnknownStream(ev.stream));
            };
            if entry.last_touch == clock {
                continue; // already counted in this batch
            }
            if entry.resident {
                if self.max_resident > 0 {
                    self.lru.remove(&(entry.last_touch, ev.stream.0));
                    self.lru.insert((clock, ev.stream.0));
                }
            } else {
                need_adopt.push(ev.stream.0);
            }
            entry.last_touch = clock;
        }
        for id in need_adopt {
            self.readopt(id)?;
        }
        Ok(())
    }

    /// Ingests one interleaved batch.
    ///
    /// Events are routed to their stream's shard (preserving per-stream
    /// order), the shards run in parallel, and the call returns once all
    /// of them are done. The result holds one [`Output`] per stream
    /// touched by the batch, in first-touch order of `events` — a
    /// deterministic function of the input alone.
    ///
    /// Under a [`MemoryBudget`], hibernated streams the batch touches
    /// are transparently re-adopted first, and the resident count is
    /// trimmed back under the cap before the call returns. Neither step
    /// changes any stream's output by a single bit.
    pub fn ingest(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        self.ensure_live()?;
        if self.max_resident > 0 || self.spilled_count > 0 {
            self.prepare_batch(events)?;
        }
        let outputs = self.dispatch_batch(events)?;
        if self.max_resident > 0 {
            self.enforce_budget()?;
        }
        Ok(outputs)
    }

    /// The pre-hibernation ingest body: validate, partition, dispatch,
    /// barrier, merge.
    fn dispatch_batch(&mut self, events: &[Event]) -> Result<Vec<Output>, EngineError> {
        if let Backend::Inline(shard) = &mut self.backend {
            // Single shard: no partitioning, no output merge — validate
            // the ids (run-cached: consecutive events of one stream cost
            // one lookup) and hand the slice straight to the shard. Its
            // first-touch order IS the batch's first-touch order.
            let mut last: Option<u64> = None;
            for ev in events {
                if last != Some(ev.stream.0) {
                    if !self.streams.contains_key(&ev.stream.0) {
                        return Err(EngineError::UnknownStream(ev.stream));
                    }
                    last = Some(ev.stream.0);
                }
            }
            // Same containment as a worker thread: a session panic
            // poisons the shard, not the caller.
            return match catch_unwind(AssertUnwindSafe(|| shard.ingest_slice(events))) {
                Ok(outs) => Ok(outs
                    .into_iter()
                    .map(|(stream, samples)| Output { stream, samples })
                    .collect()),
                Err(_panic) => {
                    let e = EngineError::WorkerLost { shard: 0 };
                    self.poison = Some(e.clone());
                    Err(e)
                }
            };
        }
        // Validate + partition up front so an error dispatches nothing.
        for b in &mut self.batches {
            b.clear();
        }
        let mut touch_order: Vec<StreamId> = Vec::new();
        let mut touched: HashMap<u64, usize> = HashMap::new();
        let mut last: Option<(u64, usize)> = None;
        for &ev in events {
            let shard = match last {
                Some((id, s)) if id == ev.stream.0 => s,
                _ => {
                    let Some(s) = self.streams.get(&ev.stream.0).map(|e| e.shard) else {
                        return Err(EngineError::UnknownStream(ev.stream));
                    };
                    touched.entry(ev.stream.0).or_insert_with(|| {
                        touch_order.push(ev.stream);
                        touch_order.len() - 1
                    });
                    last = Some((ev.stream.0, s));
                    s
                }
            };
            self.batches[shard].push(ev);
        }
        let mut per_stream: Vec<Option<Vec<Sample>>> = vec![None; touch_order.len()];
        match &mut self.backend {
            Backend::Inline(_) => unreachable!("handled above"),
            Backend::Threads(workers) => {
                // Dispatch to every shard with work, then barrier on the
                // replies (worker index order — determinism never leans
                // on timing). A lost worker does not cut the barrier
                // short: the remaining shards are still drained so their
                // state stays consistent with the command stream.
                let active: Vec<usize> = (0..workers.len())
                    .filter(|&w| !self.batches[w].is_empty())
                    .collect();
                let mut first_lost: Option<usize> = None;
                for &w in &active {
                    let batch = std::mem::take(&mut self.batches[w]);
                    if workers[w].request(Cmd::Ingest(batch)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for &w in &active {
                    match workers[w].wait() {
                        Ok(Reply::Ingested { outs, batch }) => {
                            self.batches[w] = batch;
                            for (id, samples) in outs {
                                per_stream[touched[&id.0]] = Some(samples);
                            }
                        }
                        Ok(_) => unreachable!("ingest reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    let e = EngineError::WorkerLost { shard: w };
                    self.poison = Some(e.clone());
                    return Err(e);
                }
            }
        }
        Ok(touch_order
            .into_iter()
            .zip(per_stream)
            .map(|(stream, samples)| Output {
                stream,
                samples: samples.unwrap_or_default(),
            })
            .collect())
    }

    /// Captures a [`Checkpoint`] of every registered session at the
    /// current batch boundary.
    ///
    /// This is a read-only barrier: each shard snapshots its sessions in
    /// registration order without mutating them, so a run that
    /// checkpoints produces exactly the same outputs as one that does
    /// not. The returned checkpoint's `meta` is empty; callers stash
    /// their own resume bookkeeping there before serializing.
    ///
    /// Checkpoints are **incremental at the serialization layer**: each
    /// shard caches the last snapshot per session keyed by its mutation
    /// count, so a session untouched since the previous checkpoint is
    /// not re-serialized. Hibernated sessions are cheaper still — their
    /// bytes are copied straight out of the spill log
    /// (checksum-verified), with no re-adoption and no serialization.
    /// The checkpoint itself stays fully self-contained: restoring needs
    /// the checkpoint alone, never the spill file.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, EngineError> {
        self.ensure_live()?;
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); self.router.shards()];
        let mut hibernated: Vec<StreamId> = Vec::new();
        for &id in &self.order {
            let entry = &self.streams[&id.0];
            if entry.resident {
                per_shard[entry.shard].push(id);
            } else {
                hibernated.push(id);
            }
        }
        let mut by_id: HashMap<u64, (u8, Vec<u8>)> = HashMap::new();
        for id in hibernated {
            match self.spill.read(id.0) {
                Ok(Some((kind, bytes))) => {
                    by_id.insert(id.0, (kind, bytes));
                }
                Ok(None) => {
                    let e = EngineError::Checkpoint(CheckpointError::Invalid(format!(
                        "hibernated stream {id} has no spill record"
                    )));
                    return Err(self.poison_with(e));
                }
                Err(e) => return Err(self.poison_with(e.into())),
            }
        }
        match &mut self.backend {
            Backend::Inline(shard) => {
                match catch_unwind(AssertUnwindSafe(|| shard.snapshot(&per_shard[0]))) {
                    Ok(snaps) => {
                        for (id, kind, bytes) in snaps {
                            by_id.insert(id.0, (kind, bytes));
                        }
                    }
                    Err(_panic) => {
                        let e = EngineError::WorkerLost { shard: 0 };
                        self.poison = Some(e.clone());
                        return Err(e);
                    }
                }
            }
            Backend::Threads(workers) => {
                let mut first_lost: Option<usize> = None;
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if workers[w].request(Cmd::Snapshot(ids)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for (w, handle) in workers.iter_mut().enumerate() {
                    match handle.wait() {
                        Ok(Reply::Snapshots(snaps)) => {
                            for (id, kind, bytes) in snaps {
                                by_id.insert(id.0, (kind, bytes));
                            }
                        }
                        Ok(_) => unreachable!("snapshot reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    let e = EngineError::WorkerLost { shard: w };
                    self.poison = Some(e.clone());
                    return Err(e);
                }
            }
        }
        let streams = self
            .order
            .iter()
            .map(|id| {
                let (kind, snapshot) = by_id.remove(&id.0).expect("every stream snapshotted");
                CheckpointStream {
                    id: *id,
                    kind,
                    snapshot,
                }
            })
            .collect();
        Ok(Checkpoint {
            meta: Vec::new(),
            streams,
        })
    }

    /// Flushes every registered stream and shuts the executor down.
    ///
    /// Embedding streams drain their residual window into
    /// [`StreamOutcome::tail`] and report their [`EmbedStats`];
    /// detection streams produce their [`DetectionReport`]. Outcomes are
    /// in registration order.
    ///
    /// Hibernated sessions are re-adopted for their flush in chunks of
    /// at most `max_resident` per shard, so finishing a million-stream
    /// registry never materializes more sessions than the budget allows.
    pub fn finish(mut self) -> Result<Vec<StreamOutcome>, EngineError> {
        self.ensure_live()?;
        let shards = self.router.shards();
        let mut per_shard: Vec<Vec<StreamId>> = vec![Vec::new(); shards];
        let mut hibernated: Vec<Vec<StreamId>> = vec![Vec::new(); shards];
        for &id in &self.order {
            let entry = &self.streams[&id.0];
            if entry.resident {
                per_shard[entry.shard].push(id);
            } else {
                hibernated[entry.shard].push(id);
            }
        }
        let mut by_id: HashMap<u64, StreamOutcome> = HashMap::new();
        // Pass 1: flush every resident session, all shards in parallel.
        match &mut self.backend {
            Backend::Inline(shard) => {
                let ids = std::mem::take(&mut per_shard[0]);
                match catch_unwind(AssertUnwindSafe(|| shard.finish(ids))) {
                    Ok(outcomes) => {
                        for o in outcomes {
                            by_id.insert(o.stream.0, o);
                        }
                    }
                    Err(_panic) => {
                        let e = EngineError::WorkerLost { shard: 0 };
                        self.poison = Some(e.clone());
                        return Err(e);
                    }
                }
            }
            Backend::Threads(workers) => {
                let mut first_lost: Option<usize> = None;
                for (w, ids) in per_shard.into_iter().enumerate() {
                    if workers[w].request(Cmd::Finish(ids)).is_err() {
                        first_lost.get_or_insert(w);
                    }
                }
                for (w, handle) in workers.iter_mut().enumerate() {
                    match handle.wait() {
                        Ok(Reply::Finished(outcomes)) => {
                            for o in outcomes {
                                by_id.insert(o.stream.0, o);
                            }
                        }
                        Ok(_) => unreachable!("finish reply"),
                        Err(()) => {
                            first_lost.get_or_insert(w);
                        }
                    }
                }
                if let Some(w) = first_lost {
                    let e = EngineError::WorkerLost { shard: w };
                    self.poison = Some(e.clone());
                    return Err(e);
                }
            }
        }
        // Pass 2: re-adopt and flush hibernated sessions, shard by
        // shard, in budget-sized chunks.
        let chunk_size = if self.max_resident > 0 {
            self.max_resident
        } else {
            usize::MAX
        };
        for (w, shard_ids) in hibernated.iter_mut().enumerate().take(shards) {
            let ids = std::mem::take(shard_ids);
            if ids.is_empty() {
                continue;
            }
            for chunk in ids.chunks(chunk_size) {
                for id in chunk {
                    self.readopt(id.0)?;
                }
                for o in self.finish_shard(w, chunk.to_vec())? {
                    by_id.insert(o.stream.0, o);
                }
            }
        }
        Ok(self
            .order
            .iter()
            .map(|id| by_id.remove(&id.0).expect("every stream flushed"))
            .collect())
    }

    /// Flushes the listed sessions on one shard (pass 2 of `finish`).
    fn finish_shard(
        &mut self,
        w: usize,
        ids: Vec<StreamId>,
    ) -> Result<Vec<StreamOutcome>, EngineError> {
        let outcomes = match &mut self.backend {
            Backend::Inline(shard) => catch_unwind(AssertUnwindSafe(|| shard.finish(ids))).ok(),
            Backend::Threads(ws) => {
                if ws[w].request(Cmd::Finish(ids)).is_err() {
                    None
                } else {
                    match ws[w].wait() {
                        Ok(Reply::Finished(outcomes)) => Some(outcomes),
                        Ok(_) => unreachable!("finish reply"),
                        Err(()) => None,
                    }
                }
            }
        };
        match outcomes {
            Some(outcomes) => Ok(outcomes),
            None => Err(self.poison_with(EngineError::WorkerLost { shard: w })),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Backend::Threads(workers) = &mut self.backend {
            for w in workers {
                w.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wms_core::encoding::initial::InitialEncoder;
    use wms_core::{Scheme, Watermark, WmParams};
    use wms_crypto::{Key, KeyedHash};
    use wms_stream::samples_from_values;

    fn embed_spec() -> StreamSpec {
        let p = WmParams {
            window: 64,
            degree: 2,
            radius: 0.01,
            max_subset: 4,
            label_len: 3,
            label_stride: 1,
            ..WmParams::default()
        };
        let scheme = Scheme::new(p, KeyedHash::md5(Key::from_u64(5))).unwrap();
        StreamSpec::Embed(Arc::new(
            EmbedConfig::new(scheme, Arc::new(InitialEncoder), Watermark::single(true)).unwrap(),
        ))
    }

    fn wave(n: usize, phase: f64) -> Vec<Sample> {
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 + phase;
                0.3 * (t * core::f64::consts::TAU / 23.0).sin()
                    + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
            })
            .collect();
        samples_from_values(&values)
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r1 = ShardRouter::new(Key::from_u64(9), 8);
        let r2 = ShardRouter::new(Key::from_u64(9), 8);
        for id in 0..500u64 {
            let s = r1.shard_of(StreamId(id));
            assert!(s < 8);
            assert_eq!(s, r2.shard_of(StreamId(id)), "stable for id {id}");
        }
        // A different key produces a different placement somewhere.
        let other = ShardRouter::new(Key::from_u64(10), 8);
        assert!((0..500u64).any(|id| r1.shard_of(StreamId(id)) != other.shard_of(StreamId(id))));
    }

    #[test]
    fn router_spreads_streams() {
        let r = ShardRouter::new(Key::from_u64(1), 4);
        let mut counts = [0usize; 4];
        for id in 0..4000u64 {
            counts[r.shard_of(StreamId(id))] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed shard load: {counts:?}");
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            e.register(StreamId(1), embed_spec()).unwrap();
            assert_eq!(
                e.register(StreamId(1), embed_spec()),
                Err(EngineError::DuplicateStream(StreamId(1)))
            );
        }
    }

    #[test]
    fn unknown_stream_rejected_without_side_effects() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            e.register(StreamId(1), embed_spec()).unwrap();
            let known = Event::new(StreamId(1), Sample::new(0, 0.1));
            let unknown = Event::new(StreamId(2), Sample::new(0, 0.1));
            assert_eq!(
                e.ingest(&[known, unknown]),
                Err(EngineError::UnknownStream(StreamId(2)))
            );
            // The batch was rejected atomically: stream 1 saw nothing, so
            // its full run through finish drains an empty window.
            let outcomes = e.finish().unwrap();
            assert_eq!(outcomes[0].embed_stats.unwrap().items_in, 0);
        }
    }

    #[test]
    fn outputs_follow_first_touch_order_and_conserve_samples() {
        for workers in [1, 2, 3] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            for id in [4u64, 9, 2] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let streams: Vec<(StreamId, Vec<Sample>)> = [4u64, 9, 2]
                .iter()
                .map(|&id| (StreamId(id), wave(300, id as f64)))
                .collect();
            // Interleave round-robin; batch in chunks of 7.
            let mut events = Vec::new();
            for i in 0..300 {
                for (id, s) in &streams {
                    events.push(Event::new(*id, s[i]));
                }
            }
            let mut emitted: HashMap<u64, Vec<Sample>> = HashMap::new();
            for chunk in events.chunks(7) {
                let outs = e.ingest(chunk).unwrap();
                // First-touch order of the chunk.
                let mut seen = Vec::new();
                for ev in chunk {
                    if !seen.contains(&ev.stream) {
                        seen.push(ev.stream);
                    }
                }
                assert_eq!(outs.iter().map(|o| o.stream).collect::<Vec<_>>(), seen);
                for o in outs {
                    emitted.entry(o.stream.0).or_default().extend(o.samples);
                }
            }
            for o in e.finish().unwrap() {
                emitted.entry(o.stream.0).or_default().extend(o.tail);
            }
            for (id, s) in &streams {
                let got = &emitted[&id.0];
                assert_eq!(got.len(), s.len(), "stream {id} lost samples");
                for (a, b) in got.iter().zip(s) {
                    assert_eq!(a.index, b.index, "stream {id} reordered");
                }
            }
        }
    }

    #[test]
    fn finish_outcomes_in_registration_order() {
        for workers in [1usize, 2] {
            let mut e = Engine::new(EngineConfig::with_workers(workers)).unwrap();
            for id in [11u64, 3, 7] {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            let ids: Vec<u64> = e.finish().unwrap().iter().map(|o| o.stream.0).collect();
            assert_eq!(ids, vec![11, 3, 7]);
        }
    }

    #[test]
    fn budget_caps_resident_sessions_with_per_shard_accounting() {
        for workers in [1usize, 3] {
            let cfg = EngineConfig::with_workers(workers).with_budget(MemoryBudget::resident(5));
            let mut e = Engine::new(cfg).unwrap();
            for id in 0..20u64 {
                e.register(StreamId(id), embed_spec()).unwrap();
            }
            assert!(
                e.resident_streams() <= 5,
                "{} resident",
                e.resident_streams()
            );
            assert_eq!(e.resident_streams() + e.spilled_streams(), 20);
            assert_eq!(
                e.resident_per_shard().iter().sum::<usize>(),
                e.resident_streams(),
                "per-shard accounts must sum to the resident total"
            );
            assert_eq!(e.is_resident(StreamId(99)), None, "unregistered id");
            // Every stream still finishes, spilled or not.
            assert_eq!(e.finish().unwrap().len(), 20);
        }
    }

    #[test]
    fn hibernate_explicitly_and_readopt_on_touch() {
        let cfg = EngineConfig::with_workers(2).with_budget(MemoryBudget::resident(8));
        let mut e = Engine::new(cfg).unwrap();
        for id in 0..4u64 {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        assert_eq!(
            e.hibernate(StreamId(50)),
            Err(EngineError::UnknownStream(StreamId(50)))
        );
        assert!(e.hibernate(StreamId(2)).unwrap(), "first eviction evicts");
        assert!(!e.hibernate(StreamId(2)).unwrap(), "already hibernated");
        assert_eq!(e.is_resident(StreamId(2)), Some(false));
        assert_eq!(e.spilled_streams(), 1);
        assert!(e.spill_stats().records >= 1);
        // Touching the stream transparently re-adopts it.
        let s = wave(3, 2.0);
        let events: Vec<Event> = s.iter().map(|&s| Event::new(StreamId(2), s)).collect();
        e.ingest(&events).unwrap();
        assert_eq!(e.is_resident(StreamId(2)), Some(true));
        assert_eq!(e.spilled_streams(), 0);
        e.finish().unwrap();
    }

    #[test]
    fn noop_streams_process_under_budget() {
        let cfg = EngineConfig::with_workers(2).with_budget(MemoryBudget::resident(3));
        let mut e = Engine::new(cfg).unwrap();
        for id in 0..10u64 {
            e.register(StreamId(id), StreamSpec::NoOp).unwrap();
        }
        let events: Vec<Event> = (0..10u64)
            .map(|id| Event::new(StreamId(id), Sample::new(0, 0.5)))
            .collect();
        let outs = e.ingest(&events).unwrap();
        assert!(outs.iter().all(|o| o.samples.is_empty()));
        assert!(e.resident_streams() <= 3);
        for o in e.finish().unwrap() {
            assert!(o.tail.is_empty());
            assert!(o.embed_stats.is_none());
            assert!(o.report.is_none());
        }
    }

    #[test]
    fn checkpoint_bytes_roundtrip() {
        let mut e = Engine::new(EngineConfig::with_workers(2)).unwrap();
        for id in [11u64, 3, 7] {
            e.register(StreamId(id), embed_spec()).unwrap();
        }
        let mut ck = e.checkpoint().unwrap();
        ck.meta = b"cursor=42".to_vec();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.meta, b"cursor=42");
        assert_eq!(
            back.streams().collect::<Vec<_>>(),
            vec![StreamId(11), StreamId(3), StreamId(7)],
            "registration order preserved"
        );
        assert_eq!(back.num_streams(), 3);
        // Truncations fail loudly.
        for cut in [0usize, 3, 6, bytes.len() - 1] {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
