//! Engine telemetry: the counters, gauges and histograms the executor
//! maintains unconditionally.
//!
//! Recording is always on — every handle is a relaxed atomic
//! ([`wms_telemetry`]'s facade contract), so the hot path pays a couple
//! of `fetch_add`s per *batch* (never per sample) whether or not
//! anything scrapes. Exposition is opt-in: a front-end that wants the
//! numbers (the `wmsd` daemon, a bench harness) calls
//! [`EngineMetrics::register_into`] with its [`Registry`] and renders
//! from there.
//!
//! Metric names are part of the public interface: the full reference
//! table lives in `DESIGN.md` §3.18, and the `names_are_documented`
//! test below fails the build when a name here disappears from that
//! table.

use wms_telemetry::{Counter, Gauge, Histogram, Registry};

/// Canonical engine metric names (the DESIGN.md §3.18 contract).
pub mod names {
    /// Batches accepted by `ingest`/`submit`.
    pub const BATCHES: &str = "wms_engine_batches_total";
    /// Events routed into shards.
    pub const ITEMS: &str = "wms_engine_items_total";
    /// Epochs published via `submit` (one per batch).
    pub const EPOCHS_SUBMITTED: &str = "wms_engine_epochs_submitted_total";
    /// Epochs whose outputs were collected.
    pub const EPOCHS_COLLECTED: &str = "wms_engine_epochs_collected_total";
    /// Published-but-unapplied sub-batches per shard ring.
    pub const RING_DEPTH: &str = "wms_engine_ring_depth";
    /// Highest ring occupancy seen per shard.
    pub const RING_HIGH_WATER: &str = "wms_engine_ring_high_water";
    /// Streams migrated off hot shards by the rebalancer.
    pub const REBALANCE_STEALS: &str = "wms_engine_rebalance_steals_total";
    /// Sessions hibernated to the spill store.
    pub const EVICTIONS: &str = "wms_engine_evictions_total";
    /// Hibernated sessions re-adopted on touch.
    pub const READOPTIONS: &str = "wms_engine_readoptions_total";
    /// Sessions currently materialized in shards.
    pub const RESIDENT_SESSIONS: &str = "wms_engine_resident_sessions";
    /// Sessions currently parked in the spill store.
    pub const SPILLED_SESSIONS: &str = "wms_engine_spilled_sessions";
    /// Spill log length in bytes (live + garbage).
    pub const SPILL_LOG_BYTES: &str = "wms_engine_spill_log_bytes";
    /// Bytes owned by live spill records.
    pub const SPILL_LIVE_BYTES: &str = "wms_engine_spill_live_bytes";
    /// Spill-log compactions performed.
    pub const SPILL_COMPACTIONS: &str = "wms_engine_spill_compactions_total";
    /// Wall-clock seconds per engine checkpoint.
    pub const CHECKPOINT_SECONDS: &str = "wms_engine_checkpoint_seconds";
}

/// The engine's metric handles. One instance per [`Engine`]
/// (`Engine::metrics` clones the `Arc` out); all fields are cheap
/// always-on atomics.
///
/// [`Engine`]: crate::Engine
#[derive(Debug)]
pub struct EngineMetrics {
    /// Batches accepted by `ingest`/`submit`.
    pub batches: Counter,
    /// Events routed into shards.
    pub items: Counter,
    /// Epochs published via `submit`.
    pub epochs_submitted: Counter,
    /// Epochs whose outputs were collected.
    pub epochs_collected: Counter,
    /// Per-shard ring depth (published-but-unapplied sub-batches).
    pub ring_depth: Vec<Gauge>,
    /// Per-shard ring occupancy high-water mark.
    pub ring_high_water: Vec<Gauge>,
    /// Streams migrated off hot shards by the rebalancer.
    pub rebalance_steals: Counter,
    /// Sessions hibernated to the spill store.
    pub evictions: Counter,
    /// Hibernated sessions re-adopted on touch.
    pub readoptions: Counter,
    /// Sessions currently materialized in shards.
    pub resident_sessions: Gauge,
    /// Sessions currently parked in the spill store.
    pub spilled_sessions: Gauge,
    /// Spill log length in bytes (live + garbage).
    pub spill_log_bytes: Gauge,
    /// Bytes owned by live spill records.
    pub spill_live_bytes: Gauge,
    /// Spill-log compactions performed.
    pub spill_compactions: Counter,
    /// Wall-clock seconds per engine checkpoint.
    pub checkpoint_seconds: Histogram,
}

impl EngineMetrics {
    /// Fresh handles for an engine with `shards` shards. Nothing is
    /// registered anywhere yet.
    pub fn new(shards: usize) -> EngineMetrics {
        EngineMetrics {
            batches: Counter::new(),
            items: Counter::new(),
            epochs_submitted: Counter::new(),
            epochs_collected: Counter::new(),
            ring_depth: (0..shards).map(|_| Gauge::new()).collect(),
            ring_high_water: (0..shards).map(|_| Gauge::new()).collect(),
            rebalance_steals: Counter::new(),
            evictions: Counter::new(),
            readoptions: Counter::new(),
            resident_sessions: Gauge::new(),
            spilled_sessions: Gauge::new(),
            spill_log_bytes: Gauge::new(),
            spill_live_bytes: Gauge::new(),
            spill_compactions: Counter::new(),
            checkpoint_seconds: Histogram::with_bounds(Histogram::duration_bounds()),
        }
    }

    /// Registers every handle under its canonical name (per-shard ring
    /// gauges carry a `shard` label). Call once per registry.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_counter(
            names::BATCHES,
            "Batches accepted by ingest/submit.",
            &[],
            &self.batches,
        );
        reg.register_counter(names::ITEMS, "Events routed into shards.", &[], &self.items);
        reg.register_counter(
            names::EPOCHS_SUBMITTED,
            "Epochs published via submit (one per batch).",
            &[],
            &self.epochs_submitted,
        );
        reg.register_counter(
            names::EPOCHS_COLLECTED,
            "Epochs whose outputs were collected.",
            &[],
            &self.epochs_collected,
        );
        for (i, g) in self.ring_depth.iter().enumerate() {
            reg.register_gauge(
                names::RING_DEPTH,
                "Published-but-unapplied sub-batches in the shard's ring.",
                &[("shard", &i.to_string())],
                g,
            );
        }
        for (i, g) in self.ring_high_water.iter().enumerate() {
            reg.register_gauge(
                names::RING_HIGH_WATER,
                "Highest ring occupancy seen on the shard.",
                &[("shard", &i.to_string())],
                g,
            );
        }
        reg.register_counter(
            names::REBALANCE_STEALS,
            "Streams migrated off hot shards by the rebalancer.",
            &[],
            &self.rebalance_steals,
        );
        reg.register_counter(
            names::EVICTIONS,
            "Sessions hibernated to the spill store.",
            &[],
            &self.evictions,
        );
        reg.register_counter(
            names::READOPTIONS,
            "Hibernated sessions re-adopted on touch.",
            &[],
            &self.readoptions,
        );
        reg.register_gauge(
            names::RESIDENT_SESSIONS,
            "Sessions currently materialized in shards.",
            &[],
            &self.resident_sessions,
        );
        reg.register_gauge(
            names::SPILLED_SESSIONS,
            "Sessions currently parked in the spill store.",
            &[],
            &self.spilled_sessions,
        );
        reg.register_gauge(
            names::SPILL_LOG_BYTES,
            "Spill log length in bytes, live and garbage.",
            &[],
            &self.spill_log_bytes,
        );
        reg.register_gauge(
            names::SPILL_LIVE_BYTES,
            "Bytes owned by live spill records.",
            &[],
            &self.spill_live_bytes,
        );
        reg.register_counter(
            names::SPILL_COMPACTIONS,
            "Spill-log compactions performed.",
            &[],
            &self.spill_compactions,
        );
        reg.register_histogram(
            names::CHECKPOINT_SECONDS,
            "Wall-clock seconds per engine checkpoint.",
            &[],
            &self.checkpoint_seconds,
        );
    }

    /// Every canonical engine metric name — the doc-check contract.
    pub fn metric_names() -> &'static [&'static str] {
        &[
            names::BATCHES,
            names::ITEMS,
            names::EPOCHS_SUBMITTED,
            names::EPOCHS_COLLECTED,
            names::RING_DEPTH,
            names::RING_HIGH_WATER,
            names::REBALANCE_STEALS,
            names::EVICTIONS,
            names::READOPTIONS,
            names::RESIDENT_SESSIONS,
            names::SPILLED_SESSIONS,
            names::SPILL_LOG_BYTES,
            names::SPILL_LIVE_BYTES,
            names::SPILL_COMPACTIONS,
            names::CHECKPOINT_SECONDS,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Metric names are interface: every one must appear in the
    /// DESIGN.md §3.18 reference table. Renaming a metric without
    /// updating the table fails here.
    #[test]
    fn names_are_documented_in_design_md() {
        let design = include_str!("../../../DESIGN.md");
        for name in EngineMetrics::metric_names() {
            assert!(
                design.contains(name),
                "metric {name} is not documented in DESIGN.md §3.18"
            );
        }
    }

    #[test]
    fn register_into_exposes_every_name() {
        let m = EngineMetrics::new(2);
        let reg = Registry::new();
        m.register_into(&reg);
        let names = reg.names();
        for want in EngineMetrics::metric_names() {
            assert!(names.iter().any(|n| n == want), "missing {want}");
        }
        m.batches.inc();
        m.ring_depth[1].set(3);
        m.checkpoint_seconds.observe(0.002);
        let text = reg.render();
        assert!(text.contains("wms_engine_batches_total 1"));
        assert!(text.contains("wms_engine_ring_depth{shard=\"1\"} 3"));
        assert!(text.contains("wms_engine_checkpoint_seconds_count 1"));
    }
}
