//! Append-only spill store for hibernated sessions.
//!
//! The engine's memory budget works by *hibernating* cold sessions: a
//! session is serialized with the PR 5 `WMSS` snapshot encoding and its
//! bytes are parked here until the stream is touched again. The store is
//! a classic append-only log with an in-memory latest-record-wins index:
//!
//! * **Appends never rewrite.** Re-hibernating a stream appends a fresh
//!   record; the previous record for that id becomes garbage.
//! * **Compaction** rewrites only the live records once the garbage
//!   fraction of the log crosses a configurable ratio (plus a small
//!   size floor so tiny logs are never churned). A file-backed log
//!   compacts into a sibling temp file and atomically renames it over
//!   the original, so a crash mid-compaction leaves the old log intact.
//! * **Reopening** ([`SpillFile::open`]) rebuilds the index by scanning
//!   the record headers. A torn tail — the half-written record a crash
//!   or `kill -9` can leave behind — is detected and truncated away;
//!   every record before it survives. Garbage *within* the log (bytes
//!   that cannot be a record header) is refused with a typed error
//!   rather than guessed around.
//!
//! ## Record framing
//!
//! ```text
//! "WMSR" | id: u64 | kind: u8 | len: u64 | payload[len] | checksum: u64
//! ```
//!
//! All integers little-endian. `checksum` is the first 8 bytes of
//! `Md5(id || kind || payload)` interpreted as a little-endian `u64` —
//! the same primitive the rest of the workspace uses, applied as an
//! integrity (not authenticity) check. It is verified on every
//! [`read`](SpillFile::read): a record corrupted at rest surfaces
//! [`CheckpointError::ChecksumMismatch`] instead of silently restoring a
//! desynchronized session, which would defeat the whole watermark.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use wms_core::checkpoint::CheckpointError;
use wms_crypto::{Digest, Md5};

/// Spill record magic.
const REC_MAGIC: [u8; 4] = *b"WMSR";
/// Bytes of framing around a payload: magic + id + kind + len + checksum.
const REC_OVERHEAD: u64 = 4 + 8 + 1 + 8 + 8;
/// Logs smaller than this are never auto-compacted, whatever their
/// garbage ratio — rewriting a few kilobytes buys nothing.
const COMPACT_FLOOR_BYTES: u64 = 64 * 1024;

/// Why a spill operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// The underlying file I/O failed (message carries the OS detail;
    /// `std::io::Error` is neither `Clone` nor `PartialEq`).
    Io(String),
    /// A record was structurally or cryptographically damaged: torn
    /// framing mid-log, a checksum mismatch, or truncation below what
    /// the index says was written.
    Corrupt(CheckpointError),
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpillError::Io(msg) => write!(f, "spill I/O failed: {msg}"),
            SpillError::Corrupt(e) => write!(f, "spill record corrupt: {e}"),
        }
    }
}

impl std::error::Error for SpillError {}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e.to_string())
    }
}

/// Occupancy counters for a spill store (diagnostics / bench metadata).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// Live (indexed) records.
    pub records: usize,
    /// Total log length in bytes, live and garbage.
    pub log_bytes: u64,
    /// Bytes owned by live records (framing included).
    pub live_bytes: u64,
    /// Compactions performed since this store was opened.
    pub compactions: u64,
}

impl SpillStats {
    /// Fraction of the log that is garbage (0.0 for an empty log).
    pub fn garbage_ratio(&self) -> f64 {
        if self.log_bytes == 0 {
            0.0
        } else {
            (self.log_bytes - self.live_bytes) as f64 / self.log_bytes as f64
        }
    }
}

/// Where a live record sits in the log.
#[derive(Clone, Copy)]
struct Slot {
    /// Offset of the record's magic.
    offset: u64,
    /// Session kind tag.
    kind: u8,
    /// Payload length (record length = `REC_OVERHEAD + payload_len`).
    payload_len: u64,
}

/// The log bytes themselves: an anonymous in-memory buffer or a file.
enum Backing {
    Memory(Vec<u8>),
    File { file: File, path: PathBuf },
}

/// Append-only, periodically compacted store of hibernated sessions.
///
/// One record per append; the newest record for an id wins. See the
/// module docs for the format and crash-recovery contract.
pub struct SpillFile {
    backing: Backing,
    /// `id ->` newest record. Latest-record-wins: superseded and removed
    /// records stay in the log as garbage until compaction.
    index: HashMap<u64, Slot>,
    /// Log length in bytes (the append position).
    tail: u64,
    /// Bytes owned by indexed records.
    live_bytes: u64,
    /// Garbage fraction that triggers auto-compaction (`>= 1.0` never).
    compact_ratio: f64,
    compactions: u64,
}

fn checksum(id: u64, kind: u8, payload: &[u8]) -> u64 {
    let mut h = Md5::new();
    h.update(&id.to_le_bytes());
    h.update(&[kind]);
    h.update(payload);
    let d = h.finalize_bytes();
    u64::from_le_bytes(d[..8].try_into().unwrap())
}

impl SpillFile {
    /// Anonymous in-memory store (the default spill target: hibernation
    /// without touching disk).
    pub fn in_memory(compact_ratio: f64) -> SpillFile {
        SpillFile {
            backing: Backing::Memory(Vec::new()),
            index: HashMap::new(),
            tail: 0,
            live_bytes: 0,
            compact_ratio,
            compactions: 0,
        }
    }

    /// Opens (or creates) a file-backed store, rebuilding the index from
    /// the records already in the log.
    ///
    /// A torn tail — an incomplete record where the log ends, the
    /// signature of a crash mid-append — is truncated away and every
    /// record before it is kept. Bytes that are not a record header
    /// *before* the tail mean the log is damaged, not torn: that fails
    /// with [`SpillError::Corrupt`] instead of silently dropping data.
    pub fn open(path: &Path, compact_ratio: f64) -> Result<SpillFile, SpillError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut live_bytes = 0u64;
        let mut pos = 0u64;
        file.seek(SeekFrom::Start(0))?;
        // Scan headers, skipping payloads; checksums are verified lazily
        // on read, so reopening a multi-gigabyte log stays cheap.
        let mut header = [0u8; 21]; // magic + id + kind + len
        while pos < len {
            if len - pos < header.len() as u64 {
                break; // torn tail: header itself is incomplete
            }
            file.seek(SeekFrom::Start(pos))?;
            file.read_exact(&mut header)?;
            if header[..4] != REC_MAGIC {
                return Err(SpillError::Corrupt(CheckpointError::BadMagic {
                    expected: REC_MAGIC,
                    found: [header[0], header[1], header[2], header[3]],
                }));
            }
            let id = u64::from_le_bytes(header[4..12].try_into().unwrap());
            let kind = header[12];
            let payload_len = u64::from_le_bytes(header[13..21].try_into().unwrap());
            let rec_len = REC_OVERHEAD + payload_len;
            if len - pos < rec_len {
                break; // torn tail: payload/checksum cut short
            }
            let slot = Slot {
                offset: pos,
                kind,
                payload_len,
            };
            if let Some(old) = index.insert(id, slot) {
                live_bytes -= REC_OVERHEAD + old.payload_len;
            }
            live_bytes += rec_len;
            pos += rec_len;
        }
        if pos < len {
            // Drop the torn tail so the next append starts at a clean
            // record boundary.
            file.set_len(pos)?;
            file.sync_all()?;
        }
        Ok(SpillFile {
            backing: Backing::File {
                file,
                path: path.to_path_buf(),
            },
            index,
            tail: pos,
            live_bytes,
            compact_ratio,
            compactions: 0,
        })
    }

    /// Live record ids, in unspecified order.
    pub fn ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.index.keys().copied()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no live records exist (the log may still hold garbage).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True when `id` has a live record.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// Occupancy counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            records: self.index.len(),
            log_bytes: self.tail,
            live_bytes: self.live_bytes,
            compactions: self.compactions,
        }
    }

    /// Appends a record for `id`, superseding any previous one, then
    /// compacts if the garbage ratio crossed the threshold.
    pub fn append(&mut self, id: u64, kind: u8, payload: &[u8]) -> Result<(), SpillError> {
        let mut rec = Vec::with_capacity(REC_OVERHEAD as usize + payload.len());
        rec.extend_from_slice(&REC_MAGIC);
        rec.extend_from_slice(&id.to_le_bytes());
        rec.push(kind);
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&checksum(id, kind, payload).to_le_bytes());
        match &mut self.backing {
            Backing::Memory(buf) => buf.extend_from_slice(&rec),
            Backing::File { file, .. } => {
                file.seek(SeekFrom::Start(self.tail))?;
                file.write_all(&rec)?;
            }
        }
        let slot = Slot {
            offset: self.tail,
            kind,
            payload_len: payload.len() as u64,
        };
        if let Some(old) = self.index.insert(id, slot) {
            self.live_bytes -= REC_OVERHEAD + old.payload_len;
        }
        self.live_bytes += rec.len() as u64;
        self.tail += rec.len() as u64;
        self.maybe_compact()
    }

    /// Reads `id`'s live record, verifying its checksum. `Ok(None)` when
    /// no live record exists.
    pub fn read(&mut self, id: u64) -> Result<Option<(u8, Vec<u8>)>, SpillError> {
        let Some(slot) = self.index.get(&id).copied() else {
            return Ok(None);
        };
        let payload_off = slot.offset + 21;
        let mut payload = vec![0u8; slot.payload_len as usize];
        let mut stored = [0u8; 8];
        match &mut self.backing {
            Backing::Memory(buf) => {
                let start = payload_off as usize;
                let end = start + payload.len();
                payload.copy_from_slice(&buf[start..end]);
                stored.copy_from_slice(&buf[end..end + 8]);
            }
            Backing::File { file, .. } => {
                file.seek(SeekFrom::Start(payload_off))?;
                read_exact_or_truncated(file, &mut payload)?;
                read_exact_or_truncated(file, &mut stored)?;
            }
        }
        let stored = u64::from_le_bytes(stored);
        let expected = checksum(id, slot.kind, &payload);
        if stored != expected {
            return Err(SpillError::Corrupt(CheckpointError::ChecksumMismatch {
                expected,
                found: stored,
            }));
        }
        Ok(Some((slot.kind, payload)))
    }

    /// Drops `id`'s live record (its bytes become garbage). Returns
    /// whether a record existed. Compacts if the drop crossed the
    /// garbage threshold.
    pub fn remove(&mut self, id: u64) -> Result<bool, SpillError> {
        match self.index.remove(&id) {
            Some(old) => {
                self.live_bytes -= REC_OVERHEAD + old.payload_len;
                self.maybe_compact()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drops every live record. The engine calls this after reopening a
    /// pre-existing log on construction/restore: a checkpoint is
    /// self-contained, so whatever the previous process spilled is stale
    /// the moment the checkpoint is adopted.
    pub fn clear(&mut self) -> Result<(), SpillError> {
        self.index.clear();
        self.live_bytes = 0;
        if self.tail > 0 {
            self.compact()?;
        }
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), SpillError> {
        if self.compact_ratio >= 1.0 || self.tail < COMPACT_FLOOR_BYTES {
            return Ok(());
        }
        let garbage = self.tail - self.live_bytes;
        if (garbage as f64) > self.compact_ratio * self.tail as f64 {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log to live records only and resets the index to the
    /// new offsets. File-backed logs compact through a sibling temp file
    /// and an atomic rename, so a crash mid-compaction leaves the
    /// original log untouched.
    pub fn compact(&mut self) -> Result<(), SpillError> {
        self.compactions += 1;
        // Copy live records in offset order: sequential reads, and the
        // compacted log preserves append order (cheap to reason about).
        let mut live: Vec<(u64, Slot)> = self.index.iter().map(|(&id, &s)| (id, s)).collect();
        live.sort_by_key(|(_, s)| s.offset);
        match &mut self.backing {
            Backing::Memory(buf) => {
                let mut out = Vec::with_capacity(self.live_bytes as usize);
                for (id, slot) in &live {
                    let start = slot.offset as usize;
                    let end = start + (REC_OVERHEAD + slot.payload_len) as usize;
                    let new_off = out.len() as u64;
                    out.extend_from_slice(&buf[start..end]);
                    self.index.get_mut(id).unwrap().offset = new_off;
                }
                *buf = out;
                self.tail = self.live_bytes;
            }
            Backing::File { file, path } => {
                let mut tmp_name = path
                    .file_name()
                    .map(|n| n.to_os_string())
                    .unwrap_or_default();
                tmp_name.push(".compact");
                let tmp_path = path.with_file_name(tmp_name);
                let mut tmp = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&tmp_path)?;
                let mut out_off = 0u64;
                let mut buf = Vec::new();
                for (id, slot) in &live {
                    let rec_len = (REC_OVERHEAD + slot.payload_len) as usize;
                    buf.resize(rec_len, 0);
                    file.seek(SeekFrom::Start(slot.offset))?;
                    read_exact_or_truncated(file, &mut buf)?;
                    tmp.write_all(&buf)?;
                    self.index.get_mut(id).unwrap().offset = out_off;
                    out_off += rec_len as u64;
                }
                tmp.sync_all()?;
                std::fs::rename(&tmp_path, &*path)?;
                *file = tmp;
                self.tail = out_off;
            }
        }
        debug_assert_eq!(self.tail, self.live_bytes);
        Ok(())
    }

    /// Flushes the log to stable storage (no-op for the in-memory
    /// backing). Callers persisting a checkpoint should sync the spill
    /// first so a crash cannot outrun the log.
    pub fn sync(&mut self) -> Result<(), SpillError> {
        if let Backing::File { file, .. } = &mut self.backing {
            file.sync_all()?;
        }
        Ok(())
    }
}

/// `read_exact` that maps an early EOF to a typed truncation error: the
/// index said the record was written, so missing bytes mean the log was
/// cut down behind our back, not an ordinary I/O hiccup.
fn read_exact_or_truncated(file: &mut File, buf: &mut [u8]) -> Result<(), SpillError> {
    file.read_exact(buf).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            SpillError::Corrupt(CheckpointError::Truncated)
        } else {
            SpillError::Io(e.to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip_latest_wins() {
        let mut s = SpillFile::in_memory(0.5);
        s.append(7, 1, b"first").unwrap();
        s.append(9, 0, b"other").unwrap();
        s.append(7, 1, b"second").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.read(7).unwrap(), Some((1, b"second".to_vec())));
        assert_eq!(s.read(9).unwrap(), Some((0, b"other".to_vec())));
        assert_eq!(s.read(1).unwrap(), None);
        assert!(s.remove(7).unwrap());
        assert!(!s.remove(7).unwrap());
        assert_eq!(s.read(7).unwrap(), None);
    }

    #[test]
    fn memory_compaction_reclaims_garbage() {
        let mut s = SpillFile::in_memory(1.0); // auto-compaction off
        for round in 0..10u64 {
            for id in 0..8u64 {
                s.append(id, 0, &[round as u8; 64]).unwrap();
            }
        }
        let before = s.stats();
        assert!(before.garbage_ratio() > 0.8, "{before:?}");
        s.compact().unwrap();
        let after = s.stats();
        assert_eq!(after.records, 8);
        assert_eq!(after.log_bytes, after.live_bytes);
        for id in 0..8u64 {
            assert_eq!(s.read(id).unwrap(), Some((0, vec![9u8; 64])));
        }
    }

    #[test]
    fn stats_track_live_and_garbage() {
        let mut s = SpillFile::in_memory(1.0);
        s.append(1, 0, &[0u8; 10]).unwrap();
        let one = s.stats();
        assert_eq!(one.records, 1);
        assert_eq!(one.live_bytes, REC_OVERHEAD + 10);
        assert_eq!(one.garbage_ratio(), 0.0);
        s.append(1, 0, &[0u8; 10]).unwrap(); // supersede
        let two = s.stats();
        assert_eq!(two.records, 1);
        assert_eq!(two.log_bytes, 2 * (REC_OVERHEAD + 10));
        assert_eq!(two.live_bytes, REC_OVERHEAD + 10);
        assert!((two.garbage_ratio() - 0.5).abs() < 1e-12);
    }
}
