//! The shard executor's workers.
//!
//! One [`Shard`] exclusively owns one partition's sessions, so processing
//! takes no locks. With more than one worker each shard lives on its own
//! thread: the engine sends a command, the worker mutates its local
//! session map and replies on its dedicated channel, and the engine's
//! one-outstanding-request discipline (`request` then `wait`) doubles as
//! the per-batch barrier. With exactly one worker the engine holds the
//! shard inline on the caller thread and skips the channel round-trip
//! entirely (see `Backend::Inline` in `lib.rs`).
//!
//! ## Panic containment
//!
//! A session panic (a bug, or the test-only
//! [`StreamSpec::FaultInject`](crate::StreamSpec::FaultInject) hook) must
//! not cascade: the worker wraps every command in `catch_unwind`, sends
//! [`Reply::Lost`] and exits, and the engine surfaces
//! [`EngineError::WorkerLost`](crate::EngineError::WorkerLost) to the
//! caller instead of panicking on its own thread. The shard's sessions
//! are considered poisoned after a panic (the panic may have fired midway
//! through a state mutation) and are dropped with the worker.

use crate::{StreamId, StreamOutcome, StreamSpec};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use wms_core::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use wms_core::{DetectSession, EmbedSession};
use wms_stream::{Event, Sample};

/// Checkpoint kind tag of an embedding session.
pub(crate) const KIND_EMBED: u8 = 0;
/// Checkpoint kind tag of a detection session.
pub(crate) const KIND_DETECT: u8 = 1;
/// Checkpoint kind tag of the test-only fault-injection session.
pub(crate) const KIND_FAULT: u8 = 2;
/// Checkpoint kind tag of the pass-through no-op session.
pub(crate) const KIND_NOOP: u8 = 3;

/// Engine → worker commands.
pub(crate) enum Cmd {
    /// Adopt a new session.
    Register(StreamId, StreamSpec),
    /// Adopt an already-restored session (engine-side checkpoint
    /// restore; the reply is `Registered`, like `Register`). Boxed: a
    /// session is orders of magnitude bigger than the other commands.
    Adopt(StreamId, Box<Session>),
    /// Process this shard's slice of an ingest batch (stream order
    /// within the slice is the wire order).
    Ingest(Vec<Event>),
    /// Snapshot the listed sessions (engine sends them in registration
    /// order) without disturbing them.
    Snapshot(Vec<StreamId>),
    /// Serialize the listed sessions and *remove* them from the shard
    /// (hibernation: the engine parks the bytes in its spill store).
    Evict(Vec<StreamId>),
    /// Flush the listed sessions (engine sends them in registration
    /// order) and reply with their outcomes.
    Finish(Vec<StreamId>),
    /// Exit the worker loop.
    Shutdown,
}

/// Worker → engine replies (one per non-shutdown command).
pub(crate) enum Reply {
    Registered,
    /// Per touched stream, in first-touch order of the shard's slice:
    /// the samples its session emitted. `batch` returns the drained
    /// event buffer so the engine can reuse its capacity next ingest.
    Ingested {
        outs: Vec<(StreamId, Vec<Sample>)>,
        batch: Vec<Event>,
    },
    /// Per requested stream: its kind tag and serialized session state.
    Snapshots(Vec<(StreamId, u8, Vec<u8>)>),
    /// Per evicted stream: its kind tag and serialized session state.
    /// The sessions are gone from the shard.
    Evicted(Vec<(StreamId, u8, Vec<u8>)>),
    Finished(Vec<StreamOutcome>),
    /// A command panicked. The worker has dropped its (poisoned) shard
    /// and exited; every later `request`/`wait` on this handle fails.
    Lost,
}

/// One live session: its spec (shared config) plus per-stream state.
pub(crate) enum Session {
    Embed(StreamSpec, EmbedSession),
    Detect(StreamSpec, DetectSession),
    /// Test-only: panics while processing sample number `after`.
    Fault {
        after: u64,
        seen: u64,
    },
    /// Pass-through: counts samples, emits nothing.
    NoOp {
        seen: u64,
    },
}

impl Session {
    pub(crate) fn open(spec: StreamSpec) -> Session {
        match &spec {
            StreamSpec::Embed(cfg) => {
                let sess = cfg.new_session();
                Session::Embed(spec, sess)
            }
            StreamSpec::Detect(cfg) => {
                let sess = cfg.new_session();
                Session::Detect(spec, sess)
            }
            StreamSpec::FaultInject { panic_after } => Session::Fault {
                after: (*panic_after).max(1),
                seen: 0,
            },
            StreamSpec::NoOp => Session::NoOp { seen: 0 },
        }
    }

    fn push(&mut self, s: Sample, out: &mut Vec<Sample>) {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), sess) => cfg.push_into(sess, s, out),
            Session::Detect(StreamSpec::Detect(cfg), sess) => cfg.push(sess, s),
            Session::Fault { after, seen } => {
                *seen += 1;
                if *seen >= *after {
                    panic!("injected session fault after {after} samples");
                }
            }
            Session::NoOp { seen } => *seen += 1,
            _ => unreachable!("spec/session kind mismatch"),
        }
    }

    /// How many replay-state mutations this session has absorbed. Used
    /// as the snapshot-cache key: an unchanged count means the last
    /// serialized snapshot is still byte-exact. Fresh *and restored*
    /// sessions both start at 0, so the cache entry must be dropped
    /// whenever a session is replaced (register/adopt/evict/finish).
    fn mutation_count(&self) -> u64 {
        match self {
            Session::Embed(_, sess) => sess.mutation_count(),
            Session::Detect(_, sess) => sess.mutation_count(),
            Session::Fault { seen, .. } => *seen,
            Session::NoOp { seen } => *seen,
        }
    }

    /// Serializes this session (kind tag + versioned snapshot bytes)
    /// without mutating it.
    fn snapshot(&self) -> (u8, Vec<u8>) {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), sess) => (KIND_EMBED, sess.snapshot(cfg)),
            Session::Detect(StreamSpec::Detect(cfg), sess) => (KIND_DETECT, sess.snapshot(cfg)),
            Session::Fault { after, seen } => {
                let mut w = ByteWriter::new();
                w.put_u64(*after);
                w.put_u64(*seen);
                (KIND_FAULT, w.into_bytes())
            }
            Session::NoOp { seen } => {
                let mut w = ByteWriter::new();
                w.put_u64(*seen);
                (KIND_NOOP, w.into_bytes())
            }
            _ => unreachable!("spec/session kind mismatch"),
        }
    }

    /// Rebuilds a session from a checkpoint entry under the spec the
    /// caller resolved for this stream. The spec's kind must match the
    /// entry's kind tag, and the snapshot's scheme fingerprint must match
    /// the spec's scheme (checked inside the core restore).
    pub(crate) fn restore(
        spec: StreamSpec,
        kind: u8,
        bytes: &[u8],
    ) -> Result<Session, CheckpointError> {
        let expected = match &spec {
            StreamSpec::Embed(_) => KIND_EMBED,
            StreamSpec::Detect(_) => KIND_DETECT,
            StreamSpec::FaultInject { .. } => KIND_FAULT,
            StreamSpec::NoOp => KIND_NOOP,
        };
        if kind != expected {
            return Err(CheckpointError::WrongKind {
                expected,
                found: kind,
            });
        }
        match &spec {
            StreamSpec::Embed(cfg) => {
                let sess = EmbedSession::restore(cfg, bytes)?;
                Ok(Session::Embed(spec.clone(), sess))
            }
            StreamSpec::Detect(cfg) => {
                let sess = DetectSession::restore(cfg, bytes)?;
                Ok(Session::Detect(spec.clone(), sess))
            }
            StreamSpec::FaultInject { .. } => {
                let mut r = ByteReader::new(bytes);
                let after = r.get_u64()?;
                let seen = r.get_u64()?;
                r.finish()?;
                Ok(Session::Fault { after, seen })
            }
            StreamSpec::NoOp => {
                let mut r = ByteReader::new(bytes);
                let seen = r.get_u64()?;
                r.finish()?;
                Ok(Session::NoOp { seen })
            }
        }
    }

    fn close(self, stream: StreamId) -> StreamOutcome {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), mut sess) => {
                let mut tail = Vec::new();
                cfg.finish_into(&mut sess, &mut tail);
                StreamOutcome {
                    stream,
                    tail,
                    embed_stats: Some(*sess.stats()),
                    report: None,
                }
            }
            Session::Detect(StreamSpec::Detect(cfg), mut sess) => StreamOutcome {
                stream,
                tail: Vec::new(),
                embed_stats: None,
                report: Some(cfg.finish(&mut sess)),
            },
            Session::Fault { .. } | Session::NoOp { .. } => StreamOutcome {
                stream,
                tail: Vec::new(),
                embed_stats: None,
                report: None,
            },
            _ => unreachable!("spec/session kind mismatch"),
        }
    }
}

/// One shard's sessions plus the first-touch bookkeeping buffers reused
/// across ingests. Thread-agnostic: lives on a worker thread behind a
/// channel, or inline in the engine when there is a single worker.
pub(crate) struct Shard {
    sessions: HashMap<u64, Session>,
    /// first-touch bookkeeping reused across `ingest` calls.
    touch_order: Vec<StreamId>,
    slot_of: HashMap<u64, usize>,
    /// `id -> (mutation count, kind, snapshot bytes)` — serialized
    /// snapshots reused while a session's mutation count is unchanged,
    /// so repeated checkpoints (and an eviction right after one) only
    /// re-serialize sessions that actually moved. Populated lazily by
    /// the first snapshot of a session; invalidated whenever the session
    /// is replaced or removed (a fresh/restored session restarts its
    /// count at 0, which would alias a stale entry).
    snap_cache: HashMap<u64, (u64, u8, Vec<u8>)>,
}

impl Shard {
    pub(crate) fn new() -> Shard {
        Shard {
            sessions: HashMap::new(),
            touch_order: Vec::new(),
            slot_of: HashMap::new(),
            snap_cache: HashMap::new(),
        }
    }

    pub(crate) fn register(&mut self, id: StreamId, spec: StreamSpec) {
        self.sessions.insert(id.0, Session::open(spec));
        self.snap_cache.remove(&id.0);
    }

    pub(crate) fn adopt(&mut self, id: StreamId, session: Session) {
        self.sessions.insert(id.0, session);
        self.snap_cache.remove(&id.0);
    }

    /// Processes one sub-batch. Returns each touched stream's emissions
    /// in first-touch order of the slice.
    ///
    /// Consecutive events of the same stream (the common shape both for
    /// single-stream flows and chunky interleavings) resolve their
    /// session and output slot once per run, not once per event — this
    /// is what lets the inline single-worker backend match, and on
    /// run-heavy input beat, the no-engine sequential baseline.
    pub(crate) fn ingest_slice(&mut self, events: &[Event]) -> Vec<(StreamId, Vec<Sample>)> {
        self.touch_order.clear();
        self.slot_of.clear();
        let mut outs: Vec<Vec<Sample>> = Vec::new();
        let mut i = 0;
        while i < events.len() {
            let id = events[i].stream;
            let slot = *self.slot_of.entry(id.0).or_insert_with(|| {
                self.touch_order.push(id);
                outs.push(Vec::new());
                outs.len() - 1
            });
            let session = self
                .sessions
                .get_mut(&id.0)
                .expect("engine validated the id");
            let out = &mut outs[slot];
            while i < events.len() && events[i].stream == id {
                session.push(events[i].sample, out);
                i += 1;
            }
        }
        self.touch_order.iter().copied().zip(outs).collect()
    }

    /// Serializes one session, reusing the cached bytes when its
    /// mutation count is unchanged since the last snapshot.
    fn snapshot_of(&mut self, id: StreamId) -> (u8, Vec<u8>) {
        let session = self
            .sessions
            .get(&id.0)
            .expect("engine tracks registrations");
        let count = session.mutation_count();
        if let Some((cached_count, kind, bytes)) = self.snap_cache.get(&id.0) {
            if *cached_count == count {
                return (*kind, bytes.clone());
            }
        }
        let (kind, bytes) = session.snapshot();
        self.snap_cache.insert(id.0, (count, kind, bytes.clone()));
        (kind, bytes)
    }

    /// Snapshots the listed sessions without disturbing them: the run
    /// continues bit-identically whether or not a checkpoint was taken.
    /// (`&mut` only for the snapshot cache — session state is untouched.)
    pub(crate) fn snapshot(&mut self, ids: &[StreamId]) -> Vec<(StreamId, u8, Vec<u8>)> {
        ids.iter()
            .map(|id| {
                let (kind, bytes) = self.snapshot_of(*id);
                (*id, kind, bytes)
            })
            .collect()
    }

    /// Serializes and removes the listed sessions (hibernation). An
    /// eviction on the heels of a checkpoint reuses the cached snapshot
    /// bytes instead of serializing twice.
    pub(crate) fn evict(&mut self, ids: &[StreamId]) -> Vec<(StreamId, u8, Vec<u8>)> {
        ids.iter()
            .map(|id| {
                let session = self
                    .sessions
                    .remove(&id.0)
                    .expect("engine tracks residency");
                let (kind, bytes) = match self.snap_cache.remove(&id.0) {
                    Some((count, kind, bytes)) if count == session.mutation_count() => {
                        (kind, bytes)
                    }
                    _ => session.snapshot(),
                };
                (*id, kind, bytes)
            })
            .collect()
    }

    pub(crate) fn finish(&mut self, ids: Vec<StreamId>) -> Vec<StreamOutcome> {
        ids.into_iter()
            .map(|id| {
                self.snap_cache.remove(&id.0);
                self.sessions
                    .remove(&id.0)
                    .expect("engine tracks registrations")
                    .close(id)
            })
            .collect()
    }

    /// Executes one non-shutdown command.
    fn handle(&mut self, cmd: Cmd) -> Reply {
        match cmd {
            Cmd::Register(id, spec) => {
                self.register(id, spec);
                Reply::Registered
            }
            Cmd::Adopt(id, session) => {
                self.adopt(id, *session);
                Reply::Registered
            }
            Cmd::Ingest(events) => {
                let outs = self.ingest_slice(&events);
                Reply::Ingested {
                    outs,
                    batch: events,
                }
            }
            Cmd::Snapshot(ids) => Reply::Snapshots(self.snapshot(&ids)),
            Cmd::Evict(ids) => Reply::Evicted(self.evict(&ids)),
            Cmd::Finish(ids) => Reply::Finished(self.finish(ids)),
            Cmd::Shutdown => unreachable!("handled by the run loop"),
        }
    }
}

/// The engine's side of one worker thread.
pub(crate) struct WorkerHandle {
    tx: Sender<Cmd>,
    rx: Receiver<Reply>,
    join: Option<JoinHandle<()>>,
    /// The worker panicked (or its channels closed unexpectedly); every
    /// further request fails fast instead of blocking or panicking.
    lost: bool,
}

impl WorkerHandle {
    /// Spawns the worker for shard `index`.
    pub(crate) fn spawn(index: usize) -> WorkerHandle {
        let (tx, cmd_rx) = channel::<Cmd>();
        let (reply_tx, rx) = channel::<Reply>();
        let join = std::thread::Builder::new()
            .name(format!("wms-engine-shard-{index}"))
            .spawn(move || run(cmd_rx, reply_tx))
            .expect("spawn shard worker");
        WorkerHandle {
            tx,
            rx,
            join: Some(join),
            lost: false,
        }
    }

    /// Sends one command (must be followed by `wait` unless Shutdown).
    /// `Err(())` means the worker is gone; the caller maps it to
    /// [`EngineError::WorkerLost`](crate::EngineError::WorkerLost).
    pub(crate) fn request(&mut self, cmd: Cmd) -> Result<(), ()> {
        if self.lost {
            return Err(());
        }
        self.tx.send(cmd).map_err(|_| {
            self.lost = true;
        })
    }

    /// Blocks for the reply to the last `request`.
    pub(crate) fn wait(&mut self) -> Result<Reply, ()> {
        if self.lost {
            return Err(());
        }
        match self.rx.recv() {
            Ok(Reply::Lost) | Err(_) => {
                self.lost = true;
                Err(())
            }
            Ok(reply) => Ok(reply),
        }
    }

    /// Asks the thread to exit and joins it (idempotent, abort-safe:
    /// never panics, even when the worker is already gone or this drop
    /// happens during an unwind on the caller thread).
    pub(crate) fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            // Ignore send failure: the worker already exited.
            let _ = self.tx.send(Cmd::Shutdown);
            let _ = join.join();
        }
    }
}

/// Worker loop: owns this shard's sessions until shutdown or a panic.
fn run(cmds: Receiver<Cmd>, replies: Sender<Reply>) {
    let mut shard = Shard::new();
    while let Ok(cmd) = cmds.recv() {
        if matches!(cmd, Cmd::Shutdown) {
            break;
        }
        match catch_unwind(AssertUnwindSafe(|| shard.handle(cmd))) {
            Ok(reply) => {
                if replies.send(reply).is_err() {
                    break; // engine dropped mid-flight
                }
            }
            Err(_panic) => {
                // The shard state may be mid-mutation: report the loss
                // and exit, dropping the poisoned sessions with us. The
                // panic payload is discarded (its message already went
                // through the panic hook).
                let _ = replies.send(Reply::Lost);
                break;
            }
        }
    }
}
