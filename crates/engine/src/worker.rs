//! The shard executor: per-shard bounded ingest rings.
//!
//! One [`Shard`] exclusively owns one partition's sessions. With more
//! than one worker each shard gets a [`ShardCell`]: a bounded ring of
//! published sub-batches (`pending`), a FIFO of completed results
//! (`done`), and an **applied watermark** — the sequence number of the
//! last sub-batch fully applied to the shard's sessions. The engine
//! routes a batch once into per-shard staging buffers, publishes each
//! shard's slice (events plus pre-resolved `(slot, len)` run
//! descriptors, so the consumer never hashes a stream id), and only
//! waits on the watermark when an output is actually needed —
//! back-to-back batches pipeline instead of lock-stepping on a
//! per-batch barrier.
//!
//! Consumption is symmetric: each shard has a dedicated worker thread,
//! and the *caller* drains rings too whenever it would otherwise block
//! (ring full, or waiting out a watermark). On a saturated or
//! single-core host the caller ends up doing most of the work inline —
//! no cross-thread hand-off, no context switches — while on a multicore
//! host the workers drain eagerly and the caller becomes one more
//! consumer. Entry order is preserved even with two consumers because a
//! consumer acquires the shard's session lock (`proc`) *before* popping
//! the ring, so pops and processing are atomic per shard.
//!
//! With exactly one worker the engine holds the shard inline on the
//! caller thread and skips the ring entirely (see `Backend::Inline` in
//! `lib.rs`).
//!
//! ## Panic containment
//!
//! A session panic (a bug, or the test-only
//! [`StreamSpec::FaultInject`](crate::StreamSpec::FaultInject) hook)
//! must not cascade: every consumer wraps processing in `catch_unwind`
//! *inside* the lock scope (so the `Mutex` itself is never poisoned),
//! marks the cell poisoned, and wakes every waiter. The engine surfaces
//! [`EngineError::WorkerLost`](crate::EngineError::WorkerLost) on the
//! caller thread instead of panicking or hanging; the shard's sessions
//! are considered lost (the panic may have fired midway through a state
//! mutation).

use crate::{StreamId, StreamOutcome, StreamSpec};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, TryLockError};
use std::thread::JoinHandle;
use wms_core::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use wms_core::{DetectSession, EmbedSession};
use wms_stream::{Event, Sample};
use wms_telemetry::Gauge;

/// Checkpoint kind tag of an embedding session.
pub(crate) const KIND_EMBED: u8 = 0;
/// Checkpoint kind tag of a detection session.
pub(crate) const KIND_DETECT: u8 = 1;
/// Checkpoint kind tag of the test-only fault-injection session.
pub(crate) const KIND_FAULT: u8 = 2;
/// Checkpoint kind tag of the pass-through no-op session.
pub(crate) const KIND_NOOP: u8 = 3;

/// One live session: its spec (shared config) plus per-stream state.
pub(crate) enum Session {
    Embed(StreamSpec, EmbedSession),
    Detect(StreamSpec, DetectSession),
    /// Test-only: panics while processing sample number `after`.
    Fault {
        after: u64,
        seen: u64,
    },
    /// Pass-through: counts samples, emits nothing.
    NoOp {
        seen: u64,
    },
}

impl Session {
    pub(crate) fn open(spec: StreamSpec) -> Session {
        match &spec {
            StreamSpec::Embed(cfg) => {
                let sess = cfg.new_session();
                Session::Embed(spec, sess)
            }
            StreamSpec::Detect(cfg) => {
                let sess = cfg.new_session();
                Session::Detect(spec, sess)
            }
            StreamSpec::FaultInject { panic_after } => Session::Fault {
                after: (*panic_after).max(1),
                seen: 0,
            },
            StreamSpec::NoOp => Session::NoOp { seen: 0 },
        }
    }

    fn push(&mut self, s: Sample, out: &mut Vec<Sample>) {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), sess) => cfg.push_into(sess, s, out),
            Session::Detect(StreamSpec::Detect(cfg), sess) => cfg.push(sess, s),
            Session::Fault { after, seen } => {
                *seen += 1;
                if *seen >= *after {
                    panic!("injected session fault after {after} samples");
                }
            }
            Session::NoOp { seen } => *seen += 1,
            _ => unreachable!("spec/session kind mismatch"),
        }
    }

    /// How many replay-state mutations this session has absorbed. Used
    /// as the snapshot-cache key: an unchanged count means the last
    /// serialized snapshot is still byte-exact. Fresh *and restored*
    /// sessions both start at 0, so the cache entry must be dropped
    /// whenever a session is replaced (register/adopt/evict/finish).
    fn mutation_count(&self) -> u64 {
        match self {
            Session::Embed(_, sess) => sess.mutation_count(),
            Session::Detect(_, sess) => sess.mutation_count(),
            Session::Fault { seen, .. } => *seen,
            Session::NoOp { seen } => *seen,
        }
    }

    /// Serializes this session (kind tag + versioned snapshot bytes)
    /// without mutating it.
    fn snapshot(&self) -> (u8, Vec<u8>) {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), sess) => (KIND_EMBED, sess.snapshot(cfg)),
            Session::Detect(StreamSpec::Detect(cfg), sess) => (KIND_DETECT, sess.snapshot(cfg)),
            Session::Fault { after, seen } => {
                let mut w = ByteWriter::new();
                w.put_u64(*after);
                w.put_u64(*seen);
                (KIND_FAULT, w.into_bytes())
            }
            Session::NoOp { seen } => {
                let mut w = ByteWriter::new();
                w.put_u64(*seen);
                (KIND_NOOP, w.into_bytes())
            }
            _ => unreachable!("spec/session kind mismatch"),
        }
    }

    /// Rebuilds a session from a checkpoint entry under the spec the
    /// caller resolved for this stream. The spec's kind must match the
    /// entry's kind tag, and the snapshot's scheme fingerprint must match
    /// the spec's scheme (checked inside the core restore).
    pub(crate) fn restore(
        spec: StreamSpec,
        kind: u8,
        bytes: &[u8],
    ) -> Result<Session, CheckpointError> {
        let expected = match &spec {
            StreamSpec::Embed(_) => KIND_EMBED,
            StreamSpec::Detect(_) => KIND_DETECT,
            StreamSpec::FaultInject { .. } => KIND_FAULT,
            StreamSpec::NoOp => KIND_NOOP,
        };
        if kind != expected {
            return Err(CheckpointError::WrongKind {
                expected,
                found: kind,
            });
        }
        match &spec {
            StreamSpec::Embed(cfg) => {
                let sess = EmbedSession::restore(cfg, bytes)?;
                Ok(Session::Embed(spec.clone(), sess))
            }
            StreamSpec::Detect(cfg) => {
                let sess = DetectSession::restore(cfg, bytes)?;
                Ok(Session::Detect(spec.clone(), sess))
            }
            StreamSpec::FaultInject { .. } => {
                let mut r = ByteReader::new(bytes);
                let after = r.get_u64()?;
                let seen = r.get_u64()?;
                r.finish()?;
                Ok(Session::Fault { after, seen })
            }
            StreamSpec::NoOp => {
                let mut r = ByteReader::new(bytes);
                let seen = r.get_u64()?;
                r.finish()?;
                Ok(Session::NoOp { seen })
            }
        }
    }

    fn close(self, stream: StreamId) -> StreamOutcome {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), mut sess) => {
                let mut tail = Vec::new();
                cfg.finish_into(&mut sess, &mut tail);
                StreamOutcome {
                    stream,
                    tail,
                    embed_stats: Some(*sess.stats()),
                    report: None,
                }
            }
            Session::Detect(StreamSpec::Detect(cfg), mut sess) => StreamOutcome {
                stream,
                tail: Vec::new(),
                embed_stats: None,
                report: Some(cfg.finish(&mut sess)),
            },
            Session::Fault { .. } | Session::NoOp { .. } => StreamOutcome {
                stream,
                tail: Vec::new(),
                embed_stats: None,
                report: None,
            },
            _ => unreachable!("spec/session kind mismatch"),
        }
    }
}

/// One session materialized in a shard slot.
struct SessionSlot {
    id: StreamId,
    session: Session,
    /// Stamp of the last ingest pass that touched this slot; paired with
    /// `out_idx` it replaces a per-pass `id -> output slot` hash map.
    touch: u64,
    out_idx: u32,
}

/// One shard's sessions plus the bookkeeping reused across ingests.
///
/// Sessions live in stable **slots** (`Vec` + free list): the engine's
/// registry records each resident stream's slot, routes every run to
/// `(slot, len)` descriptors, and the ingest consumer indexes straight
/// into the slot vector — no per-run hashing on the parallel hot path.
/// The id-keyed `index` serves the inline single-worker path (which
/// skips routing entirely) and the by-id control operations
/// (snapshot/evict/finish).
pub(crate) struct Shard {
    slots: Vec<Option<SessionSlot>>,
    free: Vec<u32>,
    /// `id -> slot`, for the inline ingest path and by-id control ops.
    index: HashMap<u64, u32>,
    /// Monotonic per-ingest-pass stamp driving first-touch detection.
    stamp: u64,
    /// `id -> (mutation count, kind, snapshot bytes)` — serialized
    /// snapshots reused while a session's mutation count is unchanged,
    /// so repeated checkpoints (and an eviction right after one) only
    /// re-serialize sessions that actually moved. Populated lazily by
    /// the first snapshot of a session; invalidated whenever the session
    /// is replaced or removed (a fresh/restored session restarts its
    /// count at 0, which would alias a stale entry).
    snap_cache: HashMap<u64, (u64, u8, Vec<u8>)>,
}

impl Shard {
    pub(crate) fn new() -> Shard {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            stamp: 0,
            snap_cache: HashMap::new(),
        }
    }

    fn insert(&mut self, id: StreamId, session: Session) -> u32 {
        let slot = SessionSlot {
            id,
            session,
            touch: 0,
            out_idx: 0,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id.0, idx);
        self.snap_cache.remove(&id.0);
        idx
    }

    /// Opens a fresh session; returns its slot.
    pub(crate) fn register(&mut self, id: StreamId, spec: StreamSpec) -> u32 {
        self.insert(id, Session::open(spec))
    }

    /// Adopts an already-restored session; returns its slot.
    pub(crate) fn adopt(&mut self, id: StreamId, session: Session) -> u32 {
        self.insert(id, session)
    }

    fn remove(&mut self, id: StreamId) -> Option<Session> {
        let idx = self.index.remove(&id.0)?;
        let slot = self.slots[idx as usize].take().expect("index names a slot");
        self.free.push(idx);
        Some(slot.session)
    }

    /// Processes one sub-batch through pre-resolved run descriptors:
    /// `runs[k] = (slot, len)` consumes the next `len` events against
    /// the session in `slot`. Returns each touched stream's emissions in
    /// first-touch order of the slice (the engine re-merges by id, so
    /// only per-stream sample order matters here — but first-touch order
    /// falls out of the stamp scheme for free).
    pub(crate) fn ingest_runs(
        &mut self,
        events: &[Event],
        runs: &[(u32, u32)],
    ) -> Vec<(StreamId, Vec<Sample>)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut outs: Vec<(StreamId, Vec<Sample>)> = Vec::new();
        let mut i = 0usize;
        for &(slot, len) in runs {
            let s = self.slots[slot as usize]
                .as_mut()
                .expect("engine routed to a live slot");
            if s.touch != stamp {
                s.touch = stamp;
                s.out_idx = outs.len() as u32;
                outs.push((s.id, Vec::new()));
            }
            let out_idx = s.out_idx as usize;
            let end = i + len as usize;
            for ev in &events[i..end] {
                s.session.push(ev.sample, &mut outs[out_idx].1);
            }
            i = end;
        }
        outs
    }

    /// Processes one sub-batch resolving runs by id (the inline
    /// single-worker path, which has no routing pass). Consecutive
    /// events of the same stream resolve their slot once per run, not
    /// once per event.
    pub(crate) fn ingest_slice(&mut self, events: &[Event]) -> Vec<(StreamId, Vec<Sample>)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let mut outs: Vec<(StreamId, Vec<Sample>)> = Vec::new();
        let mut i = 0;
        while i < events.len() {
            let id = events[i].stream;
            let idx = *self.index.get(&id.0).expect("engine validated the id");
            let s = self.slots[idx as usize].as_mut().expect("slot is live");
            if s.touch != stamp {
                s.touch = stamp;
                s.out_idx = outs.len() as u32;
                outs.push((id, Vec::new()));
            }
            let out_idx = s.out_idx as usize;
            while i < events.len() && events[i].stream == id {
                s.session.push(events[i].sample, &mut outs[out_idx].1);
                i += 1;
            }
        }
        outs
    }

    /// Serializes one session, reusing the cached bytes when its
    /// mutation count is unchanged since the last snapshot.
    fn snapshot_of(&mut self, id: StreamId) -> (u8, Vec<u8>) {
        let idx = *self.index.get(&id.0).expect("engine tracks registrations");
        let session = &self.slots[idx as usize]
            .as_ref()
            .expect("index names a slot")
            .session;
        let count = session.mutation_count();
        if let Some((cached_count, kind, bytes)) = self.snap_cache.get(&id.0) {
            if *cached_count == count {
                return (*kind, bytes.clone());
            }
        }
        let (kind, bytes) = session.snapshot();
        self.snap_cache.insert(id.0, (count, kind, bytes.clone()));
        (kind, bytes)
    }

    /// Snapshots the listed sessions without disturbing them: the run
    /// continues bit-identically whether or not a checkpoint was taken.
    /// (`&mut` only for the snapshot cache — session state is untouched.)
    pub(crate) fn snapshot(&mut self, ids: &[StreamId]) -> Vec<(StreamId, u8, Vec<u8>)> {
        ids.iter()
            .map(|id| {
                let (kind, bytes) = self.snapshot_of(*id);
                (*id, kind, bytes)
            })
            .collect()
    }

    /// Serializes and removes the listed sessions (hibernation, or a
    /// migration to another shard). An eviction on the heels of a
    /// checkpoint reuses the cached snapshot bytes instead of
    /// serializing twice.
    pub(crate) fn evict(&mut self, ids: &[StreamId]) -> Vec<(StreamId, u8, Vec<u8>)> {
        ids.iter()
            .map(|id| {
                let session = self.remove(*id).expect("engine tracks residency");
                let (kind, bytes) = match self.snap_cache.remove(&id.0) {
                    Some((count, kind, bytes)) if count == session.mutation_count() => {
                        (kind, bytes)
                    }
                    _ => session.snapshot(),
                };
                (*id, kind, bytes)
            })
            .collect()
    }

    pub(crate) fn finish(&mut self, ids: Vec<StreamId>) -> Vec<StreamOutcome> {
        ids.into_iter()
            .map(|id| {
                self.snap_cache.remove(&id.0);
                self.remove(id)
                    .expect("engine tracks registrations")
                    .close(id)
            })
            .collect()
    }
}

/// Locks a mutex, ignoring poisoning. Safe here: every consumer wraps
/// session code in `catch_unwind` *inside* its guard scope, so a guard
/// never drops during an unwind and the flag can only be set by a panic
/// in engine bookkeeping itself — in which case the shard is about to be
/// marked poisoned anyway.
fn lock_mutex<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A recycled `(events, runs)` staging-buffer pair: routing fills one
/// per shard per epoch, consumers drain it back into the pool.
pub(crate) type BufPair = (Vec<Event>, Vec<(u32, u32)>);

/// One shard's applied result: `(seq, per-stream outputs in sub-batch
/// order)`.
type DoneEntry = (u64, Vec<(StreamId, Vec<Sample>)>);

/// One sub-batch published to a shard's ring.
pub(crate) struct Entry {
    /// Per-shard monotonic sequence number (1-based).
    pub(crate) seq: u64,
    /// This shard's slice of the batch, in wire order.
    pub(crate) events: Vec<Event>,
    /// Pre-resolved run descriptors: `(slot, len)` per run of
    /// consecutive same-stream events.
    pub(crate) runs: Vec<(u32, u32)>,
}

/// The mutable half of a shard's ring, behind its queue mutex.
struct RingQueue {
    /// Published, not-yet-applied sub-batches (bounded by the ring
    /// capacity; producers help-drain or park when full).
    pending: VecDeque<Entry>,
    /// Applied results awaiting collection, in sequence order.
    done: VecDeque<DoneEntry>,
    /// Drained event/run buffers, recycled into the staging pool.
    recycled: Vec<BufPair>,
    shutdown: bool,
}

/// What one consumption attempt on a cell achieved.
enum Consumed {
    /// Applied one entry.
    One,
    /// Nothing pending.
    Empty,
    /// Another consumer holds the shard (only reported by `try` mode).
    Busy,
    /// The shard is poisoned (now, or by this very attempt).
    Poisoned,
}

/// One shard's executor cell: ring + sessions + watermark.
pub(crate) struct ShardCell {
    q: Mutex<RingQueue>,
    /// Wakes this shard's worker when work is published.
    work_cv: Condvar,
    /// The shard's sessions. Control operations (register, adopt,
    /// snapshot, evict, finish) run on the *caller* thread under this
    /// lock — there is no command protocol. Lock order: `proc` before
    /// `q`, never the reverse.
    proc: Mutex<Shard>,
    /// Sequence number of the last fully-applied entry (the epoch
    /// watermark). Written by consumers after the result is queued.
    applied: AtomicU64,
    poisoned: AtomicBool,
    /// Telemetry: current `pending` length, mirrored at every
    /// push/pop while the queue lock is already held.
    depth: Gauge,
    /// Telemetry: highest `pending` length ever seen.
    high_water: Gauge,
}

impl ShardCell {
    fn new(depth: Gauge, high_water: Gauge) -> ShardCell {
        ShardCell {
            q: Mutex::new(RingQueue {
                pending: VecDeque::new(),
                done: VecDeque::new(),
                recycled: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            proc: Mutex::new(Shard::new()),
            applied: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            depth,
            high_water,
        }
    }

    fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Pops and applies the oldest pending entry. Holding `proc` across
    /// the pop is what keeps per-shard entry order intact with multiple
    /// consumers. `try_proc` consumers (the caller helping out) bail
    /// with [`Consumed::Busy`] instead of blocking behind the worker.
    fn consume(&self, progress: &Progress, capacity: usize, try_proc: bool) -> Consumed {
        if self.poisoned() {
            return Consumed::Poisoned;
        }
        let mut shard = if try_proc {
            match self.proc.try_lock() {
                Ok(g) => g,
                Err(TryLockError::WouldBlock) => return Consumed::Busy,
                Err(TryLockError::Poisoned(e)) => e.into_inner(),
            }
        } else {
            lock_mutex(&self.proc)
        };
        let entry = {
            let mut q = lock_mutex(&self.q);
            if q.shutdown {
                return Consumed::Empty;
            }
            let e = q.pending.pop_front();
            if e.is_some() {
                self.depth.set(q.pending.len() as u64);
            }
            e
        };
        let Some(mut entry) = entry else {
            return Consumed::Empty;
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            shard.ingest_runs(&entry.events, &entry.runs)
        }));
        match result {
            Ok(outs) => {
                // The done-push and watermark store stay inside the
                // `proc` critical section: were the guard released
                // first, a second consumer could finish a *later* entry
                // and publish its result (and watermark) ahead of this
                // one, breaking done-queue FIFO order.
                let seq = entry.seq;
                entry.events.clear();
                entry.runs.clear();
                {
                    let mut q = lock_mutex(&self.q);
                    q.done.push_back((seq, outs));
                    if q.recycled.len() < capacity {
                        q.recycled.push((entry.events, entry.runs));
                    }
                }
                self.applied.store(seq, Ordering::Release);
                drop(shard);
                progress.bump();
                Consumed::One
            }
            Err(_panic) => {
                // The shard state may be mid-mutation: poison the cell
                // and wake everyone (the engine maps this to
                // `WorkerLost`; the worker thread exits). The panic
                // payload is discarded (its message already went through
                // the panic hook).
                self.poisoned.store(true, Ordering::Release);
                self.work_cv.notify_all();
                progress.bump();
                Consumed::Poisoned
            }
        }
    }
}

/// The engine's wait channel: consumers bump the generation after every
/// completion (or poisoning), waiters re-check their condition whenever
/// it moves. The generation is read under the mutex *before* the
/// condition, so a completion between the check and the wait cannot be
/// missed.
struct Progress {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Progress {
    fn bump(&self) {
        let mut g = lock_mutex(&self.gen);
        *g = g.wrapping_add(1);
        self.cv.notify_all();
    }

    fn snapshot(&self) -> u64 {
        *lock_mutex(&self.gen)
    }

    /// Blocks until the generation moves past `seen` (with a safety-net
    /// timeout so a logic bug degrades to polling, never a hang).
    fn wait_past(&self, seen: u64) {
        let mut g = lock_mutex(&self.gen);
        while *g == seen {
            let (guard, timeout) = self
                .cv
                .wait_timeout(g, std::time::Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
            if timeout.timed_out() {
                return;
            }
        }
    }
}

/// The multi-worker executor: one [`ShardCell`] and one drainer thread
/// per shard, plus the caller as an opportunistic extra consumer.
pub(crate) struct Ring {
    cells: Vec<Arc<ShardCell>>,
    progress: Arc<Progress>,
    threads: Vec<JoinHandle<()>>,
    capacity: usize,
    /// Whether publishes wake the shard's worker immediately. On a
    /// single-core host a wakeup cannot add throughput — the caller
    /// help-drains everything anyway — so publishes stay silent and the
    /// workers only wake for shutdown. On a multicore host workers wake
    /// per publish and drain in parallel with the caller's routing.
    eager_wake: bool,
}

impl Ring {
    pub(crate) fn new(
        shards: usize,
        capacity: usize,
        eager_wake: bool,
        depth: Vec<Gauge>,
        high_water: Vec<Gauge>,
    ) -> Ring {
        let capacity = capacity.max(1);
        debug_assert_eq!(depth.len(), shards);
        debug_assert_eq!(high_water.len(), shards);
        let progress = Arc::new(Progress {
            gen: Mutex::new(0),
            cv: Condvar::new(),
        });
        let cells: Vec<Arc<ShardCell>> = depth
            .into_iter()
            .zip(high_water)
            .map(|(d, hw)| Arc::new(ShardCell::new(d, hw)))
            .collect();
        let threads = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let cell = Arc::clone(cell);
                let progress = Arc::clone(&progress);
                std::thread::Builder::new()
                    .name(format!("wms-engine-shard-{i}"))
                    .spawn(move || worker_loop(cell, progress, capacity))
                    .expect("spawn shard worker")
            })
            .collect();
        Ring {
            cells,
            progress,
            threads,
            capacity,
            eager_wake,
        }
    }

    /// Whether `shard` is poisoned.
    pub(crate) fn is_poisoned(&self, shard: usize) -> bool {
        self.cells[shard].poisoned()
    }

    /// Runs a control operation against a shard's sessions on the
    /// caller thread, with the same panic containment as ingest.
    /// `Err(())` means the shard is (now) poisoned.
    pub(crate) fn shard_op<T>(
        &self,
        shard: usize,
        op: impl FnOnce(&mut Shard) -> T,
    ) -> Result<T, ()> {
        let cell = &self.cells[shard];
        if cell.poisoned() {
            return Err(());
        }
        let mut guard = lock_mutex(&cell.proc);
        match catch_unwind(AssertUnwindSafe(|| op(&mut guard))) {
            Ok(v) => Ok(v),
            Err(_panic) => {
                cell.poisoned.store(true, Ordering::Release);
                cell.work_cv.notify_all();
                self.progress.bump();
                Err(())
            }
        }
    }

    /// Publishes one entry to `shard`'s ring. Blocks only when the ring
    /// is full — and even then drains an entry itself before parking, so
    /// a full ring converts backpressure into useful work. `Err(())`
    /// maps to `WorkerLost`.
    pub(crate) fn publish(&self, shard: usize, entry: Entry) -> Result<(), ()> {
        let cell = &self.cells[shard];
        let mut entry = Some(entry);
        loop {
            if cell.poisoned() {
                return Err(());
            }
            let seen = self.progress.snapshot();
            {
                let mut q = lock_mutex(&cell.q);
                if q.pending.len() < self.capacity {
                    q.pending
                        .push_back(entry.take().expect("publish retries keep the entry"));
                    let depth = q.pending.len() as u64;
                    cell.depth.set(depth);
                    cell.high_water.record_max(depth);
                    drop(q);
                    if self.eager_wake {
                        cell.work_cv.notify_one();
                    }
                    return Ok(());
                }
            }
            match cell.consume(&self.progress, self.capacity, true) {
                Consumed::One | Consumed::Empty => {}
                Consumed::Poisoned => return Err(()),
                Consumed::Busy => self.progress.wait_past(seen),
            }
        }
    }

    /// Blocks until `shard`'s applied watermark reaches `seq`, help-
    /// draining the ring while it waits. `Err(())` maps to `WorkerLost`.
    pub(crate) fn wait_applied(&self, shard: usize, seq: u64) -> Result<(), ()> {
        let cell = &self.cells[shard];
        loop {
            if cell.applied.load(Ordering::Acquire) >= seq {
                return Ok(());
            }
            if cell.poisoned() {
                return Err(());
            }
            let seen = self.progress.snapshot();
            match cell.consume(&self.progress, self.capacity, true) {
                Consumed::One => {}
                Consumed::Poisoned => return Err(()),
                Consumed::Empty | Consumed::Busy => {
                    // The watermark may have moved between the check and
                    // the consume; re-check before parking.
                    if cell.applied.load(Ordering::Acquire) >= seq || cell.poisoned() {
                        continue;
                    }
                    self.progress.wait_past(seen);
                }
            }
        }
    }

    /// Non-blocking watermark check.
    pub(crate) fn applied(&self, shard: usize) -> u64 {
        self.cells[shard].applied.load(Ordering::Acquire)
    }

    /// Pops the oldest completed result of `shard` (the caller has
    /// already waited out the watermark, so it must exist), returning
    /// recycled buffers into `pool`.
    pub(crate) fn take_done(&self, shard: usize, pool: &mut Vec<BufPair>) -> DoneEntry {
        let mut q = lock_mutex(&self.cells[shard].q);
        pool.append(&mut q.recycled);
        q.done.pop_front().expect("watermark covered this entry")
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        for cell in &self.cells {
            let mut q = lock_mutex(&cell.q);
            q.shutdown = true;
            drop(q);
            cell.work_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Worker loop: drains its shard's ring until shutdown or poisoning.
fn worker_loop(cell: Arc<ShardCell>, progress: Arc<Progress>, capacity: usize) {
    loop {
        {
            let mut q = lock_mutex(&cell.q);
            loop {
                if q.shutdown || cell.poisoned() {
                    return;
                }
                if !q.pending.is_empty() {
                    break;
                }
                q = cell.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
        loop {
            match cell.consume(&progress, capacity, false) {
                Consumed::One => {}
                Consumed::Empty | Consumed::Busy => break,
                Consumed::Poisoned => return,
            }
        }
    }
}
