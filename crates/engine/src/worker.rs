//! The shard executor's worker threads.
//!
//! One worker exclusively owns one shard's sessions, so processing takes
//! no locks: the engine sends a command, the worker mutates its local
//! `HashMap` of sessions, and replies on its dedicated channel. The
//! engine enforces the one-outstanding-request discipline (`request`
//! then `wait`), which doubles as the per-batch barrier.

use crate::{StreamId, StreamOutcome, StreamSpec};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use wms_core::{DetectSession, EmbedSession};
use wms_stream::{Event, Sample};

/// Engine → worker commands.
pub(crate) enum Cmd {
    /// Adopt a new session.
    Register(StreamId, StreamSpec),
    /// Process this shard's slice of an ingest batch (stream order
    /// within the slice is the wire order).
    Ingest(Vec<Event>),
    /// Flush the listed sessions (engine sends them in registration
    /// order) and reply with their outcomes.
    Finish(Vec<StreamId>),
    /// Exit the worker loop.
    Shutdown,
}

/// Worker → engine replies (one per non-shutdown command).
pub(crate) enum Reply {
    Registered,
    /// Per touched stream, in first-touch order of the shard's slice:
    /// the samples its session emitted. `batch` returns the drained
    /// event buffer so the engine can reuse its capacity next ingest.
    Ingested {
        outs: Vec<(StreamId, Vec<Sample>)>,
        batch: Vec<Event>,
    },
    Finished(Vec<StreamOutcome>),
}

/// One live session: its spec (shared config) plus per-stream state.
enum Session {
    Embed(StreamSpec, EmbedSession),
    Detect(StreamSpec, DetectSession),
}

impl Session {
    fn open(spec: StreamSpec) -> Session {
        match &spec {
            StreamSpec::Embed(cfg) => {
                let sess = cfg.new_session();
                Session::Embed(spec, sess)
            }
            StreamSpec::Detect(cfg) => {
                let sess = cfg.new_session();
                Session::Detect(spec, sess)
            }
        }
    }

    fn push(&mut self, s: Sample, out: &mut Vec<Sample>) {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), sess) => cfg.push_into(sess, s, out),
            Session::Detect(StreamSpec::Detect(cfg), sess) => cfg.push(sess, s),
            _ => unreachable!("spec/session kind mismatch"),
        }
    }

    fn close(self, stream: StreamId) -> StreamOutcome {
        match self {
            Session::Embed(StreamSpec::Embed(cfg), mut sess) => {
                let mut tail = Vec::new();
                cfg.finish_into(&mut sess, &mut tail);
                StreamOutcome {
                    stream,
                    tail,
                    embed_stats: Some(*sess.stats()),
                    report: None,
                }
            }
            Session::Detect(StreamSpec::Detect(cfg), mut sess) => StreamOutcome {
                stream,
                tail: Vec::new(),
                embed_stats: None,
                report: Some(cfg.finish(&mut sess)),
            },
            _ => unreachable!("spec/session kind mismatch"),
        }
    }
}

/// The engine's side of one worker thread.
pub(crate) struct WorkerHandle {
    tx: Sender<Cmd>,
    rx: Receiver<Reply>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns the worker for shard `index`.
    pub(crate) fn spawn(index: usize) -> WorkerHandle {
        let (tx, cmd_rx) = channel::<Cmd>();
        let (reply_tx, rx) = channel::<Reply>();
        let join = std::thread::Builder::new()
            .name(format!("wms-engine-shard-{index}"))
            .spawn(move || run(cmd_rx, reply_tx))
            .expect("spawn shard worker");
        WorkerHandle {
            tx,
            rx,
            join: Some(join),
        }
    }

    /// Sends one command (must be followed by `wait` unless Shutdown).
    pub(crate) fn request(&self, cmd: Cmd) {
        self.tx.send(cmd).expect("shard worker alive");
    }

    /// Blocks for the reply to the last `request`.
    pub(crate) fn wait(&mut self) -> Reply {
        self.rx.recv().expect("shard worker alive")
    }

    /// Asks the thread to exit and joins it (idempotent).
    pub(crate) fn shutdown(&mut self) {
        if let Some(join) = self.join.take() {
            // Ignore send failure: the worker already exited (panic).
            let _ = self.tx.send(Cmd::Shutdown);
            let _ = join.join();
        }
    }
}

/// Worker loop: owns this shard's sessions until shutdown.
fn run(cmds: Receiver<Cmd>, replies: Sender<Reply>) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    // first-touch bookkeeping reused across Ingest commands.
    let mut touch_order: Vec<StreamId> = Vec::new();
    let mut slot_of: HashMap<u64, usize> = HashMap::new();
    while let Ok(cmd) = cmds.recv() {
        let reply = match cmd {
            Cmd::Register(id, spec) => {
                sessions.insert(id.0, Session::open(spec));
                Reply::Registered
            }
            Cmd::Ingest(mut events) => {
                touch_order.clear();
                slot_of.clear();
                let mut outs: Vec<Vec<Sample>> = Vec::new();
                for ev in events.drain(..) {
                    let slot = *slot_of.entry(ev.stream.0).or_insert_with(|| {
                        touch_order.push(ev.stream);
                        outs.push(Vec::new());
                        outs.len() - 1
                    });
                    sessions
                        .get_mut(&ev.stream.0)
                        .expect("engine validated the id")
                        .push(ev.sample, &mut outs[slot]);
                }
                Reply::Ingested {
                    outs: touch_order.iter().copied().zip(outs).collect(),
                    batch: events,
                }
            }
            Cmd::Finish(ids) => Reply::Finished(
                ids.into_iter()
                    .map(|id| {
                        sessions
                            .remove(&id.0)
                            .expect("engine tracks registrations")
                            .close(id)
                    })
                    .collect(),
            ),
            Cmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            break; // engine dropped mid-flight
        }
    }
}
