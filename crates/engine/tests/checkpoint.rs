//! Checkpoint/restore and worker-loss behavior.
//!
//! The contract under test:
//!
//! 1. **Kill/restore invisibility** — an engine checkpointed at an
//!    arbitrary batch boundary, dropped ("killed"), and restored — even
//!    onto a *different* worker count — produces per-stream outputs and
//!    final `StreamOutcome`s bit-identical to an engine that ran
//!    uninterrupted (proven for fixed fixtures and by a proptest over
//!    random interleavings, batch sizes, worker counts and kill points).
//! 2. **Fingerprint rejection** — restoring against a scheme with a
//!    different key (or τ/γ/α) fails with a typed
//!    `CheckpointError::FingerprintMismatch`, never a silent desync.
//! 3. **Worker-loss containment** — a panic inside a session surfaces as
//!    `EngineError::WorkerLost` on the caller thread (for both the
//!    inline single-worker backend and the threaded one), the engine is
//!    poisoned but remains safely droppable, and subsequent calls keep
//!    returning the typed error.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{DetectConfig, EmbedConfig, Scheme, Watermark, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{
    Checkpoint, CheckpointError, Engine, EngineConfig, EngineError, Event, MemoryBudget, StreamId,
    StreamSpec,
};
use wms_stream::{samples_from_values, Sample};

fn params() -> WmParams {
    WmParams {
        window: 64,
        degree: 2,
        radius: 0.01,
        max_subset: 4,
        label_len: 3,
        label_stride: 1,
        min_active: Some(4),
        ..WmParams::default()
    }
}

fn scheme(key: u64) -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(key))).unwrap()
}

fn embed_cfg(key: u64) -> Arc<EmbedConfig> {
    Arc::new(
        EmbedConfig::new(
            scheme(key),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    )
}

fn detect_cfg(key: u64) -> Arc<DetectConfig> {
    Arc::new(DetectConfig::new(scheme(key), Arc::new(MultiHashEncoder), 1, 1.0).unwrap())
}

fn wave(n: usize, id: u64) -> Vec<Sample> {
    let period = 19.0 + (id % 7) as f64 * 4.0;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 + id as f64;
            0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
        })
        .collect();
    samples_from_values(&values)
}

/// Splitmix64 — deterministic interleaving choices inside property tests.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomly interleaves the streams (per-stream order preserved).
fn interleave(streams: &[(StreamId, Vec<Sample>)], seed: u64) -> Vec<Event> {
    let mut rng = seed;
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut events = Vec::with_capacity(total);
    while events.len() < total {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].1.len())
            .collect();
        let pick = live[(splitmix(&mut rng) % live.len() as u64) as usize];
        let (id, samples) = &streams[pick];
        events.push(Event::new(*id, samples[cursors[pick]]));
        cursors[pick] += 1;
    }
    events
}

/// Per-stream emissions plus final outcome (tail + stats + report).
type RunResult = HashMap<u64, (Vec<Sample>, Vec<Sample>, Option<wms_core::EmbedStats>)>;

fn collect_outputs(collected: &mut HashMap<u64, Vec<Sample>>, outs: Vec<wms_engine::Output>) {
    for o in outs {
        collected.entry(o.stream.0).or_default().extend(o.samples);
    }
}

/// Runs embed + detect streams uninterrupted.
fn run_uninterrupted(
    streams: &[(StreamId, StreamSpec)],
    events: &[Event],
    workers: usize,
    batch: usize,
) -> RunResult {
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    for (id, spec) in streams {
        engine.register(*id, spec.clone()).unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(batch.max(1)) {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
    }
    finishes(engine, collected)
}

/// Runs to batch `kill_at`, checkpoints, drops the engine ("crash"),
/// restores onto `workers_after` workers and completes the run.
fn run_killed_and_restored(
    streams: &[(StreamId, StreamSpec)],
    events: &[Event],
    workers_before: usize,
    workers_after: usize,
    batch: usize,
    kill_at: usize,
) -> RunResult {
    run_killed_and_restored_cfg(
        streams,
        events,
        EngineConfig::with_workers(workers_before),
        EngineConfig::with_workers(workers_after),
        batch,
        kill_at,
    )
}

/// [`run_killed_and_restored`] with full engine configs, so the kill and
/// the restore can each carry (or drop) a residency budget.
fn run_killed_and_restored_cfg(
    streams: &[(StreamId, StreamSpec)],
    events: &[Event],
    cfg_before: EngineConfig,
    cfg_after: EngineConfig,
    batch: usize,
    kill_at: usize,
) -> RunResult {
    let batch = batch.max(1);
    let mut engine = Engine::new(cfg_before).unwrap();
    for (id, spec) in streams {
        engine.register(*id, spec.clone()).unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    let chunks: Vec<&[Event]> = events.chunks(batch).collect();
    let kill_at = kill_at.min(chunks.len());
    for chunk in &chunks[..kill_at] {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
    }
    let ck = engine.checkpoint().unwrap();
    // Serialize + reparse: the restored engine sees only the bytes a
    // real process would read back from disk.
    let bytes = ck.to_bytes();
    drop(engine); // the "kill"
    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    let by_id: HashMap<u64, StreamSpec> = streams
        .iter()
        .map(|(id, spec)| (id.0, spec.clone()))
        .collect();
    let mut engine = Engine::restore(cfg_after, &ck, |id| by_id.get(&id.0).cloned()).unwrap();
    for chunk in &chunks[kill_at..] {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
    }
    finishes(engine, collected)
}

fn finishes(engine: Engine, mut collected: HashMap<u64, Vec<Sample>>) -> RunResult {
    let mut result = RunResult::new();
    for outcome in engine.finish().unwrap() {
        let emitted = collected.remove(&outcome.stream.0).unwrap_or_default();
        result.insert(
            outcome.stream.0,
            (emitted, outcome.tail, outcome.embed_stats),
        );
    }
    result
}

fn assert_runs_identical(got: &RunResult, want: &RunResult) {
    assert_eq!(got.len(), want.len());
    for (id, (w_emit, w_tail, w_stats)) in want {
        let (g_emit, g_tail, g_stats) = &got[id];
        for (which, g, w) in [("emitted", g_emit, w_emit), ("tail", g_tail, w_tail)] {
            assert_eq!(g.len(), w.len(), "stream {id} {which}: length");
            for (i, (a, b)) in g.iter().zip(w).enumerate() {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "stream {id} {which} sample {i}: {} vs {}",
                    a.value,
                    b.value
                );
                assert_eq!(a.index, b.index, "stream {id} {which} sample {i}");
                assert_eq!(a.span, b.span, "stream {id} {which} sample {i}");
            }
        }
        assert_eq!(g_stats, w_stats, "stream {id} stats");
    }
}

fn mixed_streams(key: u64) -> Vec<(StreamId, StreamSpec)> {
    // Embed streams plus one detect stream: the checkpoint covers both
    // session kinds in one engine.
    let e = embed_cfg(key);
    let d = detect_cfg(key);
    vec![
        (StreamId(3), StreamSpec::Embed(Arc::clone(&e))),
        (StreamId(17), StreamSpec::Embed(Arc::clone(&e))),
        (StreamId(4), StreamSpec::Detect(Arc::clone(&d))),
        (StreamId(99), StreamSpec::Embed(e)),
    ]
}

#[test]
fn kill_restore_bit_identical_fixed_fixture() {
    let streams = mixed_streams(42);
    let data: Vec<(StreamId, Vec<Sample>)> = streams
        .iter()
        .map(|(id, _)| (*id, wave(700, id.0)))
        .collect();
    let events = interleave(&data, 0xA5A5);
    for (workers_before, workers_after) in [(1, 1), (1, 3), (2, 2), (3, 1), (4, 2)] {
        for batch in [13usize, 256] {
            let want = run_uninterrupted(&streams, &events, workers_after, batch);
            let n_batches = events.len().div_ceil(batch);
            for kill_at in [0, 1, n_batches / 2, n_batches] {
                let got = run_killed_and_restored(
                    &streams,
                    &events,
                    workers_before,
                    workers_after,
                    batch,
                    kill_at,
                );
                assert_runs_identical(&got, &want);
            }
        }
    }
}

proptest! {
    /// The ISSUE's acceptance proptest: kill/restore at an arbitrary
    /// batch boundary across worker counts and batch sizes.
    #[test]
    fn kill_restore_bit_identical_random(
        k in 2usize..5,
        n in 150usize..400,
        seed in any::<u64>(),
    ) {
        let specs = mixed_streams(1234);
        let streams: Vec<(StreamId, StreamSpec)> =
            specs.into_iter().take(k).collect();
        let data: Vec<(StreamId, Vec<Sample>)> = streams
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, wave(n + i * 17, id.0)))
            .collect();
        let events = interleave(&data, seed);
        let batch = 1 + (seed % 97) as usize;
        let workers_before = 1 + (seed % 3) as usize;
        let workers_after = 1 + ((seed >> 8) % 3) as usize;
        let n_batches = events.len().div_ceil(batch);
        let kill_at = (seed >> 16) as usize % (n_batches + 1);
        let want = run_uninterrupted(&streams, &events, workers_after, batch);
        let got = run_killed_and_restored(
            &streams, &events, workers_before, workers_after, batch, kill_at,
        );
        assert_runs_identical(&got, &want);
    }
}

#[test]
fn restore_with_mismatched_fingerprint_is_rejected() {
    let cfg = embed_cfg(42);
    let mut engine = Engine::new(EngineConfig::with_workers(2)).unwrap();
    engine
        .register(StreamId(1), StreamSpec::Embed(Arc::clone(&cfg)))
        .unwrap();
    let s = wave(300, 1);
    let events: Vec<Event> = s.iter().map(|&x| Event::new(StreamId(1), x)).collect();
    engine.ingest(&events).unwrap();
    let ck = engine.checkpoint().unwrap();

    // Same parameters, different key: typed rejection, not silent desync.
    let wrong = embed_cfg(43);
    let err = Engine::restore(EngineConfig::with_workers(2), &ck, |_| {
        Some(StreamSpec::Embed(Arc::clone(&wrong)))
    })
    .err()
    .unwrap();
    assert!(
        matches!(
            err,
            EngineError::Checkpoint(CheckpointError::FingerprintMismatch { expected, found })
                if expected != found
        ),
        "{err:?}"
    );

    // A detect spec for an embed snapshot: kind mismatch.
    let err = Engine::restore(EngineConfig::with_workers(1), &ck, |_| {
        Some(StreamSpec::Detect(detect_cfg(42)))
    })
    .err()
    .unwrap();
    assert!(
        matches!(
            err,
            EngineError::Checkpoint(CheckpointError::WrongKind { .. })
        ),
        "{err:?}"
    );

    // No spec at all: typed MissingSpec.
    let err = Engine::restore(EngineConfig::with_workers(1), &ck, |_| None)
        .err()
        .unwrap();
    assert_eq!(err, EngineError::MissingSpec(StreamId(1)));
}

/// The worker-panic regression test: a panicking session yields
/// `EngineError::WorkerLost`, not a caller-thread panic, and dropping
/// the engine afterwards does not abort. Covers the inline (1 worker)
/// and threaded (2+) backends.
#[test]
fn worker_panic_surfaces_as_worker_lost() {
    for workers in [1usize, 2, 4] {
        let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
        engine
            .register(StreamId(1), StreamSpec::Embed(embed_cfg(7)))
            .unwrap();
        engine
            .register(StreamId(2), StreamSpec::FaultInject { panic_after: 5 })
            .unwrap();
        let healthy: Vec<Event> = wave(20, 1)
            .iter()
            .map(|&s| Event::new(StreamId(1), s))
            .collect();
        let poison: Vec<Event> = wave(20, 2)
            .iter()
            .map(|&s| Event::new(StreamId(2), s))
            .collect();
        // Healthy traffic first: fine.
        engine.ingest(&healthy[..4]).unwrap();
        // The faulty stream blows up inside its shard.
        let err = engine.ingest(&poison).err().unwrap();
        let EngineError::WorkerLost { shard } = err else {
            panic!("expected WorkerLost, got {err:?}");
        };
        assert!(shard < workers, "shard index in range ({shard})");
        // The engine is poisoned: every subsequent operation reports the
        // loss instead of hanging or panicking.
        assert_eq!(
            engine.ingest(&healthy[4..8]).err().unwrap(),
            EngineError::WorkerLost { shard }
        );
        assert!(matches!(
            engine.checkpoint().err().unwrap(),
            EngineError::WorkerLost { .. }
        ));
        assert!(matches!(
            engine
                .register(StreamId(3), StreamSpec::Embed(embed_cfg(7)))
                .err()
                .unwrap(),
            EngineError::WorkerLost { .. }
        ));
        // Dropping (or finishing) the poisoned engine must not panic or
        // abort — this line IS the regression test for the old
        // `expect("shard worker alive")` double-panic in Drop.
        let err = engine.finish().err().unwrap();
        assert_eq!(err, EngineError::WorkerLost { shard });
    }
}

#[test]
fn checkpoint_taken_mid_run_does_not_disturb_the_run() {
    // A run that checkpoints every batch produces the same bytes as one
    // that never checkpoints: snapshotting is read-only.
    let streams = mixed_streams(5);
    let data: Vec<(StreamId, Vec<Sample>)> = streams
        .iter()
        .map(|(id, _)| (*id, wave(500, id.0)))
        .collect();
    let events = interleave(&data, 77);
    let want = run_uninterrupted(&streams, &events, 2, 64);

    let mut engine = Engine::new(EngineConfig::with_workers(2)).unwrap();
    for (id, spec) in &streams {
        engine.register(*id, spec.clone()).unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(64) {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
        let _ = engine.checkpoint().unwrap();
    }
    let got = finishes(engine, collected);
    assert_runs_identical(&got, &want);
}

#[test]
fn detect_reports_survive_kill_restore() {
    // End-to-end: embed a mark, detect through a killed/restored engine,
    // and require the report (the court evidence) to match exactly.
    let (marked, stats) = wms_core::Embedder::embed_stream(
        scheme(9),
        Arc::new(MultiHashEncoder),
        Watermark::single(true),
        &wave(1500, 8),
    )
    .unwrap();
    assert!(stats.embedded > 0);
    let events: Vec<Event> = marked.iter().map(|&s| Event::new(StreamId(8), s)).collect();
    let d = detect_cfg(9);

    let reference = {
        let mut e = Engine::new(EngineConfig::with_workers(1)).unwrap();
        e.register(StreamId(8), StreamSpec::Detect(Arc::clone(&d)))
            .unwrap();
        for chunk in events.chunks(128) {
            e.ingest(chunk).unwrap();
        }
        e.finish().unwrap().remove(0).report.unwrap()
    };
    assert!(reference.bias() > 0, "fixture must find the mark");

    let mut e = Engine::new(EngineConfig::with_workers(2)).unwrap();
    e.register(StreamId(8), StreamSpec::Detect(Arc::clone(&d)))
        .unwrap();
    let chunks: Vec<&[Event]> = events.chunks(128).collect();
    for chunk in &chunks[..5] {
        e.ingest(chunk).unwrap();
    }
    let bytes = e.checkpoint().unwrap().to_bytes();
    drop(e);
    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    let mut e = Engine::restore(EngineConfig::with_workers(1), &ck, |_| {
        Some(StreamSpec::Detect(Arc::clone(&d)))
    })
    .unwrap();
    for chunk in &chunks[5..] {
        e.ingest(chunk).unwrap();
    }
    let report = e.finish().unwrap().remove(0).report.unwrap();
    assert_eq!(report, reference);
}

/// A unique temp spill path, removed before and after use.
fn temp_spill(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("wms-ck-spill-{}-{tag}.log", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn checkpoint_with_hibernated_sessions_restores_identically() {
    // Checkpoints taken while most of the registry is hibernated must
    // restore to the same bytes as an unbudgeted, uninterrupted run —
    // whether the restored engine is budgeted or not, in every
    // combination (budget dropped, kept, or newly applied on restore).
    let streams = mixed_streams(42);
    let data: Vec<(StreamId, Vec<Sample>)> = streams
        .iter()
        .map(|(id, _)| (*id, wave(600, id.0)))
        .collect();
    let events = interleave(&data, 0x51);
    let want = run_uninterrupted(&streams, &events, 2, 64);
    let budgeted = |w: usize| EngineConfig::with_workers(w).with_budget(MemoryBudget::resident(2));
    let cases = [
        (budgeted(2), EngineConfig::with_workers(2)),
        (budgeted(1), budgeted(3)),
        (EngineConfig::with_workers(3), budgeted(2)),
    ];
    for (before, after) in &cases {
        for kill_at in [1usize, 4] {
            let got = run_killed_and_restored_cfg(
                &streams,
                &events,
                before.clone(),
                after.clone(),
                64,
                kill_at,
            );
            assert_runs_identical(&got, &want);
        }
    }
}

#[test]
fn restore_under_budget_parks_cold_sessions_in_the_spill() {
    // Restoring a 6-stream checkpoint into a budget of 2 must not
    // materialize all 6 sessions even transiently: the cold ones go
    // straight from checkpoint bytes to the spill store.
    let cfg = embed_cfg(3);
    let mut engine = Engine::new(EngineConfig::with_workers(2)).unwrap();
    for id in 0..6u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(&cfg)))
            .unwrap();
    }
    let events: Vec<Event> = interleave(
        &(0..6u64)
            .map(|id| (StreamId(id), wave(80, id)))
            .collect::<Vec<_>>(),
        9,
    );
    engine.ingest(&events).unwrap();
    let bytes = engine.checkpoint().unwrap().to_bytes();
    drop(engine);

    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    let mut engine = Engine::restore(
        EngineConfig::with_workers(2).with_budget(MemoryBudget::resident(2)),
        &ck,
        |_| Some(StreamSpec::Embed(Arc::clone(&cfg))),
    )
    .unwrap();
    assert!(
        engine.resident_streams() <= 2,
        "{}",
        engine.resident_streams()
    );
    assert_eq!(engine.resident_streams() + engine.spilled_streams(), 6);
    assert_eq!(engine.spill_stats().records, engine.spilled_streams());
    // Touching a parked stream re-adopts (and checksum-validates) it.
    let spilled = (0..6u64)
        .find(|&id| engine.is_resident(StreamId(id)) == Some(false))
        .expect("some stream is parked");
    let s = wave(3, spilled);
    let touch: Vec<Event> = s
        .iter()
        .map(|&x| Event::new(StreamId(spilled), x))
        .collect();
    engine.ingest(&touch).unwrap();
    assert_eq!(engine.is_resident(StreamId(spilled)), Some(true));
    engine.finish().unwrap();
}

#[test]
fn checkpoint_is_self_contained_even_with_a_file_spill() {
    // The spill file is scratch, not durable state: a checkpoint taken
    // while sessions sit in it must restore after the file is deleted.
    let path = temp_spill("self-contained");
    let streams = mixed_streams(8);
    let data: Vec<(StreamId, Vec<Sample>)> = streams
        .iter()
        .map(|(id, _)| (*id, wave(500, id.0)))
        .collect();
    let events = interleave(&data, 0xAB);
    let want = run_uninterrupted(&streams, &events, 2, 50);

    let cfg_before = EngineConfig::with_workers(2)
        .with_budget(MemoryBudget::resident(1).with_spill_file(path.clone()));
    let mut engine = Engine::new(cfg_before).unwrap();
    for (id, spec) in &streams {
        engine.register(*id, spec.clone()).unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    let chunks: Vec<&[Event]> = events.chunks(50).collect();
    for chunk in &chunks[..6] {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
    }
    assert!(engine.spilled_streams() > 0, "fixture must be hibernating");
    let bytes = engine.checkpoint().unwrap().to_bytes();
    drop(engine);
    std::fs::remove_file(&path).unwrap(); // the spill is gone for good

    let by_id: HashMap<u64, StreamSpec> = streams
        .iter()
        .map(|(id, spec)| (id.0, spec.clone()))
        .collect();
    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    let mut engine = Engine::restore(EngineConfig::with_workers(2), &ck, |id| {
        by_id.get(&id.0).cloned()
    })
    .unwrap();
    for chunk in &chunks[6..] {
        collect_outputs(&mut collected, engine.ingest(chunk).unwrap());
    }
    let got = finishes(engine, collected);
    assert_runs_identical(&got, &want);
}

#[test]
fn corrupt_spill_record_surfaces_checksum_mismatch_and_poisons() {
    use std::io::{Read as _, Seek, SeekFrom, Write as _};
    let path = temp_spill("corrupt");
    let cfg = EngineConfig::with_workers(2)
        .with_budget(MemoryBudget::resident(0).with_spill_file(path.clone()));
    let mut engine = Engine::new(cfg).unwrap();
    engine
        .register(StreamId(1), StreamSpec::Embed(embed_cfg(7)))
        .unwrap();
    let s = wave(200, 1);
    let events: Vec<Event> = s.iter().map(|&x| Event::new(StreamId(1), x)).collect();
    engine.ingest(&events).unwrap();
    assert!(engine.hibernate(StreamId(1)).unwrap());

    // Flip one payload byte at rest, through a second handle — bit rot.
    {
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        f.seek(SeekFrom::Start(30)).unwrap(); // record payload starts at 21
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(30)).unwrap();
        f.write_all(&[b[0] ^ 0x40]).unwrap();
        f.sync_all().unwrap();
    }

    // A checkpoint must read the hibernated record — and refuse it.
    let err = engine.checkpoint().err().unwrap();
    assert!(
        matches!(
            err,
            EngineError::Checkpoint(CheckpointError::ChecksumMismatch { expected, found })
                if expected != found
        ),
        "{err:?}"
    );
    // The session's only copy was bad: the engine is poisoned, not limping.
    assert_eq!(engine.ingest(&events[..1]).err().unwrap(), err);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_spill_record_surfaces_typed_error() {
    let path = temp_spill("truncated");
    let cfg = EngineConfig::with_workers(1)
        .with_budget(MemoryBudget::resident(0).with_spill_file(path.clone()));
    let mut engine = Engine::new(cfg).unwrap();
    engine
        .register(StreamId(1), StreamSpec::Embed(embed_cfg(7)))
        .unwrap();
    let s = wave(200, 1);
    let events: Vec<Event> = s.iter().map(|&x| Event::new(StreamId(1), x)).collect();
    engine.ingest(&events).unwrap();
    assert!(engine.hibernate(StreamId(1)).unwrap());

    // Chop the record mid-payload (an external actor, not a torn append).
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(40).unwrap();
    f.sync_all().unwrap();
    drop(f);

    // Touching the stream tries to re-adopt it and hits the truncation.
    let err = engine.ingest(&events[..1]).err().unwrap();
    assert_eq!(
        err,
        EngineError::Checkpoint(CheckpointError::Truncated),
        "typed truncation, not a panic or a silent skip"
    );
    assert_eq!(engine.checkpoint().err().unwrap(), err, "poisoned");
    let _ = std::fs::remove_file(&path);
}
