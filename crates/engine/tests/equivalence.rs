//! Multi-stream ↔ single-stream equivalence.
//!
//! The engine's contract is that multiplexing changes *nothing* about
//! any individual stream: whatever interleaving, batch size and worker
//! count feed the engine, each stream's output is bit-identical to
//! running that stream alone through the PR 2 single-stream pipeline
//! (`Embedder::embed_stream` / `Detector::detect_stream`). These tests
//! prove it for fixed fixtures and — via the proptest shim — for random
//! interleavings of K streams, for both embed and detect.
//!
//! The hibernation half of the wall extends the same contract to the
//! session registry: an engine that evicts sessions to a spill store —
//! under a [`MemoryBudget`], by explicit [`Engine::hibernate`] calls at
//! arbitrary points, to memory or to a real file on disk — must stay
//! byte-identical to the never-evicting engine and therefore to the
//! single-stream pipeline. Serialize → spill → checksum → restore is
//! exercised mid-run, across batch boundaries, worker counts 1/2/4 and
//! both production encoders.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wms_core::encoding::initial::InitialEncoder;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{
    DetectConfig, Detector, EmbedConfig, Embedder, Scheme, SubsetEncoder, TransformHint, Watermark,
    WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{
    Engine, EngineConfig, EngineError, Event, MemoryBudget, RebalanceConfig, StreamId, StreamSpec,
};
use wms_stream::{samples_from_values, Sample};

fn params() -> WmParams {
    WmParams {
        window: 64,
        degree: 2,
        radius: 0.01,
        max_subset: 4,
        label_len: 3,
        label_stride: 1,
        min_active: Some(4),
        ..WmParams::default()
    }
}

fn scheme(key: u64) -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(key))).unwrap()
}

/// A per-stream waveform: phase and period vary with the id so streams
/// are genuinely different.
fn wave(n: usize, id: u64) -> Vec<Sample> {
    let period = 19.0 + (id % 7) as f64 * 4.0;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 + id as f64;
            0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
        })
        .collect();
    samples_from_values(&values)
}

/// Splitmix64 — deterministic interleaving choices inside property tests.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomly interleaves the streams (per-stream order preserved).
fn interleave(streams: &[(StreamId, Vec<Sample>)], seed: u64) -> Vec<Event> {
    let mut rng = seed;
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut events = Vec::with_capacity(total);
    while events.len() < total {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].1.len())
            .collect();
        let pick = live[(splitmix(&mut rng) % live.len() as u64) as usize];
        let (id, samples) = &streams[pick];
        events.push(Event::new(*id, samples[cursors[pick]]));
        cursors[pick] += 1;
    }
    events
}

/// Runs the engine in embed mode over the given interleaving and returns
/// each stream's full output (ingest emissions + finish tail) and stats.
fn engine_embed(
    streams: &[(StreamId, Vec<Sample>)],
    events: &[Event],
    workers: usize,
    batch: usize,
    key: u64,
) -> HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)> {
    let cfg = Arc::new(
        EmbedConfig::new(
            scheme(key),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    );
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    for (id, _) in streams {
        engine
            .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
            .unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(batch.max(1)) {
        for out in engine.ingest(chunk).unwrap() {
            collected
                .entry(out.stream.0)
                .or_default()
                .extend(out.samples);
        }
    }
    let mut result = HashMap::new();
    for outcome in engine.finish().unwrap() {
        let mut samples = collected.remove(&outcome.stream.0).unwrap_or_default();
        samples.extend(outcome.tail);
        result.insert(outcome.stream.0, (samples, outcome.embed_stats.unwrap()));
    }
    result
}

fn assert_bit_identical(id: u64, got: &[Sample], want: &[Sample]) {
    assert_eq!(got.len(), want.len(), "stream {id}: length mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "stream {id} sample {i}: engine {} vs single-stream {}",
            a.value,
            b.value
        );
        assert_eq!(a.index, b.index, "stream {id} sample {i}: index");
        assert_eq!(a.span, b.span, "stream {id} sample {i}: span");
    }
}

#[test]
fn embed_equivalence_across_worker_counts_and_batch_sizes() {
    let streams: Vec<(StreamId, Vec<Sample>)> = [3u64, 17, 4, 99]
        .iter()
        .map(|&id| (StreamId(id), wave(700, id)))
        .collect();
    let events = interleave(&streams, 0xA5A5);
    // Reference: each stream alone through the single-stream pipeline.
    let mut reference = HashMap::new();
    for (id, samples) in &streams {
        let (out, stats) = Embedder::embed_stream(
            scheme(42),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            samples,
        )
        .unwrap();
        reference.insert(id.0, (out, stats));
    }
    for workers in [1usize, 2, 4] {
        for batch in [1usize, 13, 4096] {
            let got = engine_embed(&streams, &events, workers, batch, 42);
            for (id, (want, want_stats)) in &reference {
                let (samples, stats) = &got[id];
                assert_bit_identical(*id, samples, want);
                assert_eq!(
                    stats, want_stats,
                    "stream {id} stats (workers={workers}, batch={batch})"
                );
            }
        }
    }
}

#[test]
fn detect_equivalence_and_marks_found() {
    // Embed per stream single-stream, then detect through the engine and
    // compare against the single-stream detector report.
    let ids = [8u64, 1, 30];
    let mut marked: Vec<(StreamId, Vec<Sample>)> = Vec::new();
    for &id in &ids {
        let (out, stats) = Embedder::embed_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &wave(1200, id),
        )
        .unwrap();
        assert!(stats.embedded > 0, "fixture must embed for stream {id}");
        marked.push((StreamId(id), out));
    }
    let events = interleave(&marked, 0xBEEF);
    let dcfg = Arc::new(DetectConfig::new(scheme(7), Arc::new(MultiHashEncoder), 1, 1.0).unwrap());
    let mut engine = Engine::new(EngineConfig::with_workers(2)).unwrap();
    for (id, _) in &marked {
        engine
            .register(*id, StreamSpec::Detect(Arc::clone(&dcfg)))
            .unwrap();
    }
    for chunk in events.chunks(31) {
        for out in engine.ingest(chunk).unwrap() {
            assert!(out.samples.is_empty(), "detect streams emit nothing");
        }
    }
    for outcome in engine.finish().unwrap() {
        let (_, samples) = marked.iter().find(|(id, _)| *id == outcome.stream).unwrap();
        let want = Detector::detect_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            1,
            samples,
            TransformHint::None,
        )
        .unwrap();
        let report = outcome.report.unwrap();
        assert_eq!(report, want, "stream {}", outcome.stream);
        assert!(report.bias() > 0, "stream {} lost its mark", outcome.stream);
    }
}

/// Like [`engine_embed`], but with an arbitrary [`EngineConfig`], a
/// chosen encoder, and an optional forced-hibernation schedule: when
/// `evict_seed` is set, one pseudo-randomly chosen stream is hibernated
/// after every batch, exercising serialize → spill → restore mid-run at
/// points the budget alone would not pick.
fn engine_embed_cfg(
    streams: &[(StreamId, Vec<Sample>)],
    events: &[Event],
    engine_cfg: EngineConfig,
    batch: usize,
    key: u64,
    encoder: Arc<dyn SubsetEncoder>,
    evict_seed: Option<u64>,
) -> HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)> {
    let cfg = Arc::new(EmbedConfig::new(scheme(key), encoder, Watermark::single(true)).unwrap());
    let mut engine = Engine::new(engine_cfg).unwrap();
    for (id, _) in streams {
        engine
            .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
            .unwrap();
    }
    let mut rng = evict_seed.unwrap_or(0);
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(batch.max(1)) {
        for out in engine.ingest(chunk).unwrap() {
            collected
                .entry(out.stream.0)
                .or_default()
                .extend(out.samples);
        }
        if evict_seed.is_some() {
            let pick = streams[(splitmix(&mut rng) % streams.len() as u64) as usize].0;
            engine.hibernate(pick).unwrap();
        }
    }
    let mut result = HashMap::new();
    for outcome in engine.finish().unwrap() {
        let mut samples = collected.remove(&outcome.stream.0).unwrap_or_default();
        samples.extend(outcome.tail);
        result.insert(outcome.stream.0, (samples, outcome.embed_stats.unwrap()));
    }
    result
}

/// The single-stream reference for one encoder.
fn reference_embed(
    streams: &[(StreamId, Vec<Sample>)],
    key: u64,
    encoder: Arc<dyn SubsetEncoder>,
) -> HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)> {
    streams
        .iter()
        .map(|(id, samples)| {
            let (out, stats) = Embedder::embed_stream(
                scheme(key),
                Arc::clone(&encoder),
                Watermark::single(true),
                samples,
            )
            .unwrap();
            (id.0, (out, stats))
        })
        .collect()
}

fn assert_matches_reference(
    got: &HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)>,
    reference: &HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)>,
    context: &str,
) {
    for (id, (want, want_stats)) in reference {
        let (samples, stats) = &got[id];
        assert_bit_identical(*id, samples, want);
        assert_eq!(stats, want_stats, "stream {id} stats ({context})");
    }
}

#[test]
fn hibernating_engine_embeds_byte_identically() {
    // Eight streams under a budget of three: most of the registry is
    // hibernated at any moment, so every batch re-adopts sessions that
    // went through serialize → spill → checksum → restore.
    let streams: Vec<(StreamId, Vec<Sample>)> = [3u64, 17, 4, 99, 250, 8, 61, 12]
        .iter()
        .map(|&id| (StreamId(id), wave(400, id)))
        .collect();
    let events = interleave(&streams, 0xC0FFEE);
    let encoders: [(&str, Arc<dyn SubsetEncoder>); 2] = [
        ("multihash", Arc::new(MultiHashEncoder)),
        ("initial", Arc::new(InitialEncoder)),
    ];
    for (name, encoder) in &encoders {
        let reference = reference_embed(&streams, 42, Arc::clone(encoder));
        for workers in [1usize, 2, 4] {
            for batch in [1usize, 13, 4096] {
                let cfg =
                    EngineConfig::with_workers(workers).with_budget(MemoryBudget::resident(3));
                let got =
                    engine_embed_cfg(&streams, &events, cfg, batch, 42, Arc::clone(encoder), None);
                assert_matches_reference(
                    &got,
                    &reference,
                    &format!("encoder={name}, workers={workers}, batch={batch}, budget=3"),
                );
            }
        }
    }
}

#[test]
fn forced_eviction_at_arbitrary_points_is_invisible() {
    // No budget at all: hibernation happens only where the forced
    // schedule says, so eviction points are decoupled from any LRU
    // policy — including immediately before a stream's next sample.
    let streams: Vec<(StreamId, Vec<Sample>)> = [7u64, 2, 19]
        .iter()
        .map(|&id| (StreamId(id), wave(500, id)))
        .collect();
    let events = interleave(&streams, 0xD00D);
    let reference = reference_embed(&streams, 11, Arc::new(MultiHashEncoder));
    for workers in [1usize, 2, 4] {
        let got = engine_embed_cfg(
            &streams,
            &events,
            EngineConfig::with_workers(workers),
            17,
            11,
            Arc::new(MultiHashEncoder),
            Some(0x5EED ^ workers as u64),
        );
        assert_matches_reference(
            &got,
            &reference,
            &format!("forced eviction, workers={workers}"),
        );
    }
}

#[test]
fn file_backed_spill_is_byte_identical_too() {
    // Same wall, but the cold sessions actually hit disk: append, frame,
    // checksum, read back. One fixture run suffices — the policy logic
    // is backing-agnostic, only the byte path differs.
    let path =
        std::env::temp_dir().join(format!("wms-equivalence-spill-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let streams: Vec<(StreamId, Vec<Sample>)> = [5u64, 40, 23, 16, 91]
        .iter()
        .map(|&id| (StreamId(id), wave(350, id)))
        .collect();
    let events = interleave(&streams, 0xFACE);
    let reference = reference_embed(&streams, 77, Arc::new(MultiHashEncoder));
    let cfg = EngineConfig::with_workers(2)
        .with_budget(MemoryBudget::resident(2).with_spill_file(path.clone()));
    let got = engine_embed_cfg(
        &streams,
        &events,
        cfg,
        29,
        77,
        Arc::new(MultiHashEncoder),
        None,
    );
    assert_matches_reference(&got, &reference, "file-backed spill, workers=2, budget=2");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn hibernating_detect_sessions_report_identically() {
    // Detection state (bit votes, labeler position, pending windows)
    // must survive hibernation exactly like embedding state does.
    let ids = [8u64, 1, 30, 77, 14];
    let mut marked: Vec<(StreamId, Vec<Sample>)> = Vec::new();
    for &id in &ids {
        let (out, _) = Embedder::embed_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &wave(900, id),
        )
        .unwrap();
        marked.push((StreamId(id), out));
    }
    let events = interleave(&marked, 0xABBA);
    let dcfg = Arc::new(DetectConfig::new(scheme(7), Arc::new(MultiHashEncoder), 1, 1.0).unwrap());
    for workers in [1usize, 2, 4] {
        let cfg = EngineConfig::with_workers(workers).with_budget(MemoryBudget::resident(2));
        let mut engine = Engine::new(cfg).unwrap();
        for (id, _) in &marked {
            engine
                .register(*id, StreamSpec::Detect(Arc::clone(&dcfg)))
                .unwrap();
        }
        let mut rng = 0x1CEBE4u64 ^ workers as u64;
        for chunk in events.chunks(23) {
            engine.ingest(chunk).unwrap();
            let pick = marked[(splitmix(&mut rng) % marked.len() as u64) as usize].0;
            engine.hibernate(pick).unwrap();
        }
        for outcome in engine.finish().unwrap() {
            let (_, samples) = marked.iter().find(|(id, _)| *id == outcome.stream).unwrap();
            let want = Detector::detect_stream(
                scheme(7),
                Arc::new(MultiHashEncoder),
                1,
                samples,
                TransformHint::None,
            )
            .unwrap();
            assert_eq!(
                outcome.report.unwrap(),
                want,
                "stream {} (workers={workers})",
                outcome.stream
            );
        }
    }
}

proptest! {
    #[test]
    fn random_interleavings_embed_like_independent_pipelines(
        k in 2usize..5,
        n in 150usize..400,
        seed in any::<u64>(),
    ) {
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| (StreamId(i * 31 + 5), wave(n + i as usize * 17, i * 31 + 5)))
            .collect();
        let events = interleave(&streams, seed);
        let batch = 1 + (seed % 97) as usize;
        let workers = 1 + (seed % 3) as usize;
        let got = engine_embed(&streams, &events, workers, batch, 1234);
        for (id, samples) in &streams {
            let (want, want_stats) = Embedder::embed_stream(
                scheme(1234),
                Arc::new(MultiHashEncoder),
                Watermark::single(true),
                samples,
            )
            .unwrap();
            let (got_samples, got_stats) = &got[&id.0];
            assert_bit_identical(id.0, got_samples, &want);
            prop_assert_eq!(got_stats, &want_stats);
        }
    }

    #[test]
    fn random_interleavings_detect_like_independent_pipelines(
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| {
                let id = i * 7 + 2;
                let (out, _) = Embedder::embed_stream(
                    scheme(9),
                    Arc::new(MultiHashEncoder),
                    Watermark::single(true),
                    &wave(350 + i as usize * 40, id),
                )
                .unwrap();
                (StreamId(id), out)
            })
            .collect();
        let events = interleave(&streams, seed);
        let dcfg = Arc::new(
            DetectConfig::new(scheme(9), Arc::new(MultiHashEncoder), 1, 1.0).unwrap(),
        );
        let workers = 1 + (seed % 3) as usize;
        let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
        for (id, _) in &streams {
            engine
                .register(*id, StreamSpec::Detect(Arc::clone(&dcfg)))
                .unwrap();
        }
        let batch = 1 + (seed % 53) as usize;
        for chunk in events.chunks(batch) {
            engine.ingest(chunk).unwrap();
        }
        for outcome in engine.finish().unwrap() {
            let (_, samples) = streams
                .iter()
                .find(|(id, _)| *id == outcome.stream)
                .unwrap();
            let want = Detector::detect_stream(
                scheme(9),
                Arc::new(MultiHashEncoder),
                1,
                samples,
                TransformHint::None,
            )
            .unwrap();
            prop_assert_eq!(outcome.report.unwrap(), want);
        }
    }

    #[test]
    fn random_eviction_schedules_embed_like_independent_pipelines(
        k in 2usize..5,
        n in 150usize..400,
        seed in any::<u64>(),
    ) {
        // Everything varies with the seed: interleaving, batch size,
        // worker count, residency budget, forced-eviction schedule and
        // encoder. The one constant is the output bytes.
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| (StreamId(i * 13 + 3), wave(n + i as usize * 11, i * 13 + 3)))
            .collect();
        let events = interleave(&streams, seed ^ 0x714);
        let batch = 1 + (seed % 89) as usize;
        let workers = 1 + (seed % 3) as usize;
        let budget = 1 + (seed % k as u64) as usize; // always < k: eviction is live
        let encoder: Arc<dyn SubsetEncoder> = if seed & 8 == 0 {
            Arc::new(MultiHashEncoder)
        } else {
            Arc::new(InitialEncoder)
        };
        let cfg = EngineConfig::with_workers(workers)
            .with_budget(MemoryBudget::resident(budget));
        let got = engine_embed_cfg(
            &streams,
            &events,
            cfg,
            batch,
            321,
            Arc::clone(&encoder),
            Some(seed ^ 0xE71C7),
        );
        for (id, samples) in &streams {
            let (want, want_stats) = Embedder::embed_stream(
                scheme(321),
                Arc::clone(&encoder),
                Watermark::single(true),
                samples,
            )
            .unwrap();
            let (got_samples, got_stats) = &got[&id.0];
            assert_bit_identical(id.0, got_samples, &want);
            prop_assert_eq!(got_stats, &want_stats);
        }
    }

    #[test]
    fn random_migration_schedules_embed_like_independent_pipelines(
        k in 2usize..5,
        n in 150usize..400,
        seed in any::<u64>(),
    ) {
        // The steal-path half of the wall: random interleaving, batch
        // size, worker count, spill budget, aggressive automatic
        // rebalancing AND a forced stream-migration schedule on top —
        // sessions hop shards (snapshot → transfer → adopt) at points
        // no load policy would pick. The outputs must not move a bit.
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| (StreamId(i * 29 + 1), wave(n + i as usize * 13, i * 29 + 1)))
            .collect();
        let events = interleave(&streams, seed ^ 0x57EA1);
        let batch = 1 + (seed % 61) as usize;
        let workers = 2 + (seed % 3) as usize; // 2..=4: migration needs shards
        let mut cfg = EngineConfig::with_workers(workers)
            .with_rebalance(RebalanceConfig { every_batches: 2, ratio: 1.0 });
        if seed & 4 == 0 {
            cfg = cfg.with_budget(MemoryBudget::resident(1 + (seed % k as u64) as usize));
        }
        let got = run_with_migrations(&streams, &events, cfg, batch, 321, workers, seed ^ 0x3A11);
        for (id, samples) in &streams {
            let (want, want_stats) = Embedder::embed_stream(
                scheme(321),
                Arc::new(MultiHashEncoder),
                Watermark::single(true),
                samples,
            )
            .unwrap();
            let (got_samples, got_stats) = &got[&id.0];
            assert_bit_identical(id.0, got_samples, &want);
            prop_assert_eq!(got_stats, &want_stats);
        }
    }
}

/// Like [`engine_embed_cfg`], but forcing a pseudo-random
/// [`Engine::migrate_stream`] call after every batch on top of whatever
/// automatic rebalancing the config enables.
fn run_with_migrations(
    streams: &[(StreamId, Vec<Sample>)],
    events: &[Event],
    engine_cfg: EngineConfig,
    batch: usize,
    key: u64,
    workers: usize,
    migrate_seed: u64,
) -> HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)> {
    let cfg = Arc::new(
        EmbedConfig::new(
            scheme(key),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    );
    let mut engine = Engine::new(engine_cfg).unwrap();
    for (id, _) in streams {
        engine
            .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
            .unwrap();
    }
    let mut rng = migrate_seed;
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(batch.max(1)) {
        for out in engine.ingest(chunk).unwrap() {
            collected
                .entry(out.stream.0)
                .or_default()
                .extend(out.samples);
        }
        let pick = streams[(splitmix(&mut rng) % streams.len() as u64) as usize].0;
        let to = (splitmix(&mut rng) % workers as u64) as usize;
        engine.migrate_stream(pick, to).unwrap();
    }
    let mut result = HashMap::new();
    for outcome in engine.finish().unwrap() {
        let mut samples = collected.remove(&outcome.stream.0).unwrap_or_default();
        samples.extend(outcome.tail);
        result.insert(outcome.stream.0, (samples, outcome.embed_stats.unwrap()));
    }
    result
}

#[test]
fn skewed_load_with_rebalancing_is_bit_identical() {
    // One stream carries ~10× the traffic of the rest, and the
    // rebalancer runs at its most aggressive (every other batch, any
    // imbalance triggers): streams migrate off the hot shard mid-run,
    // and nothing about the output may change.
    let mut streams: Vec<(StreamId, Vec<Sample>)> = vec![(StreamId(5), wave(2000, 5))];
    for id in [12u64, 31, 44, 58, 73] {
        streams.push((StreamId(id), wave(200, id)));
    }
    let events = interleave(&streams, 0x5CE3);
    let reference = reference_embed(&streams, 99, Arc::new(MultiHashEncoder));
    for workers in [2usize, 4] {
        for batch in [13usize, 256] {
            let cfg = EngineConfig::with_workers(workers).with_rebalance(RebalanceConfig {
                every_batches: 2,
                ratio: 1.0,
            });
            let got = engine_embed_cfg(
                &streams,
                &events,
                cfg,
                batch,
                99,
                Arc::new(MultiHashEncoder),
                None,
            );
            assert_matches_reference(
                &got,
                &reference,
                &format!("skewed rebalance, workers={workers}, batch={batch}"),
            );
        }
    }
}

#[test]
fn forced_migration_with_spill_budget_is_bit_identical() {
    // Fixed-fixture version of the migration proptest: budget of two
    // residents (so migrations hit both resident and hibernated
    // streams) plus a forced migration after every batch.
    let streams: Vec<(StreamId, Vec<Sample>)> = [9u64, 21, 34, 47, 60]
        .iter()
        .map(|&id| (StreamId(id), wave(450, id)))
        .collect();
    let events = interleave(&streams, 0x00F5);
    let reference = reference_embed(&streams, 55, Arc::new(MultiHashEncoder));
    for workers in [2usize, 4] {
        let cfg = EngineConfig::with_workers(workers)
            .with_budget(MemoryBudget::resident(2))
            .with_rebalance(RebalanceConfig {
                every_batches: 4,
                ratio: 1.2,
            });
        let got = run_with_migrations(
            &streams,
            &events,
            cfg,
            37,
            55,
            workers,
            0xD1CE ^ workers as u64,
        );
        assert_matches_reference(
            &got,
            &reference,
            &format!("forced migration under budget, workers={workers}"),
        );
    }
}

#[test]
fn pipelined_submit_collect_preserves_order_and_guards_ingest() {
    // Back-to-back batches pipeline: submit N epochs without collecting,
    // then collect them strictly in order; the synchronous `ingest` is
    // rejected while outputs are pending instead of silently reordering.
    let streams: Vec<(StreamId, Vec<Sample>)> = [2u64, 11, 27]
        .iter()
        .map(|&id| (StreamId(id), wave(600, id)))
        .collect();
    let events = interleave(&streams, 0x9A9A);
    let reference = reference_embed(&streams, 13, Arc::new(MultiHashEncoder));
    let cfg = Arc::new(
        EmbedConfig::new(
            scheme(13),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    );
    for workers in [1usize, 2, 4] {
        let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
        for (id, _) in &streams {
            engine
                .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
                .unwrap();
        }
        let mut submitted = Vec::new();
        let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
        for chunk in events.chunks(64) {
            submitted.push(engine.submit(chunk).unwrap());
            if submitted.len() == 3 {
                assert!(matches!(
                    engine.ingest(&[]),
                    Err(EngineError::UncollectedEpochs)
                ));
            }
            // Keep at most 4 epochs in flight, collecting the oldest.
            while engine.outstanding_epochs() > 4 {
                let (epoch, outs) = engine.collect_next().unwrap().unwrap();
                assert_eq!(epoch, submitted.remove(0), "epochs collect in order");
                for out in outs {
                    collected
                        .entry(out.stream.0)
                        .or_default()
                        .extend(out.samples);
                }
            }
        }
        while let Some((epoch, outs)) = engine.collect_next().unwrap() {
            assert_eq!(epoch, submitted.remove(0), "epochs collect in order");
            for out in outs {
                collected
                    .entry(out.stream.0)
                    .or_default()
                    .extend(out.samples);
            }
        }
        assert!(submitted.is_empty());
        let mut result = HashMap::new();
        for outcome in engine.finish().unwrap() {
            let mut samples = collected.remove(&outcome.stream.0).unwrap_or_default();
            samples.extend(outcome.tail);
            result.insert(outcome.stream.0, (samples, outcome.embed_stats.unwrap()));
        }
        assert_matches_reference(
            &result,
            &reference,
            &format!("pipelined, workers={workers}"),
        );
    }
}

#[test]
fn fault_mid_steal_is_typed_worker_lost_not_a_hang() {
    // A migration whose source-shard sync runs into a panicking session
    // must surface `WorkerLost` — the steal path may not hang on the
    // watermark or poison the process. The poison batch is *submitted*
    // but never collected, so the panic fires while the steal is
    // syncing the source shard (or, on a multi-core host, just before —
    // either way the same typed error comes back).
    let mut engine = Engine::new(EngineConfig::with_workers(2)).unwrap();
    engine
        .register(StreamId(1), StreamSpec::FaultInject { panic_after: 5 })
        .unwrap();
    engine.register(StreamId(2), StreamSpec::NoOp).unwrap();
    let poison: Vec<Event> = wave(20, 1)
        .iter()
        .map(|&s| Event::new(StreamId(1), s))
        .collect();
    engine.submit(&poison).unwrap();
    let err = (0..2)
        .find_map(|to| engine.migrate_stream(StreamId(1), to).err())
        .expect("migrating the faulty stream must cross the poisoned sync");
    assert!(
        matches!(err, EngineError::WorkerLost { .. }),
        "expected WorkerLost, got {err}"
    );
    // Every later operation reports the same typed error…
    assert!(matches!(
        engine.collect_next(),
        Err(EngineError::WorkerLost { .. })
    ));
    assert!(matches!(
        engine.ingest(&poison),
        Err(EngineError::WorkerLost { .. })
    ));
    // …and teardown neither hangs nor panics.
    drop(engine);
}
