//! Multi-stream ↔ single-stream equivalence.
//!
//! The engine's contract is that multiplexing changes *nothing* about
//! any individual stream: whatever interleaving, batch size and worker
//! count feed the engine, each stream's output is bit-identical to
//! running that stream alone through the PR 2 single-stream pipeline
//! (`Embedder::embed_stream` / `Detector::detect_stream`). These tests
//! prove it for fixed fixtures and — via the proptest shim — for random
//! interleavings of K streams, for both embed and detect.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{
    DetectConfig, Detector, EmbedConfig, Embedder, Scheme, TransformHint, Watermark, WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{Engine, EngineConfig, Event, StreamId, StreamSpec};
use wms_stream::{samples_from_values, Sample};

fn params() -> WmParams {
    WmParams {
        window: 64,
        degree: 2,
        radius: 0.01,
        max_subset: 4,
        label_len: 3,
        label_stride: 1,
        min_active: Some(4),
        ..WmParams::default()
    }
}

fn scheme(key: u64) -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(key))).unwrap()
}

/// A per-stream waveform: phase and period vary with the id so streams
/// are genuinely different.
fn wave(n: usize, id: u64) -> Vec<Sample> {
    let period = 19.0 + (id % 7) as f64 * 4.0;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 + id as f64;
            0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
        })
        .collect();
    samples_from_values(&values)
}

/// Splitmix64 — deterministic interleaving choices inside property tests.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Randomly interleaves the streams (per-stream order preserved).
fn interleave(streams: &[(StreamId, Vec<Sample>)], seed: u64) -> Vec<Event> {
    let mut rng = seed;
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut events = Vec::with_capacity(total);
    while events.len() < total {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].1.len())
            .collect();
        let pick = live[(splitmix(&mut rng) % live.len() as u64) as usize];
        let (id, samples) = &streams[pick];
        events.push(Event::new(*id, samples[cursors[pick]]));
        cursors[pick] += 1;
    }
    events
}

/// Runs the engine in embed mode over the given interleaving and returns
/// each stream's full output (ingest emissions + finish tail) and stats.
fn engine_embed(
    streams: &[(StreamId, Vec<Sample>)],
    events: &[Event],
    workers: usize,
    batch: usize,
    key: u64,
) -> HashMap<u64, (Vec<Sample>, wms_core::EmbedStats)> {
    let cfg = Arc::new(
        EmbedConfig::new(
            scheme(key),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    );
    let mut engine = Engine::new(EngineConfig::with_workers(workers));
    for (id, _) in streams {
        engine
            .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
            .unwrap();
    }
    let mut collected: HashMap<u64, Vec<Sample>> = HashMap::new();
    for chunk in events.chunks(batch.max(1)) {
        for out in engine.ingest(chunk).unwrap() {
            collected
                .entry(out.stream.0)
                .or_default()
                .extend(out.samples);
        }
    }
    let mut result = HashMap::new();
    for outcome in engine.finish().unwrap() {
        let mut samples = collected.remove(&outcome.stream.0).unwrap_or_default();
        samples.extend(outcome.tail);
        result.insert(outcome.stream.0, (samples, outcome.embed_stats.unwrap()));
    }
    result
}

fn assert_bit_identical(id: u64, got: &[Sample], want: &[Sample]) {
    assert_eq!(got.len(), want.len(), "stream {id}: length mismatch");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "stream {id} sample {i}: engine {} vs single-stream {}",
            a.value,
            b.value
        );
        assert_eq!(a.index, b.index, "stream {id} sample {i}: index");
        assert_eq!(a.span, b.span, "stream {id} sample {i}: span");
    }
}

#[test]
fn embed_equivalence_across_worker_counts_and_batch_sizes() {
    let streams: Vec<(StreamId, Vec<Sample>)> = [3u64, 17, 4, 99]
        .iter()
        .map(|&id| (StreamId(id), wave(700, id)))
        .collect();
    let events = interleave(&streams, 0xA5A5);
    // Reference: each stream alone through the single-stream pipeline.
    let mut reference = HashMap::new();
    for (id, samples) in &streams {
        let (out, stats) = Embedder::embed_stream(
            scheme(42),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            samples,
        )
        .unwrap();
        reference.insert(id.0, (out, stats));
    }
    for workers in [1usize, 2, 4] {
        for batch in [1usize, 13, 4096] {
            let got = engine_embed(&streams, &events, workers, batch, 42);
            for (id, (want, want_stats)) in &reference {
                let (samples, stats) = &got[id];
                assert_bit_identical(*id, samples, want);
                assert_eq!(
                    stats, want_stats,
                    "stream {id} stats (workers={workers}, batch={batch})"
                );
            }
        }
    }
}

#[test]
fn detect_equivalence_and_marks_found() {
    // Embed per stream single-stream, then detect through the engine and
    // compare against the single-stream detector report.
    let ids = [8u64, 1, 30];
    let mut marked: Vec<(StreamId, Vec<Sample>)> = Vec::new();
    for &id in &ids {
        let (out, stats) = Embedder::embed_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &wave(1200, id),
        )
        .unwrap();
        assert!(stats.embedded > 0, "fixture must embed for stream {id}");
        marked.push((StreamId(id), out));
    }
    let events = interleave(&marked, 0xBEEF);
    let dcfg = Arc::new(DetectConfig::new(scheme(7), Arc::new(MultiHashEncoder), 1, 1.0).unwrap());
    let mut engine = Engine::new(EngineConfig::with_workers(2));
    for (id, _) in &marked {
        engine
            .register(*id, StreamSpec::Detect(Arc::clone(&dcfg)))
            .unwrap();
    }
    for chunk in events.chunks(31) {
        for out in engine.ingest(chunk).unwrap() {
            assert!(out.samples.is_empty(), "detect streams emit nothing");
        }
    }
    for outcome in engine.finish().unwrap() {
        let (_, samples) = marked.iter().find(|(id, _)| *id == outcome.stream).unwrap();
        let want = Detector::detect_stream(
            scheme(7),
            Arc::new(MultiHashEncoder),
            1,
            samples,
            TransformHint::None,
        )
        .unwrap();
        let report = outcome.report.unwrap();
        assert_eq!(report, want, "stream {}", outcome.stream);
        assert!(report.bias() > 0, "stream {} lost its mark", outcome.stream);
    }
}

proptest! {
    #[test]
    fn random_interleavings_embed_like_independent_pipelines(
        k in 2usize..5,
        n in 150usize..400,
        seed in any::<u64>(),
    ) {
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| (StreamId(i * 31 + 5), wave(n + i as usize * 17, i * 31 + 5)))
            .collect();
        let events = interleave(&streams, seed);
        let batch = 1 + (seed % 97) as usize;
        let workers = 1 + (seed % 3) as usize;
        let got = engine_embed(&streams, &events, workers, batch, 1234);
        for (id, samples) in &streams {
            let (want, want_stats) = Embedder::embed_stream(
                scheme(1234),
                Arc::new(MultiHashEncoder),
                Watermark::single(true),
                samples,
            )
            .unwrap();
            let (got_samples, got_stats) = &got[&id.0];
            assert_bit_identical(id.0, got_samples, &want);
            prop_assert_eq!(got_stats, &want_stats);
        }
    }

    #[test]
    fn random_interleavings_detect_like_independent_pipelines(
        k in 2usize..4,
        seed in any::<u64>(),
    ) {
        let streams: Vec<(StreamId, Vec<Sample>)> = (0..k as u64)
            .map(|i| {
                let id = i * 7 + 2;
                let (out, _) = Embedder::embed_stream(
                    scheme(9),
                    Arc::new(MultiHashEncoder),
                    Watermark::single(true),
                    &wave(350 + i as usize * 40, id),
                )
                .unwrap();
                (StreamId(id), out)
            })
            .collect();
        let events = interleave(&streams, seed);
        let dcfg = Arc::new(
            DetectConfig::new(scheme(9), Arc::new(MultiHashEncoder), 1, 1.0).unwrap(),
        );
        let workers = 1 + (seed % 3) as usize;
        let mut engine = Engine::new(EngineConfig::with_workers(workers));
        for (id, _) in &streams {
            engine
                .register(*id, StreamSpec::Detect(Arc::clone(&dcfg)))
                .unwrap();
        }
        let batch = 1 + (seed % 53) as usize;
        for chunk in events.chunks(batch) {
            engine.ingest(chunk).unwrap();
        }
        for outcome in engine.finish().unwrap() {
            let (_, samples) = streams
                .iter()
                .find(|(id, _)| *id == outcome.stream)
                .unwrap();
            let want = Detector::detect_stream(
                scheme(9),
                Arc::new(MultiHashEncoder),
                1,
                samples,
                TransformHint::None,
            )
            .unwrap();
            prop_assert_eq!(outcome.report.unwrap(), want);
        }
    }
}
