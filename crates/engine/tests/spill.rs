//! File-backed spill-store integration tests: append/read round-trips
//! across process-style reopens, garbage-ratio-triggered compaction, and
//! the crash-recovery contract (torn tails truncated, mid-log damage and
//! checksum mismatches refused with typed errors).
//!
//! The in-memory backing is covered by unit tests inside the crate;
//! everything here goes through a real file on disk because reopen,
//! truncation and the compaction rename are exactly the parts an
//! in-memory store cannot exercise.

use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use wms_core::checkpoint::CheckpointError;
use wms_engine::{SpillError, SpillFile};

/// A unique temp path removed on drop, so failed tests don't leak files.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        let p = std::env::temp_dir().join(format!("wms-spill-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Deterministic pseudo-random payload (splitmix64 bytes).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        out.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    out.truncate(len);
    out
}

#[test]
fn append_read_roundtrip_survives_reopen() {
    let tmp = TempPath::new("roundtrip");
    {
        let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
        for id in 0..25u64 {
            s.append(id, (id % 3) as u8, &payload(id, 100 + id as usize))
                .unwrap();
        }
        // Latest record wins within one session...
        s.append(7, 1, &payload(999, 64)).unwrap();
        s.sync().unwrap();
        assert_eq!(s.len(), 25);
    }
    // ...and across a reopen: the index is rebuilt from the log alone.
    let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
    assert_eq!(s.len(), 25);
    for id in 0..25u64 {
        assert!(s.contains(id));
        let (kind, bytes) = s.read(id).unwrap().expect("live record");
        if id == 7 {
            assert_eq!((kind, bytes), (1, payload(999, 64)), "newest record wins");
        } else {
            assert_eq!(kind, (id % 3) as u8);
            assert_eq!(bytes, payload(id, 100 + id as usize));
        }
    }
    assert_eq!(s.read(1000).unwrap(), None, "unknown id reads as absent");
}

#[test]
fn compaction_triggers_at_garbage_ratio_and_preserves_live_records() {
    let tmp = TempPath::new("compact");
    // 40 records x ~8KiB clears the 64KiB auto-compaction floor easily.
    let mut s = SpillFile::open(&tmp.0, 0.4).unwrap();
    for id in 0..40u64 {
        s.append(id, 0, &payload(id, 8 * 1024)).unwrap();
    }
    assert_eq!(s.stats().compactions, 0, "no garbage yet");
    let before = s.stats().log_bytes;
    // Superseding most records pushes garbage past the 0.4 ratio.
    for id in 0..30u64 {
        s.append(id, 0, &payload(id + 500, 8 * 1024)).unwrap();
    }
    let st = s.stats();
    assert!(st.compactions >= 1, "garbage ratio should have triggered");
    assert!(
        st.garbage_ratio() < 0.4,
        "post-compaction garbage {} should sit below the trigger",
        st.garbage_ratio()
    );
    assert!(st.log_bytes < before + 30 * 9 * 1024, "log did not shrink");
    // Every record survives compaction with its newest payload.
    for id in 0..40u64 {
        let (_, bytes) = s.read(id).unwrap().expect("live record");
        let want = if id < 30 {
            payload(id + 500, 8 * 1024)
        } else {
            payload(id, 8 * 1024)
        };
        assert_eq!(bytes, want, "id {id} damaged by compaction");
    }
    // The compaction temp file was renamed away, not left behind.
    let sibling = tmp.0.with_extension("log.compact");
    assert!(!sibling.exists(), "{} left behind", sibling.display());
}

#[test]
fn explicit_compact_reclaims_removed_records() {
    let tmp = TempPath::new("explicit-compact");
    let mut s = SpillFile::open(&tmp.0, 1.0).unwrap(); // auto-compaction off
    for id in 0..10u64 {
        s.append(id, 0, &payload(id, 512)).unwrap();
    }
    for id in 0..5u64 {
        assert!(s.remove(id).unwrap());
    }
    assert!(!s.remove(0).unwrap(), "double remove is a no-op");
    let garbage_before = s.stats().garbage_ratio();
    assert!(garbage_before > 0.4, "removals should have left garbage");
    s.compact().unwrap();
    let st = s.stats();
    assert_eq!(st.records, 5);
    assert_eq!(st.log_bytes, st.live_bytes, "compacted log is all live");
    for id in 5..10u64 {
        assert_eq!(s.read(id).unwrap().unwrap().1, payload(id, 512));
    }
}

#[test]
fn reopen_truncates_torn_tail_but_keeps_whole_records() {
    let tmp = TempPath::new("torn-tail");
    let whole_len;
    {
        let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
        for id in 0..5u64 {
            s.append(id, 2, &payload(id, 300)).unwrap();
        }
        s.sync().unwrap();
        whole_len = s.stats().log_bytes;
    }
    // Simulate a crash mid-append: a half-written record at the tail.
    let mut f = OpenOptions::new().append(true).open(&tmp.0).unwrap();
    f.write_all(b"WMSR").unwrap();
    f.write_all(&42u64.to_le_bytes()).unwrap(); // id, then nothing more
    f.sync_all().unwrap();
    drop(f);

    let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
    assert_eq!(s.len(), 5, "whole records before the tear survive");
    assert!(!s.contains(42), "the torn record never happened");
    assert_eq!(s.stats().log_bytes, whole_len, "tail truncated away");
    assert_eq!(std::fs::metadata(&tmp.0).unwrap().len(), whole_len);
    // The store still appends cleanly after recovery.
    s.append(42, 2, &payload(42, 300)).unwrap();
    assert_eq!(s.read(42).unwrap().unwrap().1, payload(42, 300));
}

#[test]
fn mid_log_damage_is_corrupt_not_torn() {
    let tmp = TempPath::new("mid-log");
    {
        let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
        for id in 0..3u64 {
            s.append(id, 0, &payload(id, 200)).unwrap();
        }
        s.sync().unwrap();
    }
    // Stomp the *second* record's magic: damage before the tail must not
    // be silently truncated like a torn tail (that would drop record 3).
    let mut f = OpenOptions::new().write(true).open(&tmp.0).unwrap();
    f.seek(SeekFrom::Start(4 + 8 + 1 + 8 + 200 + 8)).unwrap();
    f.write_all(b"JUNK").unwrap();
    f.sync_all().unwrap();
    drop(f);

    match SpillFile::open(&tmp.0, 1.0) {
        Err(SpillError::Corrupt(CheckpointError::BadMagic { found, .. })) => {
            assert_eq!(&found, b"JUNK");
        }
        other => panic!("expected BadMagic, got {other:?}", other = other.err()),
    }
}

#[test]
fn corrupted_payload_fails_checksum_on_read() {
    let tmp = TempPath::new("checksum");
    {
        let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
        s.append(9, 1, &payload(9, 400)).unwrap();
        s.sync().unwrap();
    }
    // Flip one payload byte at rest (offset 21 is the first payload byte).
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&tmp.0)
        .unwrap();
    f.seek(SeekFrom::Start(21 + 100)).unwrap();
    let mut b = [0u8; 1];
    std::io::Read::read_exact(&mut f, &mut b).unwrap();
    f.seek(SeekFrom::Start(21 + 100)).unwrap();
    f.write_all(&[b[0] ^ 0x01]).unwrap();
    f.sync_all().unwrap();
    drop(f);

    let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
    match s.read(9) {
        Err(SpillError::Corrupt(CheckpointError::ChecksumMismatch { expected, found })) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn clear_empties_the_store_and_reclaims_the_file() {
    let tmp = TempPath::new("clear");
    let mut s = SpillFile::open(&tmp.0, 1.0).unwrap();
    for id in 0..8u64 {
        s.append(id, 0, &payload(id, 1024)).unwrap();
    }
    s.clear().unwrap();
    assert!(s.is_empty());
    assert_eq!(s.stats().log_bytes, 0, "clear compacts the log away");
    assert_eq!(s.ids().count(), 0);
    // Reopening an engine over a stale log is modeled by open + clear;
    // the store stays usable afterwards.
    s.append(3, 1, &payload(3, 64)).unwrap();
    assert_eq!(s.read(3).unwrap().unwrap(), (1, payload(3, 64)));
}
