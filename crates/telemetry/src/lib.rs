//! `wms-telemetry`: lock-free metrics for the engine and daemon, with a
//! Prometheus-style text exposition renderer.
//!
//! The design splits *recording* from *exposition* so instrumentation
//! can live on hot paths:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//!   clonable wrappers over shared atomics. Recording is a relaxed
//!   atomic RMW — no locks, no allocation, no branching on whether
//!   anything is scraping. A handle that is never registered anywhere
//!   is the "disabled facade": the cost of carrying it is exactly one
//!   relaxed `fetch_add` per event, which is why the engine can
//!   instrument unconditionally.
//! * A [`Registry`] is the sink. Subsystems register their handles
//!   under stable names (plus optional `key="value"` labels) and
//!   [`Registry::render`] walks the registered cells into the
//!   Prometheus text format (`# HELP` / `# TYPE` headers, one sample
//!   line per label set, cumulative `_bucket{le=...}` series plus
//!   `_sum` / `_count` for histograms).
//!
//! Exposition is pull-based and read-only: rendering takes a snapshot
//! of each atomic with relaxed loads, so a scrape never blocks a
//! recorder. Counter reads are monotone per cell; cross-metric
//! consistency is best-effort, as in any sampled exposition.
//!
//! The canonical metric names this workspace emits are tabulated in
//! `DESIGN.md` §3.18; a doc-check test in each emitting crate fails if
//! a registered name disappears from that table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing event count.
///
/// Cloning shares the underlying cell: all clones observe and advance
/// the same value.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero, not registered anywhere.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depth, resident sessions) or
/// track a running maximum (occupancy high-water).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero, not registered anywhere.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a release racing a reset must
    /// not wrap to 2^64).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Raises the value to at least `v` (high-water tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared state behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `len ==
    /// bounds.len() + 1`, the last being the overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    /// Bit pattern of the `f64` sum of observed values.
    sum_bits: AtomicU64,
    /// Total observations.
    count: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (durations are
/// observed in seconds, Prometheus convention).
///
/// Buckets are fixed at construction; observing is a linear scan over
/// a handful of bounds plus three relaxed RMWs — no allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram over the given finite bucket upper bounds (an
    /// implicit `+Inf` bucket is appended). Bounds must be strictly
    /// increasing and non-empty.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Default bounds for operation latencies, in seconds: 100 µs up to
    /// 10 s, the range a checkpoint or drain plausibly spans.
    pub fn duration_bounds() -> &'static [f64] {
        &[
            0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
        ]
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        let idx = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        // f64 add via CAS on the bit pattern (the workspace forbids
        // unsafe, so no AtomicF64; this path is rare — per checkpoint,
        // not per sample).
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Records a wall-clock duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` pairs including the final
    /// `(+Inf, total)` bucket — what the text exposition emits.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let c = &self.core;
        let mut total = 0u64;
        let mut out = Vec::with_capacity(c.buckets.len());
        for (i, b) in c.buckets.iter().enumerate() {
            total += b.load(Ordering::Relaxed);
            let bound = c.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, total));
        }
        out
    }
}

/// One registered metric cell.
enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

/// A registered metric: name, help, label set, cell.
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// The exposition sink: registered handles rendered on demand into the
/// Prometheus text format.
///
/// Registration is cold-path and mutex-guarded; rendering takes the
/// same mutex but only reads the atomics, so recorders never wait.
/// The same metric name may be registered repeatedly with *different*
/// label sets (one series per label set); re-registering an identical
/// `(name, labels)` pair, or reusing a name with a different metric
/// kind, is a caller bug and panics.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], cell: Cell) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter() {
            if e.name == name {
                assert_eq!(
                    e.cell.kind(),
                    cell.kind(),
                    "metric {name:?} registered with two kinds"
                );
                assert!(
                    !same_labels(&e.labels, labels),
                    "metric {name:?} registered twice with identical labels"
                );
            }
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell,
        });
    }

    /// Registers an existing counter handle under `name` with `labels`.
    pub fn register_counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) {
        self.register(name, help, labels, Cell::Counter(counter.clone()));
    }

    /// Registers an existing gauge handle under `name` with `labels`.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.register(name, help, labels, Cell::Gauge(gauge.clone()));
    }

    /// Registers an existing histogram handle under `name` with
    /// `labels`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: &Histogram,
    ) {
        self.register(name, help, labels, Cell::Histogram(histogram.clone()));
    }

    /// Creates and registers an unlabeled counter in one step.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        self.register_counter(name, help, &[], &c);
        c
    }

    /// Creates and registers an unlabeled gauge in one step.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, help, &[], &g);
        g
    }

    /// Every distinct metric name currently registered, in first-seen
    /// order — what the doc-check tests compare against DESIGN.md.
    pub fn names(&self) -> Vec<String> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<String> = Vec::new();
        for e in entries.iter() {
            if !out.contains(&e.name) {
                out.push(e.name.clone());
            }
        }
        out
    }

    /// Renders every registered series in the Prometheus text format.
    /// Series sharing a name are grouped under one `# HELP` / `# TYPE`
    /// header pair, in first-registration order.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut done: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if done.contains(&e.name.as_str()) {
                continue;
            }
            done.push(&e.name);
            out.push_str("# HELP ");
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(&escape_help(&e.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&e.name);
            out.push(' ');
            out.push_str(e.cell.kind());
            out.push('\n');
            for s in entries.iter().filter(|s| s.name == e.name) {
                render_series(&mut out, s);
            }
        }
        out
    }
}

/// Appends the sample line(s) for one registered series.
fn render_series(out: &mut String, e: &Entry) {
    match &e.cell {
        Cell::Counter(c) => {
            out.push_str(&e.name);
            push_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&c.get().to_string());
            out.push('\n');
        }
        Cell::Gauge(g) => {
            out.push_str(&e.name);
            push_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&g.get().to_string());
            out.push('\n');
        }
        Cell::Histogram(h) => {
            for (bound, cum) in h.cumulative_buckets() {
                out.push_str(&e.name);
                out.push_str("_bucket");
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format_f64(bound)
                };
                push_labels(out, &e.labels, Some(("le", &le)));
                out.push(' ');
                out.push_str(&cum.to_string());
                out.push('\n');
            }
            out.push_str(&e.name);
            out.push_str("_sum");
            push_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&format_f64(h.sum()));
            out.push('\n');
            out.push_str(&e.name);
            out.push_str("_count");
            push_labels(out, &e.labels, None);
            out.push(' ');
            out.push_str(&h.count().to_string());
            out.push('\n');
        }
    }
}

/// Appends `{k="v",...}` (plus an optional extra pair, for `le`) unless
/// there are no labels at all.
fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push('}');
}

/// `f64` in exposition form: integral values without a trailing `.0`
/// would be ambiguous with integers in some parsers, so keep Rust's
/// shortest-roundtrip `Display` (Prometheus accepts both).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric/label name
/// grammar (we additionally use it for label names, which disallows
/// `:`, but none of ours carry one).
fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn same_labels(a: &[(String, String)], b: &[(&str, &str)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Instant;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(3);
        g.sub(4);
        assert_eq!(g.get(), 6);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.record_max(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn clones_share_the_cell() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c2.get(), 3);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_complete() {
        let h = Histogram::with_bounds(&[0.01, 0.1, 1.0]);
        for v in [0.005, 0.005, 0.05, 0.5, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 50.56).abs() < 1e-9);
        assert_eq!(
            h.cumulative_buckets(),
            vec![(0.01, 2), (0.1, 3), (1.0, 4), (f64::INFINITY, 5)]
        );
        // A value exactly on a bound lands in that bound's bucket
        // (Prometheus `le` semantics).
        let h = Histogram::with_bounds(&[1.0]);
        h.observe(1.0);
        assert_eq!(h.cumulative_buckets(), vec![(1.0, 1), (f64::INFINITY, 1)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::with_bounds(&[1.0, 0.5]);
    }

    #[test]
    fn exposition_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("wms_test_events_total", "Events seen.");
        c.add(12);
        let by_type = Counter::new();
        reg.register_counter(
            "wms_test_frames_total",
            "Frames by type.",
            &[("type", "batch")],
            &by_type,
        );
        let nacks = Counter::new();
        reg.register_counter(
            "wms_test_frames_total",
            "Frames by type.",
            &[("type", "nack")],
            &nacks,
        );
        by_type.add(3);
        nacks.inc();
        let g = reg.gauge("wms_test_queue_depth", "Jobs queued.");
        g.set(4);
        let h = Histogram::with_bounds(&[0.5, 1.0]);
        reg.register_histogram("wms_test_op_seconds", "Op latency.", &[], &h);
        h.observe(0.25);
        h.observe(2.0);

        let text = reg.render();
        // Parse it back: every non-comment line is `name{labels} value`,
        // every family has exactly one HELP and one TYPE, histogram
        // series are cumulative and internally consistent.
        let mut help = 0;
        let mut typ = 0;
        let mut samples: Vec<(String, f64)> = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(rest.starts_with("wms_test_"));
                help += 1;
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                let kind = it.next().unwrap();
                assert!(["counter", "gauge", "histogram"].contains(&kind), "{name}");
                typ += 1;
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                samples.push((series.to_string(), value.parse::<f64>().unwrap()));
            }
        }
        assert_eq!(help, 4, "one HELP per family:\n{text}");
        assert_eq!(typ, 4);
        let get = |s: &str| {
            samples
                .iter()
                .find(|(n, _)| n == s)
                .unwrap_or_else(|| panic!("missing series {s} in:\n{text}"))
                .1
        };
        assert_eq!(get("wms_test_events_total"), 12.0);
        assert_eq!(get("wms_test_frames_total{type=\"batch\"}"), 3.0);
        assert_eq!(get("wms_test_frames_total{type=\"nack\"}"), 1.0);
        assert_eq!(get("wms_test_queue_depth"), 4.0);
        assert_eq!(get("wms_test_op_seconds_bucket{le=\"0.5\"}"), 1.0);
        assert_eq!(get("wms_test_op_seconds_bucket{le=\"1\"}"), 1.0);
        assert_eq!(get("wms_test_op_seconds_bucket{le=\"+Inf\"}"), 2.0);
        assert_eq!(get("wms_test_op_seconds_sum"), 2.25);
        assert_eq!(get("wms_test_op_seconds_count"), 2.0);
        assert_eq!(reg.names().len(), 4);
    }

    #[test]
    fn labels_escape_hostile_values() {
        let reg = Registry::new();
        let c = Counter::new();
        reg.register_counter(
            "wms_test_weird",
            "Help with \\ backslash\nand newline.",
            &[("who", "a\"b\\c\nd")],
            &c,
        );
        let text = reg.render();
        assert!(text.contains("# HELP wms_test_weird Help with \\\\ backslash\\nand newline."));
        assert!(text.contains("wms_test_weird{who=\"a\\\"b\\\\c\\nd\"} 0"));
        // Still line-structured: exactly one sample line.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "identical labels")]
    fn duplicate_series_is_refused() {
        let reg = Registry::new();
        reg.counter("wms_test_dup", "a");
        reg.counter("wms_test_dup", "b");
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_conflict_is_refused() {
        let reg = Registry::new();
        reg.counter("wms_test_kind", "a");
        reg.register_gauge("wms_test_kind", "b", &[("x", "y")], &Gauge::new());
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_is_refused() {
        Registry::new().counter("0bad name", "nope");
    }

    #[test]
    fn concurrent_increments_never_lose_or_regress() {
        const THREADS: usize = 8;
        const PER: u64 = 50_000;
        let c = Counter::new();
        let stop_watch = c.clone();
        let watcher = std::thread::spawn(move || {
            // Monotonicity: sampled values never decrease.
            let mut last = 0;
            while last < THREADS as u64 * PER {
                let now = stop_watch.get();
                assert!(now >= last, "counter regressed: {last} -> {now}");
                last = now;
            }
        });
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        watcher.join().unwrap();
        assert_eq!(c.get(), THREADS as u64 * PER, "lost increments");
    }

    #[test]
    fn unregistered_facade_costs_one_relaxed_rmw() {
        // The "disabled" facade is an unregistered handle. Its
        // increment must stay in the same cost class as a bare relaxed
        // fetch_add — no allocation, no lock, no registry lookup. The
        // ratio bound is deliberately loose (shared-CI noise), but it
        // would still catch an accidental mutex or format! on the path.
        const N: u64 = 2_000_000;
        let bare = AtomicU64::new(0);
        let t0 = Instant::now();
        for _ in 0..N {
            std::hint::black_box(&bare).fetch_add(1, Ordering::Relaxed);
        }
        let baseline = t0.elapsed();

        let c = Counter::new(); // never registered: no sink
        let t0 = Instant::now();
        for _ in 0..N {
            std::hint::black_box(&c).inc();
        }
        let facade = t0.elapsed();
        assert_eq!(bare.load(Ordering::Relaxed), N);
        assert_eq!(c.get(), N);
        assert!(
            facade < baseline * 10 + Duration::from_millis(50),
            "unregistered counter too slow: {facade:?} vs bare atomic {baseline:?}"
        );
    }
}
