//! # criterion (offline shim)
//!
//! A minimal, dependency-free stand-in for the real
//! [`criterion`](https://crates.io/crates/criterion) crate, vendored into
//! the workspace because the build environment has no access to crates.io
//! (see `DESIGN.md` § "Offline dependency policy").
//!
//! It implements the API subset used by `crates/bench/benches/*.rs` —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`] and [`criterion_main!`] — and reports a simple
//! mean/min per benchmark instead of criterion's full statistics.
//!
//! Each benchmark gets a small wall-clock budget (default 40 ms,
//! overridable with `WMS_BENCH_MS`) so `cargo bench` stays fast; raise the
//! budget for stabler numbers.
//!
//! ## Machine-readable output
//!
//! A group's [`Throughput::Elements`]/[`Throughput::Bytes`] setting is
//! honored in the human output as a derived rate (items/sec resp. MiB/s)
//! *and* in an optional machine-readable channel: when the
//! `WMS_BENCH_JSON` environment variable names a file, every benchmark
//! appends one JSON object per line (`id`, `ns_per_iter`, `iters`, and —
//! with a throughput set — `elements`/`bytes` and `per_sec`), so CI can
//! track a throughput trajectory without scraping stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn budget() -> Duration {
    let ms = std::env::var("WMS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40u64);
    Duration::from_millis(ms.max(1))
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { budget: budget() }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.budget;
        run_one(&id.into(), None, budget, f);
    }
}

/// Identifies one parameterized benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `new("scan", 2048)` displays as `scan/2048`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut full = function_name.into();
        let _ = write!(full, "/{parameter}");
        Self { full }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f`'s [`Bencher::iter`] loop and prints a summary line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.throughput, self.criterion.budget, f);
        self
    }

    /// Like [`Self::bench_function`] but passes `input` through to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.full, self.throughput, self.criterion.budget, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] exactly once.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    deadline: Duration,
}

impl Bencher {
    fn with_deadline(deadline: Duration) -> Self {
        Self {
            iters: 0,
            elapsed: Duration::ZERO,
            deadline,
        }
    }

    /// Runs `f` repeatedly until the wall-clock budget is spent and
    /// records iteration count and total elapsed time. At least one
    /// iteration always runs.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            self.iters += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, tp: Option<Throughput>, budget: Duration, mut f: F) {
    // Warmup: one untimed pass so lazy init and caches don't skew the run.
    let mut warm = Bencher::with_deadline(Duration::ZERO);
    f(&mut warm);

    let mut b = Bencher::with_deadline(budget);
    f(&mut b);

    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    let mut line = format!("{id:<40} {:>12.1} ns/iter ({} iters)", per_iter, b.iters);
    let mut json = format!(
        "{{\"id\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}",
        json_escape(id),
        per_iter,
        b.iters
    );
    if let Some(t) = tp {
        let per_sec = 1e9 / per_iter;
        match t {
            Throughput::Bytes(n) => {
                let rate = per_sec * n as f64;
                let _ = write!(line, "  {:>9.2} MiB/s", rate / (1024.0 * 1024.0));
                let _ = write!(json, ",\"bytes\":{n},\"per_sec\":{rate:.1}");
            }
            Throughput::Elements(n) => {
                let rate = per_sec * n as f64;
                let _ = write!(line, "  {:>12.0} items/sec", rate);
                let _ = write!(json, ",\"elements\":{n},\"per_sec\":{rate:.1}");
            }
        }
    }
    json.push('}');
    println!("{line}");
    // A bench that never called `iter` has per_iter = NaN, which would
    // serialize as the invalid JSON token `NaN` — skip the record.
    if b.iters > 0 {
        if let Ok(path) = std::env::var("WMS_BENCH_JSON") {
            if !path.is_empty() {
                append_json_line(&path, &json);
            }
        }
    }
}

/// Escapes a benchmark id for embedding in a JSON string literal
/// (backslash first, then quote, so ids round-trip losslessly).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn append_json_line(path: &str, json: &str) {
    use std::io::Write as _;
    let r = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{json}"));
    if let Err(e) = r {
        eprintln!("criterion-shim: cannot append to WMS_BENCH_JSON={path}: {e}");
    }
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`), mirroring
/// `criterion::criterion_main!`. Ignores harness CLI arguments such as
/// `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags like `--bench`; nothing to parse.
            $($group();)+
        }
    };
}
