//! # wms-sensors
//!
//! Synthetic sensor data generators for the `wms` workspace:
//!
//! * [`temperature`] — the paper's "temperature sensor synthetic data
//!   stream generator with controllable parameters" (§6): carrier period
//!   controls ξ(ν,δ), AR(1) noise controls characteristic-subset shape;
//! * [`gaussian`] — the normalized N(0, 0.5²) process the paper's
//!   synthetic experiments run on, with tunable smoothness;
//! * [`irtf`] — a NASA-IRTF-like stand-in for the paper's real dataset
//!   (21,630 two-minute temperature readings, ~0–35 °C; see DESIGN.md for
//!   the substitution rationale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gaussian;
pub mod irtf;
pub mod temperature;

pub use gaussian::SmoothGaussianSource;
pub use irtf::{generate as generate_irtf, reference_dataset, IrtfConfig, IRTF_READINGS};
pub use temperature::{direction_changes, OscillatingTemperature, TemperatureConfig};
