//! NASA-IRTF-like reference dataset.
//!
//! The paper's real-world evaluation data — "once-every-two-minutes
//! environmental sensor (temperature) readings at various telescope site
//! locations [...] 30 days worth of data from September 2003, totaling
//! 21630 temperature readings (values on the Celsius scale roughly between
//! 0 and 35 degrees)" — is no longer distributed. Per the substitution
//! policy in `DESIGN.md`, this module generates a faithful stand-in:
//!
//! * identical shape: 21,630 readings at a 2-minute cadence (≈30 days,
//!   720 samples/day, plus a 30-reading partial day);
//! * diurnal sinusoid (period 720 samples) with day-to-day amplitude and
//!   phase variation;
//! * multi-day weather-front drift (AR(1) on the daily mean);
//! * short-horizon AR(1) micro-fluctuations, which is what gives real
//!   mountain-site data its dense population of local extremes;
//! * values clamped to the paper's reported [0, 35] °C range.
//!
//! Only distributional properties matter to the watermarking algorithms
//! (value range, fluctuation statistics ξ(ν,δ), sample count); absolute
//! meteorology does not.

use wms_math::DetRng;
use wms_stream::Sample;

/// Number of readings in the paper's reference dataset.
pub const IRTF_READINGS: usize = 21_630;

/// Samples per day at the 2-minute cadence.
pub const SAMPLES_PER_DAY: usize = 720;

/// Configuration of the IRTF-like generator.
#[derive(Debug, Clone, Copy)]
pub struct IrtfConfig {
    /// Number of readings to generate.
    pub readings: usize,
    /// Seasonal mean temperature (°C).
    pub mean_level: f64,
    /// Mean diurnal half-amplitude (°C).
    pub diurnal_amplitude: f64,
    /// Day-to-day relative variation of the diurnal amplitude.
    pub amplitude_jitter: f64,
    /// AR(1) std of the multi-day weather drift (°C).
    pub front_std: f64,
    /// AR(1) coefficient of the weather drift (per sample).
    pub front_ar: f64,
    /// Std of meso-scale fluctuations (°C) — gusts/cloud passages on the
    /// tens-of-minutes scale. These create the pronounced local extremes
    /// the watermark rides on.
    pub micro_std: f64,
    /// AR(1) coefficient of the meso fluctuations.
    pub micro_ar: f64,
    /// Std of fast per-reading sensor noise (°C).
    pub sensor_noise_std: f64,
    /// Clamp range, matching the paper's reported span.
    pub clamp: (f64, f64),
}

impl Default for IrtfConfig {
    fn default() -> Self {
        IrtfConfig {
            readings: IRTF_READINGS,
            mean_level: 14.0,
            diurnal_amplitude: 7.0,
            amplitude_jitter: 0.25,
            front_std: 3.0,
            front_ar: 0.9995,
            micro_std: 1.2,
            micro_ar: 0.985,
            sensor_noise_std: 0.06,
            clamp: (0.0, 35.0),
        }
    }
}

/// Generates the IRTF-like reference dataset for a given seed.
pub fn generate(cfg: &IrtfConfig, seed: u64) -> Vec<Sample> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(cfg.readings);
    let day = SAMPLES_PER_DAY as f64;

    // Per-day modulation, resampled at local midnight.
    let mut day_amp = cfg.diurnal_amplitude;
    let mut day_phase = rng.uniform(-0.3, 0.3);

    let mut front = 0.0f64;
    let front_innov = (1.0 - cfg.front_ar * cfg.front_ar).sqrt() * cfg.front_std;
    let mut micro = 0.0f64;
    let micro_innov = (1.0 - cfg.micro_ar * cfg.micro_ar).sqrt() * cfg.micro_std;

    for i in 0..cfg.readings {
        if i % SAMPLES_PER_DAY == 0 {
            let jitter = 1.0 + cfg.amplitude_jitter * rng.standard_normal();
            day_amp = (cfg.diurnal_amplitude * jitter.max(0.2)).max(0.5);
            day_phase = rng.uniform(-0.3, 0.3);
        }
        let t = i as f64;
        // Coldest shortly before dawn, warmest mid-afternoon: a phase-
        // shifted sinusoid is an adequate first-order model.
        let diurnal = day_amp
            * (core::f64::consts::TAU * (t / day) + day_phase - 2.0 * core::f64::consts::FRAC_PI_3)
                .sin();
        front = cfg.front_ar * front + front_innov * rng.standard_normal();
        micro = cfg.micro_ar * micro + micro_innov * rng.standard_normal();
        let noise = cfg.sensor_noise_std * rng.standard_normal();
        let v = (cfg.mean_level + diurnal + front + micro + noise).clamp(cfg.clamp.0, cfg.clamp.1);
        out.push(Sample::new(i as u64, v));
    }
    out
}

/// The default reference dataset used throughout the experiment harness.
pub fn reference_dataset(seed: u64) -> Vec<Sample> {
    generate(&IrtfConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_math::summarize;
    use wms_stream::values_of;

    #[test]
    fn has_paper_shape() {
        let d = reference_dataset(2003);
        assert_eq!(d.len(), IRTF_READINGS);
        let s = summarize(&values_of(&d)).unwrap();
        assert!(
            s.min >= 0.0 && s.max <= 35.0,
            "range [{}, {}]",
            s.min,
            s.max
        );
        // Plausible mountain-site September statistics.
        assert!((5.0..25.0).contains(&s.mean), "mean {}", s.mean);
        assert!(s.std_dev > 2.0, "needs real variability, std {}", s.std_dev);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            values_of(&reference_dataset(1)),
            values_of(&reference_dataset(1))
        );
        assert_ne!(
            values_of(&reference_dataset(1)),
            values_of(&reference_dataset(2))
        );
    }

    #[test]
    fn diurnal_cycle_present() {
        // Correlation between consecutive days should be clearly positive:
        // same hour, similar temperature.
        let d = reference_dataset(7);
        let v = values_of(&d);
        let day = SAMPLES_PER_DAY;
        let a = &v[0..day * 10];
        let b = &v[day..day * 11];
        let corr = wms_math::stats::pearson(a, b).unwrap();
        assert!(corr > 0.3, "day-over-day correlation {corr}");
    }

    #[test]
    fn micro_fluctuations_create_dense_extremes() {
        // Real 2-minute telescope data has local extremes every handful of
        // samples; the watermark needs that density (see Figure 10a).
        let d = reference_dataset(11);
        let v = values_of(&d);
        let changes = crate::temperature::direction_changes(&v);
        let per_extreme = v.len() as f64 / changes as f64;
        assert!(
            (1.5..60.0).contains(&per_extreme),
            "items per raw extreme = {per_extreme}"
        );
    }

    #[test]
    fn custom_length() {
        let cfg = IrtfConfig {
            readings: 1000,
            ..IrtfConfig::default()
        };
        assert_eq!(generate(&cfg, 0).len(), 1000);
    }

    #[test]
    fn indices_consecutive() {
        let d = reference_dataset(3);
        for (i, s) in d.iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
    }
}
