//! Controllable synthetic temperature sensor.
//!
//! §6 of the paper: "We implemented also a temperature sensor synthetic
//! data stream generator with controllable parameters, including the
//! ability to adjust the data stream distribution, fluctuating behavior
//! (e.g. ξ(ν,δ)) and rate (ς)."
//!
//! [`OscillatingTemperature`] reproduces that: a quasi-periodic carrier
//! (controls the density of major extremes, hence ξ), slow random drift
//! (weather fronts), and AR(1) micro-noise (controls characteristic-subset
//! fatness relative to δ).

use wms_math::DetRng;
use wms_stream::{Sample, StreamSource};

/// Parameters of the synthetic temperature process.
#[derive(Debug, Clone, Copy)]
pub struct TemperatureConfig {
    /// Mean temperature level (°C).
    pub base: f64,
    /// Carrier amplitude (°C). Controls how pronounced extremes are.
    pub amplitude: f64,
    /// Carrier period in samples. One maximum + one minimum per period, so
    /// the major-extreme spacing ξ ≈ `period / 2` when noise is gentle.
    pub period: f64,
    /// Relative period jitter per cycle (0 = strictly periodic).
    pub period_jitter: f64,
    /// AR(1) noise standard deviation (°C).
    pub noise_std: f64,
    /// AR(1) coefficient in [0, 1); higher = smoother noise.
    pub noise_ar: f64,
    /// Std-dev of the slow random-walk drift increment (°C per sample).
    pub drift_std: f64,
}

impl Default for TemperatureConfig {
    fn default() -> Self {
        TemperatureConfig {
            base: 15.0,
            amplitude: 6.0,
            period: 200.0,
            period_jitter: 0.05,
            noise_std: 0.08,
            noise_ar: 0.9,
            drift_std: 0.002,
        }
    }
}

impl TemperatureConfig {
    /// Config tuned so that, at the workspace's reference (ν, δ) operating
    /// point, ξ(ν,δ) ≈ 100 — the paper's synthetic setting ("100 items per
    /// each major extreme").
    pub fn xi_100() -> Self {
        Self::default()
    }

    /// Config with a faster carrier (denser extremes, ξ ≈ 25).
    pub fn fast_fluctuation() -> Self {
        TemperatureConfig {
            period: 50.0,
            ..Self::default()
        }
    }
}

/// Deterministic synthetic temperature stream.
#[derive(Debug, Clone)]
pub struct OscillatingTemperature {
    cfg: TemperatureConfig,
    rng: DetRng,
    next_index: u64,
    phase: f64,
    phase_step: f64,
    noise: f64,
    drift: f64,
}

impl OscillatingTemperature {
    /// Creates the generator with an explicit seed.
    pub fn new(cfg: TemperatureConfig, seed: u64) -> Self {
        assert!(cfg.period > 1.0, "period must exceed one sample");
        assert!(
            (0.0..1.0).contains(&cfg.noise_ar),
            "AR coefficient in [0,1)"
        );
        let mut rng = DetRng::seed_from_u64(seed);
        let phase = rng.uniform(0.0, core::f64::consts::TAU);
        let phase_step = core::f64::consts::TAU / cfg.period;
        OscillatingTemperature {
            cfg,
            rng,
            next_index: 0,
            phase,
            phase_step,
            noise: 0.0,
            drift: 0.0,
        }
    }

    /// Generates exactly `n` values (convenience over the source trait).
    pub fn generate(cfg: TemperatureConfig, seed: u64, n: usize) -> Vec<Sample> {
        let mut src = Self::new(cfg, seed);
        src.take_samples(n)
    }

    fn step(&mut self) -> f64 {
        let c = &self.cfg;
        // Carrier with slowly wandering phase velocity.
        let jitter = 1.0 + c.period_jitter * self.rng.standard_normal() / c.period.sqrt();
        self.phase += self.phase_step * jitter.max(0.1);
        // AR(1) noise: x' = ar·x + sqrt(1−ar²)·σ·z keeps stationary std σ.
        let innov = (1.0 - c.noise_ar * c.noise_ar).sqrt() * c.noise_std;
        self.noise = c.noise_ar * self.noise + innov * self.rng.standard_normal();
        // Slow drift (weather front).
        self.drift += c.drift_std * self.rng.standard_normal();
        c.base + c.amplitude * self.phase.sin() + self.noise + self.drift
    }
}

impl StreamSource for OscillatingTemperature {
    fn next_sample(&mut self) -> Option<Sample> {
        let i = self.next_index;
        self.next_index += 1;
        let v = self.step();
        Some(Sample::new(i, v))
    }
}

/// Counts strict direction changes — a cheap proxy for extreme density
/// used to sanity-check configurations.
pub fn direction_changes(values: &[f64]) -> usize {
    let mut count = 0;
    for w in values.windows(3) {
        let up_then_down = w[1] > w[0] && w[1] > w[2];
        let down_then_up = w[1] < w[0] && w[1] < w[2];
        if up_then_down || down_then_up {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_math::summarize;
    use wms_stream::values_of;

    #[test]
    fn deterministic_for_same_seed() {
        let a = OscillatingTemperature::generate(TemperatureConfig::default(), 5, 500);
        let b = OscillatingTemperature::generate(TemperatureConfig::default(), 5, 500);
        assert_eq!(values_of(&a), values_of(&b));
    }

    #[test]
    fn seeds_differ() {
        let a = OscillatingTemperature::generate(TemperatureConfig::default(), 1, 100);
        let b = OscillatingTemperature::generate(TemperatureConfig::default(), 2, 100);
        assert_ne!(values_of(&a), values_of(&b));
    }

    #[test]
    fn values_near_configured_range() {
        let cfg = TemperatureConfig::default();
        let s = OscillatingTemperature::generate(cfg, 7, 10_000);
        let sum = summarize(&values_of(&s)).unwrap();
        // base ± amplitude with modest headroom for noise + drift.
        assert!(sum.min > cfg.base - cfg.amplitude - 3.0, "min {}", sum.min);
        assert!(sum.max < cfg.base + cfg.amplitude + 3.0, "max {}", sum.max);
        assert!((sum.mean - cfg.base).abs() < 2.0, "mean {}", sum.mean);
    }

    #[test]
    fn oscillates_at_roughly_configured_period() {
        // A pure-ish carrier: direction changes ≈ 2 per period.
        let cfg = TemperatureConfig {
            noise_std: 0.0,
            drift_std: 0.0,
            period_jitter: 0.0,
            ..TemperatureConfig::default()
        };
        let n = 10_000;
        let s = OscillatingTemperature::generate(cfg, 3, n);
        let changes = direction_changes(&values_of(&s));
        let expect = 2.0 * n as f64 / cfg.period;
        let rel = (changes as f64 - expect).abs() / expect;
        assert!(rel < 0.1, "changes {changes} vs expected {expect}");
    }

    #[test]
    fn noise_increases_extreme_density() {
        let quiet = TemperatureConfig {
            noise_std: 0.0,
            drift_std: 0.0,
            ..TemperatureConfig::default()
        };
        let noisy = TemperatureConfig {
            noise_std: 0.5,
            noise_ar: 0.3,
            ..quiet
        };
        let a = direction_changes(&values_of(&OscillatingTemperature::generate(
            quiet, 9, 5000,
        )));
        let b = direction_changes(&values_of(&OscillatingTemperature::generate(
            noisy, 9, 5000,
        )));
        assert!(b > a * 2, "noise should add extremes: {a} vs {b}");
    }

    #[test]
    fn indices_are_consecutive() {
        let s = OscillatingTemperature::generate(TemperatureConfig::default(), 11, 50);
        for (i, smp) in s.iter().enumerate() {
            assert_eq!(smp.index, i as u64);
        }
    }

    #[test]
    #[should_panic(expected = "period must exceed")]
    fn rejects_degenerate_period() {
        OscillatingTemperature::new(
            TemperatureConfig {
                period: 0.5,
                ..TemperatureConfig::default()
            },
            0,
        );
    }

    #[test]
    fn ar1_noise_is_stationary() {
        let cfg = TemperatureConfig {
            amplitude: 0.0,
            drift_std: 0.0,
            noise_std: 0.5,
            noise_ar: 0.95,
            ..TemperatureConfig::default()
        };
        let s = OscillatingTemperature::generate(cfg, 13, 50_000);
        let sum = summarize(&values_of(&s)).unwrap();
        assert!((sum.mean - cfg.base).abs() < 0.1, "mean {}", sum.mean);
        assert!((sum.std_dev - 0.5).abs() < 0.1, "std {}", sum.std_dev);
    }
}
