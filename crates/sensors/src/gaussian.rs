//! Smooth gaussian process source — the paper's synthetic baseline.
//!
//! §6: "the experimental results presented here refer to an underlying
//! normalized stream with values distributed normally with a mean of 0 and
//! a standard deviation of 0.5", with fluctuation ξ(ν,δ) ≈ 100.
//!
//! A single moving average of white noise does *not* control extreme
//! density: its increments are independent, so it still changes direction
//! every other sample. We therefore cascade **two** moving averages
//! (equivalently, convolve with a triangular kernel): increments of the
//! result are themselves moving averages of i.i.d. steps, hence strongly
//! positively correlated, and the process changes direction on the scale
//! of the kernel length. `smoothing` thus directly tunes extreme spacing
//! while the output is rescaled to exact target marginal moments.

use std::collections::VecDeque;
use wms_math::DetRng;
use wms_stream::{Sample, StreamSource};

/// Doubly-smoothed gaussian source with target marginal moments.
#[derive(Debug, Clone)]
pub struct SmoothGaussianSource {
    mean: f64,
    std_dev: f64,
    smoothing: usize,
    rng: DetRng,
    next_index: u64,
    /// First-stage window of raw normals and its running sum.
    w1: VecDeque<f64>,
    s1: f64,
    /// Second-stage window of first-stage sums and its running sum.
    w2: VecDeque<f64>,
    s2: f64,
    /// Rescale so the output std is exactly `std_dev`.
    gain: f64,
}

impl SmoothGaussianSource {
    /// Creates a source with marginal `N(mean, std_dev²)`; `smoothing ≥ 1`
    /// is the MA kernel length of each cascade stage (1 = white noise).
    pub fn new(mean: f64, std_dev: f64, smoothing: usize, seed: u64) -> Self {
        assert!(smoothing >= 1, "smoothing must be >= 1");
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let k = smoothing;
        // Effective kernel = triangle of length 2k−1 with weights
        // c_j = min(j+1, 2k−1−j, k)/k²; output variance of unit normals
        // is Σ c_j².
        let mut var = 0.0f64;
        for j in 0..(2 * k - 1) {
            let c = ((j + 1).min(2 * k - 1 - j).min(k)) as f64 / (k * k) as f64;
            var += c * c;
        }
        let gain = if var > 0.0 { std_dev / var.sqrt() } else { 0.0 };

        let mut rng = DetRng::seed_from_u64(seed);
        let mut w1 = VecDeque::with_capacity(k);
        let mut s1 = 0.0;
        for _ in 0..k {
            let z = rng.standard_normal();
            s1 += z;
            w1.push_back(z);
        }
        let mut w2 = VecDeque::with_capacity(k);
        let mut s2 = 0.0;
        let mut me = SmoothGaussianSource {
            mean,
            std_dev,
            smoothing: k,
            rng,
            next_index: 0,
            w1,
            s1,
            w2: VecDeque::new(),
            s2: 0.0,
            gain,
        };
        // Prime the second stage with k first-stage sums.
        for _ in 0..k {
            let v = me.s1;
            s2 += v;
            w2.push_back(v);
            me.advance_stage1();
        }
        me.w2 = w2;
        me.s2 = s2;
        me
    }

    fn advance_stage1(&mut self) {
        let old = self.w1.pop_front().expect("stage-1 kernel never empty");
        self.s1 -= old;
        let z = self.rng.standard_normal();
        self.s1 += z;
        self.w1.push_back(z);
    }

    /// Paper defaults: mean 0, std 0.5.
    pub fn paper_default(smoothing: usize, seed: u64) -> Self {
        Self::new(0.0, 0.5, smoothing, seed)
    }

    /// Generates exactly `n` samples.
    pub fn generate(mean: f64, std_dev: f64, smoothing: usize, seed: u64, n: usize) -> Vec<Sample> {
        let mut s = Self::new(mean, std_dev, smoothing, seed);
        s.take_samples(n)
    }

    /// Configured marginal mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Configured marginal standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Configured per-stage kernel length.
    pub fn smoothing(&self) -> usize {
        self.smoothing
    }
}

impl StreamSource for SmoothGaussianSource {
    fn next_sample(&mut self) -> Option<Sample> {
        let i = self.next_index;
        self.next_index += 1;
        let k2 = (self.smoothing * self.smoothing) as f64;
        let value = self.mean + self.gain * (self.s2 / k2);
        // Slide stage 2 by one (consuming one new stage-1 sum).
        let old = self.w2.pop_front().expect("stage-2 kernel never empty");
        self.s2 -= old;
        let fresh = self.s1;
        self.s2 += fresh;
        self.w2.push_back(fresh);
        self.advance_stage1();
        Some(Sample::new(i, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temperature::direction_changes;
    use wms_math::summarize;
    use wms_stream::values_of;

    #[test]
    fn moments_match_configuration() {
        let s = SmoothGaussianSource::generate(0.0, 0.5, 25, 42, 300_000);
        let sum = summarize(&values_of(&s)).unwrap();
        assert!(sum.mean.abs() < 0.05, "mean {}", sum.mean);
        assert!((sum.std_dev - 0.5).abs() < 0.06, "std {}", sum.std_dev);
    }

    #[test]
    fn shifted_moments() {
        let s = SmoothGaussianSource::generate(10.0, 2.0, 10, 7, 200_000);
        let sum = summarize(&values_of(&s)).unwrap();
        assert!((sum.mean - 10.0).abs() < 0.3);
        assert!((sum.std_dev - 2.0).abs() < 0.2);
    }

    #[test]
    fn smoothing_reduces_extreme_density() {
        let rough = SmoothGaussianSource::generate(0.0, 0.5, 1, 3, 20_000);
        let smooth = SmoothGaussianSource::generate(0.0, 0.5, 50, 3, 20_000);
        let dr = direction_changes(&values_of(&rough));
        let ds = direction_changes(&values_of(&smooth));
        assert!(
            ds * 3 < dr,
            "smoothing should cut extreme density: rough {dr}, smooth {ds}"
        );
    }

    #[test]
    fn extreme_spacing_scales_with_smoothing() {
        let n = 50_000;
        let mut prev_changes = usize::MAX;
        for k in [2usize, 8, 32] {
            let s = SmoothGaussianSource::generate(0.0, 0.5, k, 5, n);
            let c = direction_changes(&values_of(&s));
            assert!(c < prev_changes, "k={k}: {c} !< {prev_changes}");
            prev_changes = c;
        }
    }

    #[test]
    fn deterministic() {
        let a = SmoothGaussianSource::generate(0.0, 0.5, 10, 9, 1000);
        let b = SmoothGaussianSource::generate(0.0, 0.5, 10, 9, 1000);
        assert_eq!(values_of(&a), values_of(&b));
    }

    #[test]
    fn white_noise_special_case() {
        // smoothing = 1 is plain iid gaussian noise.
        let s = SmoothGaussianSource::generate(0.0, 1.0, 1, 11, 100_000);
        let sum = summarize(&values_of(&s)).unwrap();
        assert!((sum.std_dev - 1.0).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "smoothing must be >= 1")]
    fn rejects_zero_smoothing() {
        SmoothGaussianSource::new(0.0, 0.5, 0, 0);
    }
}
