//! End-to-end pipeline benchmarks: full-stream embedding and detection
//! throughput (items/second), plus the attack transforms themselves.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use wms_attacks::{EpsilonAttack, Summarization, UniformSampling};
use wms_bench::{datasets, exp};
use wms_core::encoding::initial::InitialEncoder;
use wms_core::{Embedder, TransformHint, Watermark, WmParams};
use wms_stream::Transform;

fn bench_embedding(c: &mut Criterion) {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let mut g = c.benchmark_group("pipeline-embed");
    g.sample_size(10);
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("initial encoder 5k items", |b| {
        b.iter(|| {
            Embedder::embed_stream(
                exp::scheme(exp::irtf_params()),
                Arc::new(InitialEncoder),
                Watermark::single(true),
                black_box(&data),
            )
            .unwrap()
        })
    });
    let reduced = WmParams {
        min_active: Some(12),
        ..exp::irtf_params()
    };
    g.bench_function("multihash min_active=12 5k items", |b| {
        b.iter(|| {
            Embedder::embed_stream(
                exp::scheme(reduced),
                exp::encoder(),
                Watermark::single(true),
                black_box(&data),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, _, _) = exp::embed_true(&scheme, &enc, &data);
    let mut g = c.benchmark_group("pipeline-detect");
    g.throughput(Throughput::Elements(marked.len() as u64));
    g.bench_function("multihash 5k items", |b| {
        b.iter(|| exp::detect(&scheme, &enc, black_box(&marked), TransformHint::None))
    });
    g.finish();
}

fn bench_attacks(c: &mut Criterion) {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let mut g = c.benchmark_group("attacks");
    g.throughput(Throughput::Elements(data.len() as u64));
    g.bench_function("uniform sampling deg 4", |b| {
        b.iter(|| UniformSampling::new(4, 7).apply(black_box(&data)))
    });
    g.bench_function("summarization deg 4", |b| {
        b.iter(|| Summarization::new(4).apply(black_box(&data)))
    });
    g.bench_function("epsilon 50%/10%", |b| {
        b.iter(|| EpsilonAttack::uniform(0.5, 0.1, 7).apply(black_box(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_embedding, bench_detection, bench_attacks);
criterion_main!(benches);
