//! Micro-benchmarks of the cryptographic substrate: raw digests and the
//! keyed construction — the dominant cost inside the multi-hash search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wms_crypto::{Key, KeyedHash, Md5, Sha1, Sha256};

fn bench_digests(c: &mut Criterion) {
    let mut g = c.benchmark_group("digest");
    for size in [32usize, 256, 4096] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("md5", size), &data, |b, d| {
            b.iter(|| Md5::digest(black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(black_box(d)))
        });
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| Sha256::digest(black_box(d)))
        });
    }
    g.finish();
}

fn bench_keyed(c: &mut Criterion) {
    let mut g = c.benchmark_group("keyed-hash");
    let kh = KeyedHash::md5(Key::from_u64(42));
    let msg = [0x5au8; 40]; // typical convention-code message size
    g.bench_function("md5 hash_u64 (40B)", |b| {
        b.iter(|| kh.hash_u64(black_box(&msg)))
    });
    g.bench_function("md5 hash_mod (40B)", |b| {
        b.iter(|| kh.hash_mod(black_box(&msg), 13))
    });
    let sha = KeyedHash::sha256(Key::from_u64(42));
    g.bench_function("sha256 hash_u64 (40B)", |b| {
        b.iter(|| sha.hash_u64(black_box(&msg)))
    });
    g.finish();
}

criterion_group!(benches, bench_digests, bench_keyed);
criterion_main!(benches);
