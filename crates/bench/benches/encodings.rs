//! Benchmarks of the three subset encodings (§6.4's cost comparison):
//! per-subset embed and detect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wms_bench::exp;
use wms_core::encoding::initial::InitialEncoder;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::encoding::quadres::QuadResEncoder;
use wms_core::encoding::SubsetEncoder;
use wms_core::{Label, WmParams};

fn subset(a: usize) -> Vec<f64> {
    (0..a)
        .map(|k| 0.31 - 0.0008 * (k as f64 - a as f64 / 2.0).powi(2))
        .collect()
}

fn label() -> Label {
    Label::from_parts(0b1_0110_1001, 9)
}

fn bench_embed(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding-embed");
    g.sample_size(10);
    let scheme = exp::scheme(exp::irtf_params());
    let vals = subset(5);
    g.bench_function("initial a=5", |b| {
        b.iter(|| InitialEncoder.embed(black_box(&scheme), &vals, 2, &label(), true))
    });
    let qr = QuadResEncoder::from_scheme(&scheme, 3);
    g.bench_function("quadres k=3 a=5", |b| {
        b.iter(|| qr.embed(black_box(&scheme), &vals, 2, &label(), true))
    });
    for a in [3usize, 4] {
        let s = exp::scheme(WmParams {
            max_subset: a,
            ..exp::irtf_params()
        });
        let v = subset(a);
        g.bench_with_input(BenchmarkId::new("multihash-full", a), &v, |b, v| {
            b.iter(|| MultiHashEncoder.embed(black_box(&s), v, a / 2, &label(), true))
        });
    }
    let reduced = exp::scheme(WmParams {
        min_active: Some(12),
        ..exp::irtf_params()
    });
    g.bench_function("multihash min_active=12 a=5", |b| {
        b.iter(|| MultiHashEncoder.embed(black_box(&reduced), &vals, 2, &label(), true))
    });
    g.finish();
}

fn bench_detect(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding-detect");
    let scheme = exp::scheme(exp::irtf_params());
    let vals = subset(5);
    g.bench_function("initial a=5", |b| {
        b.iter(|| InitialEncoder.detect(black_box(&scheme), &vals, &label()))
    });
    g.bench_function("multihash a=5", |b| {
        b.iter(|| MultiHashEncoder.detect(black_box(&scheme), &vals, &label()))
    });
    let qr = QuadResEncoder::from_scheme(&scheme, 3);
    g.bench_function("quadres k=3 a=5", |b| {
        b.iter(|| qr.detect(black_box(&scheme), &vals, &label()))
    });
    g.finish();
}

criterion_group!(benches, bench_embed, bench_detect);
criterion_main!(benches);
