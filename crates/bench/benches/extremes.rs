//! Benchmarks of the extremes/characteristic-subset scanner — the
//! per-window cost shared by embedder and detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use wms_bench::datasets;
use wms_core::extremes;
use wms_stream::values_of;

fn bench_scan(c: &mut Criterion) {
    let (data, _) = datasets::irtf_normalized();
    let values = values_of(&data);
    let mut g = c.benchmark_group("extremes");
    for window in [2048usize, 8192] {
        let slice = &values[..window];
        g.throughput(Throughput::Elements(window as u64));
        g.bench_with_input(BenchmarkId::new("scan", window), &slice, |b, s| {
            b.iter(|| extremes::scan(black_box(s), 0.025))
        });
        g.bench_with_input(BenchmarkId::new("scan_major", window), &slice, |b, s| {
            b.iter(|| extremes::scan_major(black_box(s), 0.025, 12))
        });
    }
    g.bench_function("measure_xi full dataset", |b| {
        b.iter(|| extremes::measure_xi(black_box(&values), 0.025, 12))
    });
    g.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
