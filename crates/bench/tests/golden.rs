//! Golden-equality tests for the hot-path overhaul: the optimized
//! pipeline (memoized convention codes, midstate keyed hashing,
//! allocation-free scratch buffers, push-path reuse) must be
//! **bit-identical** to the naive reference implementation — embedding is
//! deterministic per key + label, so any divergence is a bug, not noise.

use std::sync::Arc;
use wms_bench::reference::NaiveMultiHashEncoder;
use wms_bench::{datasets, exp};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{
    DetectionReport, Detector, Embedder, Scheme, SubsetEncoder, TransformHint, Watermark, WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_stream::Sample;

/// A fast-but-representative configuration on the IRTF prefix (11 of 15
/// active averages keeps debug-build search cost reasonable).
fn params() -> WmParams {
    WmParams {
        min_active: Some(11),
        ..exp::irtf_params()
    }
}

fn value_bits(stream: &[Sample]) -> Vec<u64> {
    stream.iter().map(|s| s.value.to_bits()).collect()
}

fn embed(scheme: &Scheme, enc: Arc<dyn SubsetEncoder>, data: &[Sample]) -> Vec<Sample> {
    let (out, stats) =
        Embedder::embed_stream(scheme.clone(), enc, Watermark::single(true), data).unwrap();
    assert!(stats.embedded > 5, "fixture must actually embed: {stats:?}");
    out
}

fn detect(scheme: &Scheme, enc: Arc<dyn SubsetEncoder>, data: &[Sample]) -> DetectionReport {
    Detector::detect_stream(scheme.clone(), enc, 1, data, TransformHint::None).unwrap()
}

/// End-to-end golden run for one keyed hash: optimized embed vs naive
/// embed (also with the midstate fast path disabled) must agree bit for
/// bit, and detection buckets must match across all four combinations.
fn golden_roundtrip(make_hash: fn(Key) -> KeyedHash) {
    let (data, _) = datasets::irtf_normalized_prefix(3000);
    let scheme = Scheme::new(params(), make_hash(Key::from_u64(exp::EXPERIMENT_KEY))).unwrap();
    let scheme_no_mid = scheme.with_hash(scheme.hash.without_midstate());

    let fast = embed(&scheme, Arc::new(MultiHashEncoder), &data);
    let naive = embed(&scheme_no_mid, Arc::new(NaiveMultiHashEncoder), &data);
    assert_eq!(
        value_bits(&fast),
        value_bits(&naive),
        "optimized and naive embeddings must be bit-identical"
    );
    // Cross: optimized encoder without midstate, naive with midstate.
    let fast_no_mid = embed(&scheme_no_mid, Arc::new(MultiHashEncoder), &data);
    assert_eq!(value_bits(&fast), value_bits(&fast_no_mid));
    let naive_mid = embed(&scheme, Arc::new(NaiveMultiHashEncoder), &data);
    assert_eq!(value_bits(&fast), value_bits(&naive_mid));

    let r_fast = detect(&scheme, Arc::new(MultiHashEncoder), &fast);
    let r_naive = detect(&scheme_no_mid, Arc::new(NaiveMultiHashEncoder), &fast);
    assert_eq!(
        r_fast.buckets, r_naive.buckets,
        "detection buckets must match the reference"
    );
    assert_eq!(r_fast.selected, r_naive.selected);
    assert_eq!(r_fast.verdicts, r_naive.verdicts);
    assert_eq!(r_fast.abstained, r_naive.abstained);
    assert!(r_fast.bias() > 0, "the mark must be detectable");
}

#[test]
fn golden_equality_md5() {
    golden_roundtrip(KeyedHash::md5);
}

#[test]
fn golden_equality_sha256() {
    golden_roundtrip(KeyedHash::sha256);
}

#[test]
fn golden_push_into_matches_push() {
    // The buffer-reusing push path must emit exactly what the legacy
    // per-sample-Vec path emits, sample for sample.
    let (data, _) = datasets::irtf_normalized_prefix(2500);
    let scheme = exp::scheme(params());
    let mk = || {
        Embedder::new(
            scheme.clone(),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap()
    };
    // The deprecated wrappers are the very thing under test here: the
    // reusing path must stay bit-identical to them.
    #[allow(deprecated)]
    let (legacy_out, legacy_stats) = {
        let mut legacy = mk();
        let mut legacy_out = Vec::new();
        for &s in &data {
            legacy_out.extend(legacy.push(s));
        }
        legacy_out.extend(legacy.finish());
        (legacy_out, *legacy.stats())
    };

    let mut reusing = mk();
    let mut out = Vec::with_capacity(data.len());
    for &s in &data {
        reusing.push_into(s, &mut out);
    }
    reusing.finish_into(&mut out);

    assert_eq!(value_bits(&out), value_bits(&legacy_out));
    assert_eq!(legacy_stats, *reusing.stats());
}
