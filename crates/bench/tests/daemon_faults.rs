//! Fault-injection suite for the WMSP daemon: every transport fault
//! surfaces as a typed error or NACK, and **no fault schedule changes a
//! single byte of the daemon's output**.
//!
//! Each test runs the daemon in-process over a loopback TCP socket,
//! injects one fault family via [`wms_bench::daemonfault`], completes
//! the batch schedule honestly (reconnecting where the fault costs the
//! connection), and byte-compares the output file against
//! [`wms_bench::testkit::engine_reference_output`] — the same engine
//! driven directly, no network at all.

use std::path::PathBuf;
use std::time::Duration;
use wms_bench::daemonfault::{plan, send, Fault};
use wms_bench::testkit::{engine_reference_output, raw_wave_events, test_embed, test_identity};
use wms_daemon::proto::batch_frame;
use wms_daemon::{
    BatchReply, Client, ClientError, DaemonConfig, DaemonError, Endpoint, Outcome, OverloadPolicy,
    RunReport, Server,
};
use wms_engine::{EngineConfig, Event};

const KEY: u64 = 4242;

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("wmsd-fault-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }

    fn path(&self, f: &str) -> PathBuf {
        self.0.join(f)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_config(scratch: &Scratch) -> DaemonConfig {
    DaemonConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        scratch.path("out.csv"),
        EngineConfig::with_workers(1),
        test_embed(KEY),
        test_identity(KEY),
    )
}

/// Binds (resolving the ephemeral port), runs the server on a thread,
/// and returns the connectable endpoint plus the join handle.
fn start(
    cfg: DaemonConfig,
) -> (
    Endpoint,
    std::thread::JoinHandle<Result<RunReport, DaemonError>>,
) {
    let server = Server::bind(cfg).expect("bind");
    let ep = Endpoint::parse(server.local_desc()).expect("parse bound endpoint");
    (ep, std::thread::spawn(move || server.run()))
}

fn connect(ep: &Endpoint) -> (Client, wms_daemon::Greeting) {
    Client::connect_retry(ep, "fault-suite", Duration::from_secs(5)).expect("connect")
}

fn fixture() -> (Vec<Event>, Vec<u8>) {
    let events = raw_wave_events(&[3, 8, 21], 220);
    let batches: Vec<&[Event]> = events.chunks(64).collect();
    let reference = engine_reference_output(&test_embed(KEY), &batches);
    (events, reference)
}

#[test]
fn hostile_chunking_never_changes_an_output_byte() {
    for split in [1usize, 9] {
        let scratch = Scratch::new(&format!("split{split}"));
        let (events, reference) = fixture();
        let batches: Vec<&[Event]> = events.chunks(64).collect();

        let (ep, handle) = start(base_config(&scratch));
        let (mut client, _) = connect(&ep);
        // The entire schedule as one byte stream, delivered in
        // `split`-byte fragments — every frame boundary is violated.
        let wire: Vec<u8> = batches
            .iter()
            .enumerate()
            .flat_map(|(i, b)| batch_frame(i as u64 + 1, b))
            .collect();
        send(client.conn_mut(), &plan(&wire, &Fault::SplitEvery(split))).expect("inject");
        for _ in &batches {
            match client.read_reply().expect("reply") {
                (_, BatchReply::Acked { .. }) => {}
                (seq, other) => panic!("batch {seq} refused: {other:?}"),
            }
        }
        client.drain().expect("drain");
        let report = handle.join().unwrap().expect("server run");
        assert_eq!(report.outcome, Outcome::Drained);
        assert_eq!(report.batches, batches.len() as u64);

        let got = std::fs::read(scratch.path("out.csv")).unwrap();
        assert_eq!(
            got, reference,
            "split-every-{split} delivery changed the output"
        );
    }
}

#[test]
fn truncated_frame_is_a_typed_error_and_costs_only_the_connection() {
    let scratch = Scratch::new("truncate");
    let (events, reference) = fixture();
    let batches: Vec<&[Event]> = events.chunks(64).collect();

    let (ep, handle) = start(base_config(&scratch));
    let (mut client, _) = connect(&ep);
    // Three honest batches, then a frame cut off mid-payload and EOF.
    for (i, batch) in batches[..3].iter().enumerate() {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("honest batch refused: {other:?}"),
        }
    }
    let torn = batch_frame(4, batches[3]);
    send(
        client.conn_mut(),
        &plan(&torn, &Fault::TruncateAfter(torn.len() / 2)),
    )
    .expect("inject");
    drop(client); // EOF mid-frame: the reader reports Truncated and hangs up
                  // The daemon survives: a fresh connection sees exactly the three
                  // acked batches and finishes the schedule.
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 3, "torn batch 4 must not be applied");
    for (i, batch) in batches.iter().enumerate().skip(3) {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.batches, batches.len() as u64);
    assert_eq!(report.connections, 2);

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(got, reference, "truncation fault changed the output");
}

#[test]
fn corrupted_byte_gets_a_bad_frame_nack_and_an_honest_retry_converges() {
    let scratch = Scratch::new("corrupt");
    let (events, reference) = fixture();
    let batches: Vec<&[Event]> = events.chunks(64).collect();

    let (ep, handle) = start(base_config(&scratch));
    let (mut client, _) = connect(&ep);
    for (i, batch) in batches[..2].iter().enumerate() {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("honest batch refused: {other:?}"),
        }
    }
    // Batch 3 with one payload byte flipped: CRC catches it, the reader
    // answers BAD_FRAME (code 1) and hangs up on the now-unframeable
    // stream.
    let wire = batch_frame(3, batches[2]);
    send(
        client.conn_mut(),
        &plan(
            &wire,
            &Fault::CorruptByte {
                offset: 15,
                mask: 0x20,
            },
        ),
    )
    .expect("inject");
    match client.read_reply() {
        Err(ClientError::Nack { code: 1, .. }) => {}
        other => panic!("corrupt frame should NACK with BAD_FRAME, got {other:?}"),
    }
    // Honest replay from where the server actually is.
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 2, "corrupt batch 3 must not be applied");
    for (i, batch) in batches.iter().enumerate().skip(2) {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }
    client.drain().expect("drain");
    handle.join().unwrap().expect("server run");

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(got, reference, "corruption fault changed the output");
}

#[test]
fn half_open_stall_is_reaped_and_service_continues() {
    let scratch = Scratch::new("stall");
    let (events, reference) = fixture();
    let batches: Vec<&[Event]> = events.chunks(64).collect();

    let mut cfg = base_config(&scratch);
    cfg.read_timeout = Duration::from_millis(25);
    cfg.idle_timeout = Duration::from_millis(150);
    let (ep, handle) = start(cfg);

    // The stalling peer: half a frame, then silence longer than the
    // idle timeout. The reaper must cut it loose.
    let (mut staller, _) = connect(&ep);
    let wire = batch_frame(1, batches[0]);
    send(
        staller.conn_mut(),
        &plan(&wire, &Fault::TruncateAfter(wire.len() / 3)),
    )
    .expect("inject");
    // Reaped: EOF or a reset, either is fine — but never a reply.
    if let Ok(reply) = staller.read_reply() {
        panic!("half-open peer should be reaped, got {reply:?}");
    }

    // An honest client is unaffected — and the stalled partial frame
    // was never applied.
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 0);
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.connections, 2);

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(got, reference, "half-open stall changed the output");
}

#[test]
fn flood_past_the_queue_bound_sheds_typed_nacks_and_retry_converges() {
    let scratch = Scratch::new("flood");
    let (events, reference) = fixture();
    let batches: Vec<&[Event]> = events.chunks(64).collect();

    let mut cfg = base_config(&scratch);
    cfg.overload = OverloadPolicy::Shed;
    cfg.queue_depth = 1;
    cfg.ingest_delay = Duration::from_millis(40); // make overflow certain
    let (ep, handle) = start(cfg);
    let (mut client, _) = connect(&ep);

    // Flood: every batch written back-to-back, no replies read. The
    // bounded queue must refuse the overflow with OVERLOADED NACKs —
    // never by silently dropping.
    for (i, batch) in batches.iter().enumerate() {
        client
            .write_raw(&batch_frame(i as u64 + 1, batch))
            .expect("flood write");
    }
    // One verdict arrives per write. A shed can open a sequence hole
    // (a later batch slips into the freed queue slot and the engine
    // refuses it as a GAP), so refusals are collected per round and
    // resent in ascending order once every in-flight reply is in —
    // exactly what a production sender with a journal would do.
    let mut outstanding: std::collections::BTreeSet<u64> = (1..=batches.len() as u64).collect();
    let mut in_flight = batches.len();
    let mut resend: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    while !outstanding.is_empty() {
        let (seq, reply) = client.read_reply().expect("reply");
        in_flight -= 1;
        match reply {
            BatchReply::Acked { .. } | BatchReply::Stale => {
                outstanding.remove(&seq);
            }
            BatchReply::Shed | BatchReply::Gap => {
                resend.insert(seq);
            }
            BatchReply::Draining => panic!("nothing requested a drain"),
        }
        if in_flight == 0 && !outstanding.is_empty() {
            for &seq in &resend {
                client
                    .write_raw(&batch_frame(seq, batches[seq as usize - 1]))
                    .expect("retry write");
                in_flight += 1;
            }
            assert!(in_flight > 0, "refused batches vanished without a verdict");
            resend.clear();
        }
    }
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert!(report.shed >= 1, "flood never overflowed the queue");
    assert_eq!(report.batches, batches.len() as u64);

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(got, reference, "shed-and-retry schedule changed the output");
}
