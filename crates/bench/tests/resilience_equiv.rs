//! Single-stream ↔ engine-path campaign equivalence, and the committed
//! grid's qualitative resilience pattern.
//!
//! The resilience campaign runs the same embed → attack → detect cells
//! through two very different machineries: per-stream
//! `Embedder`/`Detector` loops and the sharded multi-stream engine. The
//! contract is that every cell agrees *exactly* — same streams detected,
//! same biases, same rates — whatever the worker count or batch size,
//! because the two paths share the stream population, the attack code
//! and the per-cell RNG seed, and the engine is bit-identical per
//! stream. That exactness is what lets `bench_check` gate CI on
//! equality floors.

use wms_attacks::AttackSpec;
use wms_bench::resilience::{run_campaign, smoke_grid, Campaign, CellResult, PathKind};

fn tiny_campaign(workers: usize, batch: usize) -> Campaign {
    Campaign {
        items: 1200,
        trials: 2,
        workers,
        batch,
        ..Campaign::default()
    }
}

/// The deterministic projection of a cell (drops wall-clock throughput).
fn det(cell: &CellResult) -> (String, String, usize, usize, f64, f64, f64) {
    (
        cell.scheme.clone(),
        cell.attack.clone(),
        cell.streams_total,
        cell.streams_detected,
        cell.detection_rate,
        cell.bit_error_rate,
        cell.mean_bias,
    )
}

#[test]
fn single_and_engine_paths_agree_cell_for_cell() {
    // A grid exercising per-stream randomness (sample), flow-level
    // restructuring (splice) and value alteration (epsilon).
    let grid = [
        AttackSpec::Identity,
        AttackSpec::Sample { degree: 2 },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.05,
        },
        AttackSpec::Splice { segment: 300 },
    ];
    let reference: Vec<_> =
        run_campaign(&tiny_campaign(1, 256), &grid, "multihash", PathKind::Single)
            .unwrap()
            .iter()
            .map(det)
            .collect();

    for workers in [1usize, 2, 3] {
        for batch in [7usize, 256, 10_000] {
            let engine_cells: Vec<_> = run_campaign(
                &tiny_campaign(workers, batch),
                &grid,
                "multihash",
                PathKind::Engine,
            )
            .unwrap()
            .iter()
            .map(det)
            .collect();
            assert_eq!(
                engine_cells, reference,
                "engine path diverged at workers={workers} batch={batch}"
            );
        }
    }
}

#[test]
fn paths_agree_across_encoders() {
    let grid = [AttackSpec::Summarize { degree: 2 }];
    for encoder in ["multihash", "initial", "quadres"] {
        let single: Vec<_> = run_campaign(&tiny_campaign(2, 128), &grid, encoder, PathKind::Single)
            .unwrap()
            .iter()
            .map(det)
            .collect();
        let engine: Vec<_> = run_campaign(&tiny_campaign(2, 128), &grid, encoder, PathKind::Engine)
            .unwrap()
            .iter()
            .map(det)
            .collect();
        assert_eq!(single, engine, "encoder {encoder} diverged across paths");
    }
}

/// The committed smoke grid reproduces the paper's qualitative result on
/// the default campaign population (the exact numbers CI's regression
/// gate pins): full detection under 50 % sampling and paper-default
/// summarization, monotone degradation along the ε-amplitude sweep.
#[test]
fn committed_grid_reproduces_paper_pattern() {
    let campaign = Campaign::default();
    let cells = run_campaign(&campaign, &smoke_grid(), "multihash", PathKind::Single).unwrap();
    let rate = |attack: &str| {
        cells
            .iter()
            .find(|c| c.attack == attack)
            .unwrap_or_else(|| panic!("cell {attack} missing"))
            .detection_rate
    };

    // Sampling up to 50 % and paper-default summarization: fully detected.
    assert!(rate("sample:2") >= 0.99, "sample:2 {}", rate("sample:2"));
    assert!(rate("sample:3") >= 0.99, "sample:3 {}", rate("sample:3"));
    assert!(
        rate("summarize:2") >= 0.99,
        "summarize:2 {}",
        rate("summarize:2")
    );
    assert!(rate("identity") >= 0.99);
    assert_eq!(rate("splice:1000"), 1.0, "splice cell lost the mark");

    // Detection degrades monotonically with alteration amplitude.
    let eps: Vec<f64> = cells
        .iter()
        .filter(|c| c.family == "epsilon")
        .map(|c| c.detection_rate)
        .collect();
    assert!(eps.len() >= 3, "epsilon sweep too short: {eps:?}");
    for pair in eps.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-9,
            "epsilon sweep not monotone: {eps:?}"
        );
    }
    assert!(
        *eps.last().unwrap() < eps[0],
        "epsilon sweep never degrades: {eps:?}"
    );

    // Harsher sampling/summarization eventually degrades too — the grid
    // is not trivially saturated.
    assert!(rate("sample:5") < 1.0);
    assert!(rate("summarize:4") < 1.0);
}
