//! Telemetry integration suite: the daemon's metrics must *agree with
//! the wire*. Every typed reply the fault-injection client observes —
//! ACKs, shed `OVERLOADED` NACKs, `GAP` refusals — has a counter, and
//! this suite drives a hostile schedule, tallies the replies
//! client-side, then asserts the `STATS` exposition reports exactly the
//! same numbers. A metrics layer that drifts from the protocol it
//! describes is worse than none.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::time::Duration;
use wms_bench::testkit::{raw_wave_events, test_embed, test_identity};
use wms_daemon::proto::batch_frame;
use wms_daemon::{
    BatchReply, Client, DaemonConfig, DaemonError, Endpoint, Outcome, OverloadPolicy, RunReport,
    Server,
};
use wms_engine::{EngineConfig, Event};

const KEY: u64 = 4242;

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("wmsd-stats-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }

    fn path(&self, f: &str) -> PathBuf {
        self.0.join(f)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_config(scratch: &Scratch) -> DaemonConfig {
    DaemonConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        scratch.path("out.csv"),
        EngineConfig::with_workers(1),
        test_embed(KEY),
        test_identity(KEY),
    )
}

fn start(
    cfg: DaemonConfig,
) -> (
    Endpoint,
    Option<String>,
    std::thread::JoinHandle<Result<RunReport, DaemonError>>,
) {
    let server = Server::bind(cfg).expect("bind");
    let ep = Endpoint::parse(server.local_desc()).expect("parse bound endpoint");
    let metrics = server.metrics_local_desc().map(str::to_string);
    (ep, metrics, std::thread::spawn(move || server.run()))
}

/// Extracts the value of one series (exact name, including any
/// `{label="..."}` suffix) from a text exposition.
fn series(text: &str, name: &str) -> u64 {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(v) = rest.strip_prefix(' ') {
                return v
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("series {name} has a non-integer value: {v:?}"));
            }
        }
    }
    panic!("series {name} not found in exposition:\n{text}");
}

/// The flood schedule from the fault suite, instrumented: every typed
/// reply is tallied client-side, then `STATS` must report the same
/// counts — sheds, overloaded/gap/stale NACK codes, batch frames,
/// ingested events.
#[test]
fn stats_counters_agree_with_typed_replies() {
    let scratch = Scratch::new("agree");
    let events = raw_wave_events(&[3, 8, 21], 220);
    let batches: Vec<&[Event]> = events.chunks(64).collect();

    let mut cfg = base_config(&scratch);
    cfg.overload = OverloadPolicy::Shed;
    cfg.queue_depth = 1;
    cfg.ingest_delay = Duration::from_millis(40); // make overflow certain
    let (ep, _, handle) = start(cfg);
    let (mut client, _) =
        Client::connect_retry(&ep, "stats-suite", Duration::from_secs(5)).expect("connect");

    let mut frames_written = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        client
            .write_raw(&batch_frame(i as u64 + 1, batch))
            .expect("flood write");
        frames_written += 1;
    }
    let (mut sheds, mut gaps, mut stales) = (0u64, 0u64, 0u64);
    let mut outstanding: std::collections::BTreeSet<u64> = (1..=batches.len() as u64).collect();
    let mut in_flight = batches.len();
    let mut resend: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    while !outstanding.is_empty() {
        let (seq, reply) = client.read_reply().expect("reply");
        in_flight -= 1;
        match reply {
            BatchReply::Acked { .. } => {
                outstanding.remove(&seq);
            }
            BatchReply::Stale => {
                stales += 1;
                outstanding.remove(&seq);
            }
            BatchReply::Shed => {
                sheds += 1;
                resend.insert(seq);
            }
            BatchReply::Gap => {
                gaps += 1;
                resend.insert(seq);
            }
            BatchReply::Draining => panic!("nothing requested a drain"),
        }
        if in_flight == 0 && !outstanding.is_empty() {
            for &seq in &resend {
                client
                    .write_raw(&batch_frame(seq, batches[seq as usize - 1]))
                    .expect("retry write");
                frames_written += 1;
                in_flight += 1;
            }
            assert!(in_flight > 0, "refused batches vanished without a verdict");
            resend.clear();
        }
    }
    assert!(sheds >= 1, "flood never overflowed the queue");

    // Every batch is acked, nothing is in flight: the counters must
    // match the replies this client just tallied, exactly.
    let text = client.stats().expect("stats");
    assert_eq!(series(&text, "wms_daemon_sheds_total"), sheds);
    assert_eq!(
        series(&text, "wms_daemon_nacks_total{code=\"overloaded\"}"),
        sheds,
        "every shed is an OVERLOADED NACK and vice versa"
    );
    assert_eq!(series(&text, "wms_daemon_nacks_total{code=\"gap\"}"), gaps);
    assert_eq!(
        series(&text, "wms_daemon_nacks_total{code=\"stale\"}"),
        stales
    );
    assert_eq!(
        series(&text, "wms_daemon_frames_total{type=\"batch\"}"),
        frames_written
    );
    assert_eq!(series(&text, "wms_daemon_connections_total"), 1);
    assert_eq!(
        series(&text, "wms_engine_batches_total"),
        batches.len() as u64,
        "engine sees each accepted batch exactly once"
    );
    assert_eq!(
        series(&text, "wms_engine_items_total"),
        events.len() as u64,
        "every event was ingested exactly once despite sheds and gaps"
    );
    assert_eq!(series(&text, "wms_daemon_queue_depth"), 0);
    assert_eq!(series(&text, "wms_daemon_inflight_acks"), 0);

    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.outcome, Outcome::Drained);
    assert_eq!(report.shed, sheds, "RunReport and telemetry must agree");
}

/// The `--metrics` listener speaks enough HTTP for `curl`: a GET
/// returns `200 OK`, `text/plain`, and the same exposition `STATS`
/// serves — with live engine counters in it.
#[test]
fn metrics_endpoint_serves_http_exposition() {
    let scratch = Scratch::new("http");
    let events = raw_wave_events(&[5, 13], 150);
    let batches: Vec<&[Event]> = events.chunks(50).collect();

    let mut cfg = base_config(&scratch);
    cfg.metrics_endpoint = Some(Endpoint::Tcp("127.0.0.1:0".into()));
    let (ep, metrics_addr, handle) = start(cfg);
    let metrics_addr = metrics_addr.expect("metrics endpoint bound");

    let (mut client, _) =
        Client::connect_retry(&ep, "stats-suite", Duration::from_secs(5)).expect("connect");
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch(i as u64 + 1, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }

    // Mid-run scrape, exactly as curl would issue it. The bound desc
    // is `tcp:HOST:PORT`; curl gets the part after the scheme.
    let addr = metrics_addr
        .strip_prefix("tcp:")
        .expect("metrics endpoint is tcp");
    let mut sock = std::net::TcpStream::connect(addr).expect("connect metrics");
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    sock.read_to_string(&mut response).expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("header/body split");
    assert!(
        body.contains("# TYPE wms_daemon_connections_total counter"),
        "{body}"
    );
    assert_eq!(
        series(body, "wms_engine_items_total"),
        events.len() as u64,
        "scrape must see the events ingested so far"
    );
    assert_eq!(
        series(body, "wms_daemon_frames_total{type=\"batch\"}"),
        batches.len() as u64
    );

    // The scrape is read-only: the WMSP side still drains cleanly.
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.outcome, Outcome::Drained);
    assert_eq!(report.batches, batches.len() as u64);
}

/// `STATS` is never refused: a drain in progress still answers, so
/// operators keep visibility while the daemon dies gracefully.
#[test]
fn stats_is_answered_after_drain_began() {
    let scratch = Scratch::new("draining");
    let events = raw_wave_events(&[7], 120);

    let (ep, _, handle) = start(base_config(&scratch));
    let (mut client, _) =
        Client::connect_retry(&ep, "stats-suite", Duration::from_secs(5)).expect("connect");
    match client.send_batch(1, &events).expect("send") {
        BatchReply::Acked { .. } => {}
        other => panic!("batch refused: {other:?}"),
    }
    client.drain().expect("drain");
    // The daemon answered SHUTDOWN_OK and is tearing down; a fresh
    // connection may or may not get through, so ask on a second client
    // connected *before* the drain finished in the general case — here
    // the simplest honest check is a new connection racing teardown:
    // if it connects, STATS must answer.
    if let Ok((mut late, _)) = Client::connect_retry(&ep, "late", Duration::from_millis(200)) {
        if let Ok(text) = late.stats() {
            assert!(text.contains("wms_daemon_frames_total{type=\"stats\"}"));
        }
    }
    handle.join().unwrap().expect("server run");
}
