//! Reference (pre-optimization) multi-hash implementation.
//!
//! A verbatim replica of the §4.3 encoder as it existed before the
//! hot-path overhaul: every convention code builds the canonical message
//! as an owned buffer, hands it to the keyed hash (which re-concatenates
//! `k ; V ; k`), and every embed/detect call allocates its own prefix-sum
//! and candidate vectors. Kept for two jobs:
//!
//! * **golden-equality testing** — the optimized pipeline (memoized code
//!   table, midstate keyed hashing, scratch buffers) must produce
//!   bit-identical embedded streams and detection reports to this
//!   implementation, since embedding is deterministic per key + label;
//! * **before/after benchmarking** — driven with a
//!   [`KeyedHash::without_midstate`](wms_crypto::KeyedHash::without_midstate)
//!   scheme, it reconstructs the pre-overhaul per-hash cost profile for
//!   the `BENCH_pipeline.json` baseline.

use wms_core::encoding::{EmbedResult, SubsetEncoder, Vote};
use wms_core::{Label, Scheme};
use wms_crypto::keyed::encode::{self, DOM_MULTIHASH};
use wms_math::DetRng;

/// The naive multi-hash encoder (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveMultiHashEncoder;

/// Direct convention-code computation: owned message buffer, no memo.
fn convention_code(scheme: &Scheme, m_raw: i64, label: &Label) -> u64 {
    let m_lsb = scheme.codec.lsb(m_raw, scheme.params.lsb_bits);
    let msg = encode::message(
        DOM_MULTIHASH,
        &[&encode::u64_bytes(m_lsb), &label.to_bytes()],
    );
    scheme.hash.hash_lsb(&msg, scheme.params.convention_bits)
}

fn pair_count(a: usize) -> usize {
    a * (a + 1) / 2
}

fn count_satisfying(
    scheme: &Scheme,
    values: &[f64],
    label: &Label,
    bit: bool,
    required: usize,
) -> usize {
    let c = &scheme.codec;
    let target = scheme.convention_target(bit);
    let a = values.len();
    let total = pair_count(a);
    let mut prefix = Vec::with_capacity(a + 1);
    prefix.push(0.0f64);
    for &v in values {
        prefix.push(prefix.last().unwrap() + v);
    }
    let mut satisfied = 0usize;
    let mut checked = 0usize;
    for i in 0..a {
        for j in i..a {
            let mean = (prefix[j + 1] - prefix[i]) / (j - i + 1) as f64;
            let code = convention_code(scheme, c.quantize(mean), label);
            checked += 1;
            if code == target {
                satisfied += 1;
                if satisfied >= required {
                    return satisfied;
                }
            } else if satisfied + (total - checked) < required {
                return satisfied;
            }
        }
    }
    satisfied
}

impl SubsetEncoder for NaiveMultiHashEncoder {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        _extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        if values.is_empty() {
            return None;
        }
        let p = &scheme.params;
        let c = &scheme.codec;
        let total = pair_count(values.len());
        let required = p.min_active.map(|m| m.min(total)).unwrap_or(total);

        let raws: Vec<i64> = values.iter().map(|&v| c.quantize(v)).collect();
        let seed = scheme.hash.hash_u64(&label.to_bytes());
        let mut rng = DetRng::seed_from_u64(seed);

        let mut candidate: Vec<f64> = values.to_vec();
        for iter in 0..p.max_iterations {
            if iter > 0 {
                for (k, &raw) in raws.iter().enumerate() {
                    let pattern = rng.next_u64();
                    candidate[k] = c.dequantize(c.replace_lsb(raw, p.lsb_bits, pattern));
                }
            }
            let ok = count_satisfying(scheme, &candidate, label, bit, required);
            if ok >= required {
                return Some(EmbedResult {
                    values: candidate,
                    iterations: iter + 1,
                });
            }
        }
        None
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], label: &Label) -> Vote {
        let c = &scheme.codec;
        let a = values.len();
        let mut singles = Vote::empty();
        for &v in values {
            let code = convention_code(scheme, c.quantize(v), label);
            if let Some(b) = scheme.classify_code(code) {
                singles.add(b);
            }
        }
        if singles.verdict().is_some() {
            return singles;
        }
        let mut vote = singles;
        let mut prefix = Vec::with_capacity(a + 1);
        prefix.push(0.0f64);
        for &v in values {
            prefix.push(prefix.last().unwrap() + v);
        }
        for i in 0..a {
            for j in (i + 1)..a {
                let mean = (prefix[j + 1] - prefix[i]) / (j - i + 1) as f64;
                let code = convention_code(scheme, c.quantize(mean), label);
                if let Some(b) = scheme.classify_code(code) {
                    vote.add(b);
                }
            }
        }
        vote
    }

    fn name(&self) -> &'static str {
        "multi-hash-naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wms_core::encoding::multihash::MultiHashEncoder;
    use wms_core::WmParams;
    use wms_crypto::{Key, KeyedHash};

    #[test]
    fn naive_matches_optimized_on_subsets() {
        let params = WmParams {
            min_active: Some(8),
            ..WmParams::default()
        };
        let s = Scheme::new(params, KeyedHash::md5(Key::from_u64(123))).unwrap();
        let values = [0.301, 0.3055, 0.309, 0.3102, 0.3066];
        for l in 0..6u64 {
            let label = Label::from_parts((1 << 5) | l, 6);
            for bit in [true, false] {
                let naive = NaiveMultiHashEncoder.embed(&s, &values, 2, &label, bit);
                let fast = MultiHashEncoder.embed(&s, &values, 2, &label, bit);
                assert_eq!(naive, fast, "label {l} bit {bit}");
                if let Some(r) = &naive {
                    assert_eq!(
                        NaiveMultiHashEncoder.detect(&s, &r.values, &label),
                        MultiHashEncoder.detect(&s, &r.values, &label)
                    );
                }
            }
        }
    }
}
