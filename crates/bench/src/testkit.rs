//! Reusable test support for kill-and-resume equivalence testing.
//!
//! Several suites prove the same invariant — "a run that died and was
//! resumed produces a byte-identical artifact to a run that never
//! died" — over different transports: the `wms engine` checkpoint
//! smoke (in `wms-cli`), the in-process daemon lifecycle tests (in
//! `wms-daemon`), the fault-injection suite and the daemon smoke. This
//! module holds the pieces they share so the fixtures and the
//! byte-compare diagnostics stay in one place:
//!
//! - deterministic interleaved flows ([`offset_sine_flow`] for
//!   normalized runs, [`raw_wave_flow`] / [`raw_wave_events`] for the
//!   daemon's `--normalize none` path);
//! - a canonical scheme fixture ([`test_params`], [`test_embed`],
//!   [`test_identity`]) known to embed a detectable mark in *raw*
//!   small-amplitude waves;
//! - the reference run ([`engine_reference_output`]) and the
//!   byte-compare itself ([`assert_byte_identical`],
//!   [`first_divergence`]).

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{EmbedConfig, Scheme, Watermark, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_daemon::SchemeIdentity;
use wms_engine::{Engine, EngineConfig, Event, StreamId, StreamSpec};
use wms_stream::Sample;

/// Scheme parameters that reliably embed into short raw (unnormalized)
/// waves: small window, low degree, dense labeling. Also usable under
/// per-stream normalization.
pub fn test_params() -> WmParams {
    WmParams {
        window: 64,
        degree: 2,
        radius: 0.01,
        max_subset: 4,
        label_len: 3,
        label_stride: 1,
        min_active: Some(4),
        ..WmParams::default()
    }
}

/// [`test_params`] under an MD5 keyed hash for `key`.
pub fn test_scheme(key: u64) -> Scheme {
    Scheme::new(test_params(), KeyedHash::md5(Key::from_u64(key))).expect("valid test params")
}

/// A single-bit embedding config over [`test_scheme`].
pub fn test_embed(key: u64) -> Arc<EmbedConfig> {
    Arc::new(
        EmbedConfig::new(
            test_scheme(key),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .expect("valid embed config"),
    )
}

/// The daemon-side identity matching [`test_embed`].
pub fn test_identity(key: u64) -> SchemeIdentity {
    SchemeIdentity {
        encoder: "multihash".into(),
        wm_bits: Watermark::single(true).bits().to_vec(),
        params: format!("{:?}", test_params()),
        fingerprint: test_scheme(key).memo_fingerprint(),
    }
}

fn raw_wave_value(id: u64, i: usize) -> f64 {
    let period = 19.0 + (id % 7) as f64 * 4.0;
    let t = i as f64 + id as f64;
    0.3 * (t * std::f64::consts::TAU / period).sin()
        + 0.05 * (t * std::f64::consts::TAU / 7.0).sin()
}

/// A `stream,value` CSV of interleaved small-amplitude waves — values a
/// raw (`--normalize none`) run can watermark directly with
/// [`test_params`]. Streams are interleaved row-major: one reading per
/// stream per time step, in the order given.
pub fn raw_wave_flow(streams: &[u64], rows_per_stream: usize) -> String {
    let mut out = String::from("# stream,value\n");
    for i in 0..rows_per_stream {
        for &id in streams {
            writeln!(out, "{id},{}", raw_wave_value(id, i)).expect("string write");
        }
    }
    out
}

/// [`raw_wave_flow`] as in-memory events (same ordering, same values),
/// for suites that drive the engine or a WMSP client directly.
pub fn raw_wave_events(streams: &[u64], rows_per_stream: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(streams.len() * rows_per_stream);
    for i in 0..rows_per_stream {
        for &id in streams {
            events.push(Event::new(
                StreamId(id),
                Sample::new(i as u64, raw_wave_value(id, i)),
            ));
        }
    }
    events
}

/// A `stream,value` CSV of interleaved offset sines (distinct per-stream
/// ranges), for suites exercising per-stream min-max normalization.
pub fn offset_sine_flow(streams: &[u64], rows_per_stream: usize) -> String {
    let mut out = String::from("# stream,value\n");
    for i in 0..rows_per_stream {
        for &id in streams {
            let t = i as f64 + id as f64;
            let v = 10.0 * id as f64
                + 4.0 * (t * std::f64::consts::TAU / 60.0).sin()
                + 0.6 * (t * std::f64::consts::TAU / 17.0).sin();
            writeln!(out, "{id},{v}").expect("string write");
        }
    }
    out
}

/// What a daemon (or a `--normalize none` engine run) must produce for
/// this exact batch schedule: the same engine driven directly, one
/// worker, streams registered on first touch, raw values, tails
/// appended by `finish`. Returns the full output file contents.
pub fn engine_reference_output(embed: &Arc<EmbedConfig>, batches: &[&[Event]]) -> Vec<u8> {
    let mut engine = Engine::new(EngineConfig::with_workers(1)).expect("engine");
    let mut registered = HashSet::new();
    let mut out = String::from("# stream,value\n");
    for batch in batches {
        for e in *batch {
            if registered.insert(e.stream.0) {
                engine
                    .register(e.stream, StreamSpec::Embed(Arc::clone(embed)))
                    .expect("register");
            }
        }
        for o in engine.ingest(batch).expect("ingest") {
            for s in o.samples {
                writeln!(out, "{},{}", o.stream, s.value).expect("string write");
            }
        }
    }
    for o in engine.finish().expect("finish") {
        for s in o.tail {
            writeln!(out, "{},{}", o.stream, s.value).expect("string write");
        }
    }
    out.into_bytes()
}

/// The first byte offset at which two buffers differ (`None` if one is
/// a prefix of the other and lengths match — i.e. identical).
pub fn first_divergence(a: &[u8], b: &[u8]) -> Option<usize> {
    if let Some(pos) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        return Some(pos);
    }
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    None
}

/// Panics with a localized diff unless the two files are byte-identical.
/// `what` names the comparison in the failure message (e.g. `"resumed
/// output vs uninterrupted run"`).
pub fn assert_byte_identical(reference: &Path, candidate: &Path, what: &str) {
    let a = std::fs::read(reference)
        .unwrap_or_else(|e| panic!("{what}: read {}: {e}", reference.display()));
    let b = std::fs::read(candidate)
        .unwrap_or_else(|e| panic!("{what}: read {}: {e}", candidate.display()));
    if let Some(pos) = first_divergence(&a, &b) {
        let ctx = |buf: &[u8]| {
            let lo = pos.saturating_sub(40);
            let hi = (pos + 40).min(buf.len());
            String::from_utf8_lossy(&buf[lo..hi]).into_owned()
        };
        panic!(
            "{what}: outputs diverge at byte {pos} ({} is {} bytes, {} is {})\n\
             reference around divergence: {:?}\n\
             candidate around divergence: {:?}",
            reference.display(),
            a.len(),
            candidate.display(),
            b.len(),
            ctx(&a),
            ctx(&b),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_are_deterministic_and_interleaved() {
        let a = raw_wave_flow(&[3, 8], 5);
        let b = raw_wave_flow(&[3, 8], 5);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 11, "header + 2 streams x 5 rows");
        assert!(a.lines().nth(1).unwrap().starts_with("3,"));
        assert!(a.lines().nth(2).unwrap().starts_with("8,"));
    }

    #[test]
    fn events_match_the_csv_flow() {
        let events = raw_wave_events(&[3, 8], 4);
        let flow = raw_wave_flow(&[3, 8], 4);
        let rows: Vec<&str> = flow.lines().skip(1).collect();
        assert_eq!(events.len(), rows.len());
        for (e, row) in events.iter().zip(rows) {
            assert_eq!(format!("{},{}", e.stream.0, e.sample.value), row);
        }
    }

    #[test]
    fn divergence_positions_are_exact() {
        assert_eq!(first_divergence(b"abc", b"abc"), None);
        assert_eq!(first_divergence(b"abc", b"abd"), Some(2));
        assert_eq!(first_divergence(b"abc", b"abcd"), Some(3));
        assert_eq!(first_divergence(b"", b"x"), Some(0));
    }

    #[test]
    fn reference_output_covers_header_rows_and_tails() {
        let events = raw_wave_events(&[3, 8, 21], 200);
        let batches: Vec<&[Event]> = events.chunks(64).collect();
        let out = engine_reference_output(&test_embed(4242), &batches);
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("# stream,value\n"));
        // Every input sample comes back out exactly once.
        assert_eq!(text.lines().count(), 1 + events.len());
        // And the run is deterministic.
        assert_eq!(out, engine_reference_output(&test_embed(4242), &batches));
    }
}
