//! Shared experiment context: the parameter sets and embed/detect
//! plumbing every figure binary uses.

use std::sync::Arc;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::transform_estimate::{self, StreamFingerprint};
use wms_core::{
    DetectionReport, Detector, EmbedStats, Embedder, Scheme, SubsetEncoder, TransformHint,
    Watermark, WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_stream::{values_of, Sample};

/// The rights holder's secret key used across the experiment suite.
pub const EXPERIMENT_KEY: u64 = 0x5710_2004;

/// Parameter set for the real-data (IRTF-like) experiments.
///
/// Calibrated against the reference data (see the `calibrate` binary):
/// at δ=0.01, ν=10 the dataset has ~990 major extremes (ξ ≈ 22 items per
/// major, average subset ≈ 5), reproducing the paper's regime — with θ=2
/// roughly half the majors carry bits, giving Figure 10a's bias-vs-
/// segment slope and Figure 7b's bias scale on 5000-sample runs.
pub fn irtf_params() -> WmParams {
    WmParams {
        radius: 0.01,
        degree: 10,
        selection_modulus: 2,
        label_msb_bits: 2,
        label_len: 5,
        label_stride: 2,
        max_subset: 5,
        min_active: None,
        window: 2048,
        ..WmParams::default()
    }
}

/// Parameter set for the synthetic-stream experiments (label studies of
/// Figures 6 and 8): at δ=0.01, ν=12 the smooth gaussian stream runs at
/// ξ ≈ 36 with average subsets of ~9 items.
pub fn synthetic_params() -> WmParams {
    WmParams {
        radius: 0.01,
        degree: 12,
        selection_modulus: 2,
        label_msb_bits: 3,
        label_len: 10,
        label_stride: 2,
        max_subset: 5,
        min_active: None,
        window: 2048,
        ..WmParams::default()
    }
}

/// Builds the scheme with the experiment key (MD5, as in the paper's PoC).
pub fn scheme(params: WmParams) -> Scheme {
    Scheme::new(params, KeyedHash::md5(Key::from_u64(EXPERIMENT_KEY)))
        .expect("experiment parameters are valid")
}

/// The default encoder of the evaluation: §4.3's multi-hash convention.
pub fn encoder() -> Arc<dyn SubsetEncoder> {
    Arc::new(MultiHashEncoder)
}

/// Embeds the one-bit `true` watermark, returning the marked stream, the
/// embedding stats, and the §4.2 fingerprint preserved for detection.
pub fn embed_true(
    scheme: &Scheme,
    enc: &Arc<dyn SubsetEncoder>,
    input: &[Sample],
) -> (Vec<Sample>, EmbedStats, StreamFingerprint) {
    let (out, stats) = Embedder::embed_stream(
        scheme.clone(),
        Arc::clone(enc),
        Watermark::single(true),
        input,
    )
    .expect("embedding configuration is valid");
    let fp = transform_estimate::fingerprint(&values_of(&out), &scheme.params)
        .expect("marked stream has extremes");
    (out, stats, fp)
}

/// Runs detection with a transform hint and returns the report.
pub fn detect(
    scheme: &Scheme,
    enc: &Arc<dyn SubsetEncoder>,
    samples: &[Sample],
    hint: TransformHint,
) -> DetectionReport {
    Detector::detect_stream(scheme.clone(), Arc::clone(enc), 1, samples, hint)
        .expect("detection configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn irtf_params_validate() {
        irtf_params().validate().unwrap();
        synthetic_params().validate().unwrap();
    }

    #[test]
    fn reference_pipeline_produces_bias() {
        // End-to-end smoke test of the experiment plumbing on a short
        // prefix with a cheap encoder configuration (11 of 15 active
        // averages — above the binomial noise floor, ~17 candidates each).
        let p = WmParams {
            min_active: Some(11),
            ..irtf_params()
        };
        let s = scheme(p);
        let (data, _) = datasets::irtf_normalized_prefix(3000);
        let enc = encoder();
        let (marked, stats, fp) = embed_true(&s, &enc, &data);
        assert!(stats.embedded > 10, "{stats:?}");
        let report = detect(&s, &enc, &marked, TransformHint::Estimate(fp));
        assert!(
            report.bias() > stats.embedded as i64 / 3,
            "bias {} embedded {}",
            report.bias(),
            stats.embedded
        );
    }

    #[test]
    fn irtf_fluctuation_in_target_regime() {
        let (data, _) = datasets::irtf_normalized();
        let p = irtf_params();
        let values = values_of(&data);
        let xi = wms_core::extremes::measure_xi(&values, p.radius, p.degree).expect("majors exist");
        assert!(
            (8.0..80.0).contains(&xi),
            "IRTF ξ(ν,δ) = {xi} outside the calibrated regime"
        );
        let avg = wms_core::extremes::avg_subset_size(&values, p.radius).unwrap();
        assert!((3.0..60.0).contains(&avg), "avg subset size {avg}");
    }
}
