//! Resilience evaluation campaigns: attack × severity × scheme sweeps.
//!
//! The paper's headline claim is *resilience* — the watermark survives
//! sampling, summarization, segmentation and value alteration, alone and
//! combined. This module turns that claim into a continuously-checked
//! artifact: a [`Campaign`] embeds a deterministic population of streams,
//! runs every [`AttackSpec`] cell of a grid over the marked flow, detects
//! with the cell's χ hint, and reports detection rate, bit-error rate and
//! throughput per cell — through *both* the single-stream pipeline
//! ([`wms_core::Embedder`]/[`wms_core::Detector`]) and the multi-stream
//! [`wms_engine::Engine`] path. The two paths share the stream
//! population, the attack code and the per-cell RNG seed, so their cells
//! agree bit-for-bit (the engine's per-stream equivalence guarantee
//! extended end-to-end; `tests/resilience_equiv.rs` proves it).
//!
//! Everything is deterministic given the campaign seed: detection rates
//! in `BENCH_resilience.json` are exactly reproducible, which is what
//! lets CI gate on *exact-match* floors (`bench_check`).

use crate::report::render_table;
use std::sync::Arc;
use std::time::Instant;
use wms_attacks::AttackSpec;
use wms_core::encoding::initial::InitialEncoder;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::encoding::quadres::QuadResEncoder;
use wms_core::{
    DetectConfig, DetectionReport, Detector, EmbedConfig, Embedder, Scheme, SubsetEncoder,
    TransformHint, Watermark, WmParams,
};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{Engine, EngineConfig, StreamSpec};
use wms_math::DetRng;
use wms_stream::{demux, mux, samples_from_values, Event, Sample, StreamId};

/// Which machinery embeds and detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// The single-stream pipeline: one `Embedder`/`Detector` per stream.
    Single,
    /// The sharded multi-stream engine.
    Engine,
}

impl PathKind {
    /// Stable identifier used in reports and the JSON artifact.
    pub fn id(&self) -> &'static str {
        match self {
            PathKind::Single => "single",
            PathKind::Engine => "engine",
        }
    }
}

/// Campaign parameters. All fields feed the deterministic derivations,
/// so two campaigns with equal configs produce identical grids.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Items per stream.
    pub items: usize,
    /// Independent watermarked streams per cell (the trial population).
    pub trials: usize,
    /// Campaign seed: drives stream synthesis and every attack cell.
    pub seed: u64,
    /// Detection threshold: a stream counts as detected when its bit-0
    /// bias exceeds κ (the CLI's verdict rule).
    pub kappa: i64,
    /// Watermarking parameters shared by every cell.
    pub params: WmParams,
    /// Rights-holder key.
    pub key: u64,
    /// Engine-path worker threads (0 = one per core).
    pub workers: usize,
    /// Engine-path ingest batch size.
    pub batch: usize,
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign {
            items: 5000,
            trials: 5,
            seed: 0x5EED_2026,
            kappa: 3,
            params: campaign_params(),
            key: crate::exp::EXPERIMENT_KEY,
            workers: 2,
            batch: 1024,
        }
    }
}

/// The campaign's default watermarking parameters: the engine-bench
/// regime (window 256, ν = 3, δ = 0.01), dense enough that a 4000-item
/// stream carries tens of bits.
pub fn campaign_params() -> WmParams {
    WmParams {
        window: 256,
        degree: 3,
        radius: 0.01,
        max_subset: 4,
        label_len: 4,
        label_stride: 1,
        min_active: Some(12),
        ..WmParams::default()
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Which machinery ran the cell.
    pub path: &'static str,
    /// Encoder ("scheme") name.
    pub scheme: String,
    /// Attack family.
    pub family: String,
    /// Canonical attack id (`kind:params`).
    pub attack: String,
    /// Severity scalar within the family.
    pub severity: f64,
    /// Streams the detector examined after the attack (splice merges the
    /// population into one).
    pub streams_total: usize,
    /// Streams whose bit-0 bias exceeded κ.
    pub streams_detected: usize,
    /// `streams_detected / streams_total`.
    pub detection_rate: f64,
    /// Fraction of post-attack streams whose κ=1 reconstruction got the
    /// embedded bit wrong (undefined counts as an error).
    pub bit_error_rate: f64,
    /// Mean bit-0 bias across post-attack streams.
    pub mean_bias: f64,
    /// Post-attack events per second through attack + detection.
    pub items_per_sec: f64,
}

/// Builds the named encoder. `quadres` derives its residue tables from
/// the scheme, hence the argument.
pub fn encoder_by_name(name: &str, scheme: &Scheme) -> Result<Arc<dyn SubsetEncoder>, String> {
    match name {
        "multihash" => Ok(Arc::new(MultiHashEncoder)),
        "initial" => Ok(Arc::new(InitialEncoder)),
        "quadres" => Ok(Arc::new(QuadResEncoder::from_scheme(scheme, 3))),
        other => Err(format!(
            "unknown encoder {other:?}; expected multihash|initial|quadres"
        )),
    }
}

/// The committed CI grid: small enough for a smoke job, wide enough to
/// pin the paper's qualitative resilience pattern (sampling to 50 %,
/// paper-default summarization, an alteration-amplitude sweep, and the
/// two combined scenarios).
pub fn smoke_grid() -> Vec<AttackSpec> {
    vec![
        AttackSpec::Identity,
        AttackSpec::Sample { degree: 2 },
        AttackSpec::Sample { degree: 3 },
        AttackSpec::Sample { degree: 5 },
        AttackSpec::FixedSample { degree: 2 },
        AttackSpec::Summarize { degree: 2 },
        AttackSpec::Summarize { degree: 3 },
        AttackSpec::Summarize { degree: 4 },
        AttackSpec::Segment { fraction: 0.5 },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.02,
        },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.06,
        },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.15,
        },
        AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude: 0.2,
        },
        AttackSpec::NoiseResample {
            amplitude: 0.005,
            degree: 2,
        },
        AttackSpec::Splice { segment: 1000 },
    ]
}

/// The wider sweep behind `wms resilience --grid paper`: the smoke grid's
/// families at more severity points.
pub fn paper_grid() -> Vec<AttackSpec> {
    let mut grid = vec![AttackSpec::Identity];
    for degree in [2usize, 3, 4, 5] {
        grid.push(AttackSpec::Sample { degree });
    }
    for degree in [2usize, 3, 4] {
        grid.push(AttackSpec::FixedSample { degree });
        grid.push(AttackSpec::Summarize { degree });
    }
    for fraction in [0.75, 0.5, 0.25, 0.1] {
        grid.push(AttackSpec::Segment { fraction });
    }
    for amplitude in [0.01, 0.02, 0.06, 0.15, 0.2, 0.3] {
        grid.push(AttackSpec::Epsilon {
            fraction: 0.5,
            amplitude,
        });
    }
    for (amplitude, degree) in [(0.005, 2), (0.01, 2), (0.005, 3)] {
        grid.push(AttackSpec::NoiseResample { amplitude, degree });
    }
    for segment in [2000usize, 1000, 500] {
        grid.push(AttackSpec::Splice { segment });
    }
    grid
}

/// Resolves a grid name (`smoke` or `paper`).
pub fn grid_by_name(name: &str) -> Result<Vec<AttackSpec>, String> {
    match name {
        "smoke" => Ok(smoke_grid()),
        "paper" => Ok(paper_grid()),
        other => Err(format!("unknown grid {other:?}; expected smoke|paper")),
    }
}

/// FNV-1a over a byte string — the stable cell-seed hash. Grid order,
/// platform and Rust version never change it, so committed detection
/// rates survive refactors that merely reorder the grid.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One deterministic trial stream: a smooth two-tone carrier whose
/// period and phase vary with the trial index, normalized into the
/// paper's (−0.5, 0.5) band with fat extremes (ξ ≈ 30 at the campaign
/// parameters).
pub fn trial_stream(items: usize, trial: u64) -> Vec<Sample> {
    let period = 56.0 + (trial % 5) as f64 * 6.0;
    let values: Vec<f64> = (0..items)
        .map(|i| {
            let t = i as f64 + 17.0 * trial as f64;
            0.35 * (t * core::f64::consts::TAU / period).sin()
                + 0.04 * (t * core::f64::consts::TAU / 13.7).sin()
        })
        .collect();
    samples_from_values(&values)
}

fn scheme_of(c: &Campaign) -> Scheme {
    Scheme::new(c.params, KeyedHash::md5(Key::from_u64(c.key))).expect("campaign params are valid")
}

/// Embeds the campaign's trial population through the single-stream
/// pipeline, returning the marked flow (streams interleaved round-robin).
fn embed_single(c: &Campaign, enc: &Arc<dyn SubsetEncoder>) -> Vec<Event> {
    let scheme = scheme_of(c);
    let marked: Vec<(StreamId, Vec<Sample>)> = (0..c.trials as u64)
        .map(|t| {
            let input = trial_stream(c.items, c.seed ^ t);
            let (out, _) = Embedder::embed_stream(
                scheme.clone(),
                Arc::clone(enc),
                Watermark::single(true),
                &input,
            )
            .expect("embed configuration is valid");
            (StreamId(t), out)
        })
        .collect();
    mux(&marked)
}

/// Embeds the same population through the engine path. Bit-identical to
/// [`embed_single`] by the engine's equivalence guarantee.
fn embed_engine(c: &Campaign, enc: &Arc<dyn SubsetEncoder>) -> Vec<Event> {
    let cfg = Arc::new(
        EmbedConfig::new(scheme_of(c), Arc::clone(enc), Watermark::single(true))
            .expect("embed configuration is valid"),
    );
    let mut engine = Engine::new(EngineConfig::with_workers(c.workers)).unwrap();
    let streams: Vec<(StreamId, Vec<Sample>)> = (0..c.trials as u64)
        .map(|t| (StreamId(t), trial_stream(c.items, c.seed ^ t)))
        .collect();
    for (id, _) in &streams {
        engine
            .register(*id, StreamSpec::Embed(Arc::clone(&cfg)))
            .expect("fresh ids");
    }
    let events = mux(&streams);
    let mut collected: Vec<(StreamId, Vec<Sample>)> =
        streams.iter().map(|(id, _)| (*id, Vec::new())).collect();
    for chunk in events.chunks(c.batch.max(1)) {
        for out in engine.ingest(chunk).expect("registered streams") {
            collected
                .iter_mut()
                .find(|(id, _)| *id == out.stream)
                .expect("known stream")
                .1
                .extend(out.samples);
        }
    }
    for outcome in engine.finish().expect("engine workers alive") {
        collected
            .iter_mut()
            .find(|(id, _)| *id == outcome.stream)
            .expect("known stream")
            .1
            .extend(outcome.tail);
    }
    mux(&collected)
}

/// Detects over every stream of an attacked flow, in first-touch order.
fn detect_single(
    c: &Campaign,
    enc: &Arc<dyn SubsetEncoder>,
    attacked: &[Event],
    chi: f64,
) -> Vec<DetectionReport> {
    let scheme = scheme_of(c);
    demux(attacked)
        .into_iter()
        .map(|(_, samples)| {
            Detector::detect_stream(
                scheme.clone(),
                Arc::clone(enc),
                1,
                &samples,
                TransformHint::Known(chi),
            )
            .expect("detect configuration is valid")
        })
        .collect()
}

/// Engine-path detection over an attacked flow; reports in first-touch
/// order, matching [`detect_single`].
fn detect_engine(
    c: &Campaign,
    enc: &Arc<dyn SubsetEncoder>,
    attacked: &[Event],
    chi: f64,
) -> Vec<DetectionReport> {
    let cfg = Arc::new(
        DetectConfig::new(scheme_of(c), Arc::clone(enc), 1, chi)
            .expect("detect configuration is valid"),
    );
    let mut engine = Engine::new(EngineConfig::with_workers(c.workers)).unwrap();
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for e in attacked {
        if seen.insert(e.stream.0) {
            engine
                .register(e.stream, StreamSpec::Detect(Arc::clone(&cfg)))
                .expect("fresh ids");
        }
    }
    for chunk in attacked.chunks(c.batch.max(1)) {
        engine.ingest(chunk).expect("registered streams");
    }
    // `finish` returns registration order == first-touch order.
    engine
        .finish()
        .expect("engine workers alive")
        .into_iter()
        .map(|o| o.report.expect("detect mode"))
        .collect()
}

/// Runs one grid through one path and one encoder. The marked flow is
/// embedded once and shared across cells; each cell's attack runs on an
/// RNG seeded from the campaign seed and the cell id alone, so single
/// and engine paths (and any grid order) see identical attacks.
pub fn run_campaign(
    c: &Campaign,
    grid: &[AttackSpec],
    encoder_name: &str,
    path: PathKind,
) -> Result<Vec<CellResult>, String> {
    let enc = encoder_by_name(encoder_name, &scheme_of(c))?;
    let marked = match path {
        PathKind::Single => embed_single(c, &enc),
        PathKind::Engine => embed_engine(c, &enc),
    };
    let mut cells = Vec::with_capacity(grid.len());
    for spec in grid {
        let mut rng = DetRng::seed_from_u64(fnv1a(c.seed, spec.id().as_bytes()));
        let start = Instant::now();
        let attacked = spec.build().attack(&marked, &mut rng);
        let reports = match path {
            PathKind::Single => detect_single(c, &enc, &attacked, spec.chi()),
            PathKind::Engine => detect_engine(c, &enc, &attacked, spec.chi()),
        };
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let n = reports.len();
        let detected = reports.iter().filter(|r| r.bias() > c.kappa).count();
        let bit_errors = reports
            .iter()
            .filter(|r| r.recovered(1).bits.first().copied().flatten() != Some(true))
            .count();
        let mean_bias = reports.iter().map(|r| r.bias() as f64).sum::<f64>() / (n as f64).max(1.0);
        cells.push(CellResult {
            path: path.id(),
            scheme: encoder_name.to_string(),
            family: spec.family().to_string(),
            attack: spec.id(),
            severity: spec.severity(),
            streams_total: n,
            streams_detected: detected,
            detection_rate: detected as f64 / (n as f64).max(1.0),
            bit_error_rate: bit_errors as f64 / (n as f64).max(1.0),
            mean_bias,
            items_per_sec: attacked.len() as f64 / secs,
        });
    }
    Ok(cells)
}

/// Renders the machine-readable `BENCH_resilience.json` document — one
/// cell object per line (the format `bench_check` and the floors gate
/// parse). Hand-rolled JSON: the workspace is offline and carries no
/// serde.
pub fn render_resilience_json(c: &Campaign, cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"wms-bench-resilience/v1\",\n");
    out.push_str(&format!("  \"items\": {},\n", c.items));
    out.push_str(&format!("  \"trials\": {},\n", c.trials));
    out.push_str(&format!("  \"seed\": {},\n", c.seed));
    out.push_str(&format!("  \"kappa\": {},\n", c.kappa));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"scheme\": \"{}\", \"family\": \"{}\", \
             \"attack\": \"{}\", \"severity\": {}, \"streams_total\": {}, \
             \"streams_detected\": {}, \"detection_rate\": {:.6}, \
             \"bit_error_rate\": {:.6}, \"mean_bias\": {:.3}, \
             \"items_per_sec\": {:.1}}}{}\n",
            cell.path,
            cell.scheme,
            cell.family,
            cell.attack,
            cell.severity,
            cell.streams_total,
            cell.streams_detected,
            cell.detection_rate,
            cell.bit_error_rate,
            cell.mean_bias,
            cell.items_per_sec,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Per-cell verdict wording: resilient (everything detected), degraded
/// (partial), or lost.
pub fn cell_verdict(cell: &CellResult) -> &'static str {
    if cell.detection_rate >= 0.99 {
        "RESILIENT"
    } else if cell.detection_rate > 0.0 {
        "degraded"
    } else {
        "LOST"
    }
}

/// Renders the human-readable verdict table the CLI and the bench binary
/// print.
pub fn render_verdict_table(cells: &[CellResult]) -> String {
    let headers: Vec<String> = [
        "path", "scheme", "attack", "detected", "rate", "BER", "bias", "items/s", "verdict",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.path.to_string(),
                c.scheme.clone(),
                c.attack.clone(),
                format!("{}/{}", c.streams_detected, c.streams_total),
                format!("{:.2}", c.detection_rate),
                format!("{:.2}", c.bit_error_rate),
                format!("{:.1}", c.mean_bias),
                format!("{:.0}", c.items_per_sec),
                cell_verdict(c).to_string(),
            ]
        })
        .collect();
    render_table(&headers, &rows)
}

/// A detection-rate cell parsed back out of `BENCH_resilience.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCell {
    /// Path id (`single` / `engine`).
    pub path: String,
    /// Encoder name.
    pub scheme: String,
    /// Attack id.
    pub attack: String,
    /// Detection rate of the cell.
    pub detection_rate: f64,
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the cells of a `BENCH_resilience.json` document (the
/// line-per-cell format [`render_resilience_json`] emits).
pub fn parse_cells(json: &str) -> Vec<ParsedCell> {
    json.lines()
        .filter_map(|line| {
            Some(ParsedCell {
                path: json_str_field(line, "path")?,
                scheme: json_str_field(line, "scheme")?,
                attack: json_str_field(line, "attack")?,
                detection_rate: json_num_field(line, "detection_rate")?,
            })
        })
        .collect()
}

/// Checks fresh campaign cells against a committed floors file.
///
/// Floors format: one `path scheme attack detection_rate` line per gated
/// cell; blank lines and `#` comments ignored. The comparison is
/// exact-match in both directions: a fresh rate *below* its floor is a
/// regression, and a rate *above* it is drift — a real behavioral change
/// that must be acknowledged by regenerating the committed artifacts
/// (the grid is deterministic, so any mismatch is real, never noise).
/// Returns the number of floors checked, or every violation (missing
/// cell, malformed line, regression, or drift).
pub fn check_floors(cells: &[ParsedCell], floors: &str) -> Result<usize, Vec<String>> {
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (lineno, line) in floors.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let [path, scheme, attack, floor_raw] = parts.as_slice() else {
            violations.push(format!(
                "floors line {}: expected `path scheme attack rate`, got {trimmed:?}",
                lineno + 1
            ));
            continue;
        };
        let Ok(floor) = floor_raw.parse::<f64>() else {
            violations.push(format!(
                "floors line {}: bad rate {floor_raw:?}",
                lineno + 1
            ));
            continue;
        };
        let Some(cell) = cells
            .iter()
            .find(|c| c.path == *path && c.scheme == *scheme && c.attack == *attack)
        else {
            violations.push(format!(
                "cell {path}/{scheme}/{attack} missing from fresh results"
            ));
            continue;
        };
        checked += 1;
        if cell.detection_rate + 1e-9 < floor {
            violations.push(format!(
                "REGRESSION {path}/{scheme}/{attack}: detection rate {:.6} < floor {floor:.6}",
                cell.detection_rate
            ));
        } else if cell.detection_rate - 1e-9 > floor {
            violations.push(format!(
                "DRIFT {path}/{scheme}/{attack}: detection rate {:.6} above floor {floor:.6} \
                 — intentional change? regenerate and commit the floors",
                cell.detection_rate
            ));
        }
    }
    if violations.is_empty() {
        Ok(checked)
    } else {
        Err(violations)
    }
}

/// Renders the committed floors file from a fresh campaign: exact-match
/// floors for every cell (the grid is deterministic, so equality is the
/// honest expectation).
pub fn render_floors(cells: &[CellResult]) -> String {
    let mut out = String::from(
        "# Resilience regression floors: path scheme attack detection_rate.\n\
         # Exact-match floors for the deterministic smoke grid. After an\n\
         # intentional change, regenerate this file AND BENCH_resilience.json with\n\
         #   WMS_RESILIENCE_FLOORS=RESILIENCE_FLOORS.txt \\\n\
         #     cargo run --release -p wms-bench --bin bench_resilience\n\
         # and commit both.\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{} {} {} {:.6}\n",
            c.path, c.scheme, c.attack, c.detection_rate
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign {
            items: 1600,
            trials: 2,
            ..Campaign::default()
        }
    }

    #[test]
    fn identity_cell_detects_everything() {
        let c = tiny_campaign();
        let cells =
            run_campaign(&c, &[AttackSpec::Identity], "multihash", PathKind::Single).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].streams_total, 2);
        assert_eq!(cells[0].detection_rate, 1.0, "{cells:?}");
        assert_eq!(cells[0].bit_error_rate, 0.0);
        assert!(cells[0].mean_bias > c.kappa as f64);
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = tiny_campaign();
        let grid = [AttackSpec::Sample { degree: 2 }];
        let a = run_campaign(&c, &grid, "multihash", PathKind::Single).unwrap();
        let b = run_campaign(&c, &grid, "multihash", PathKind::Single).unwrap();
        // items_per_sec is wall-clock and may differ; everything else is
        // bit-deterministic.
        assert_eq!(a[0].detection_rate, b[0].detection_rate);
        assert_eq!(a[0].mean_bias, b[0].mean_bias);
        assert_eq!(a[0].streams_detected, b[0].streams_detected);
    }

    #[test]
    fn json_round_trips_through_parse_and_floors() {
        let c = tiny_campaign();
        let cells = vec![
            CellResult {
                path: "single",
                scheme: "multihash".into(),
                family: "sampling".into(),
                attack: "sample:2".into(),
                severity: 2.0,
                streams_total: 3,
                streams_detected: 3,
                detection_rate: 1.0,
                bit_error_rate: 0.0,
                mean_bias: 12.3,
                items_per_sec: 123456.7,
            },
            CellResult {
                path: "engine",
                scheme: "initial".into(),
                family: "epsilon".into(),
                attack: "epsilon:0.5,0.3".into(),
                severity: 0.3,
                streams_total: 3,
                streams_detected: 1,
                detection_rate: 1.0 / 3.0,
                bit_error_rate: 2.0 / 3.0,
                mean_bias: 1.5,
                items_per_sec: 999.0,
            },
        ];
        let json = render_resilience_json(&c, &cells);
        assert!(json.contains("wms-bench-resilience/v1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let parsed = parse_cells(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].attack, "sample:2");
        assert!((parsed[1].detection_rate - 1.0 / 3.0).abs() < 1e-6);

        let floors = render_floors(&cells);
        assert_eq!(check_floors(&parsed, &floors), Ok(2));
        // A fresh regression trips the gate.
        let mut regressed = parsed.clone();
        regressed[0].detection_rate = 0.5;
        let errs = check_floors(&regressed, &floors).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("REGRESSION"), "{errs:?}");
        // So does silent upward drift — exact-match cuts both ways.
        let mut drifted = parsed.clone();
        drifted[1].detection_rate = 1.0;
        let errs = check_floors(&drifted, &floors).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("DRIFT"), "{errs:?}");
        // A missing cell trips it too.
        let errs = check_floors(&regressed[1..], &floors).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing")), "{errs:?}");
    }

    #[test]
    fn floors_parser_rejects_malformed_lines() {
        let errs = check_floors(&[], "single multihash sample:2\n").unwrap_err();
        assert!(errs[0].contains("expected"), "{errs:?}");
        let errs = check_floors(&[], "single multihash sample:2 high\n").unwrap_err();
        assert!(errs[0].contains("bad rate"), "{errs:?}");
        assert_eq!(check_floors(&[], "# only comments\n\n"), Ok(0));
    }

    #[test]
    fn verdict_table_contains_every_cell() {
        let cell = CellResult {
            path: "single",
            scheme: "multihash".into(),
            family: "identity".into(),
            attack: "identity".into(),
            severity: 0.0,
            streams_total: 3,
            streams_detected: 3,
            detection_rate: 1.0,
            bit_error_rate: 0.0,
            mean_bias: 20.0,
            items_per_sec: 1e6,
        };
        let lost = CellResult {
            streams_detected: 0,
            detection_rate: 0.0,
            ..cell.clone()
        };
        let t = render_verdict_table(&[cell, lost]);
        assert!(t.contains("RESILIENT"));
        assert!(t.contains("LOST"));
        assert!(t.contains("identity"));
    }

    #[test]
    fn grids_resolve_by_name_and_are_well_formed() {
        let smoke = grid_by_name("smoke").unwrap();
        let paper = grid_by_name("paper").unwrap();
        assert!(grid_by_name("huge").is_err());
        assert!(smoke.len() >= 10);
        assert!(paper.len() > smoke.len());
        // Every spec id round-trips through the parser.
        for spec in smoke.iter().chain(&paper) {
            assert_eq!(AttackSpec::parse(&spec.id()).unwrap(), *spec);
        }
    }

    #[test]
    fn trial_streams_are_deterministic_and_distinct() {
        let a = trial_stream(500, 1);
        assert_eq!(a, trial_stream(500, 1));
        assert_ne!(a, trial_stream(500, 2));
        assert!(a.iter().all(|s| s.value.abs() < 0.5));
    }
}
