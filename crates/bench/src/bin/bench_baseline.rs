//! Perf baseline: measures the embed/detect pipeline in *naive*
//! (pre-overhaul hot path: message-buffer hashing, no midstate, no code
//! memo, per-sample output vectors) and *optimized* variants, prints a
//! table, and writes the machine-readable `BENCH_pipeline.json`.
//!
//! ```text
//! WMS_BENCH_MS=500 cargo run -p wms-bench --release --bin bench_baseline
//! ```
//!
//! Environment:
//! * `WMS_BENCH_MS`  — wall-clock budget per measurement (default 200 ms);
//! * `WMS_BENCH_OUT` — output path (default `BENCH_pipeline.json`).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use wms_bench::perf::{self, PerfRecord};
use wms_bench::reference::NaiveMultiHashEncoder;
use wms_bench::{datasets, exp};
use wms_core::encoding::initial::InitialEncoder;
use wms_core::{Detector, Embedder, Scheme, SubsetEncoder, TransformHint, Watermark, WmParams};
use wms_stream::Sample;

const SCHEMA: &str = "wms-bench-pipeline/v1";
const ITEMS: usize = 5000;

/// The pre-overhaul convenience driver: one throwaway `Vec` per pushed
/// sample (`out.extend(e.push(s))`), as `embed_stream` did before the
/// push-path fix. Deliberately drives the deprecated wrappers — they
/// *are* the naive variant being measured.
#[allow(deprecated)]
fn embed_stream_legacy(
    scheme: Scheme,
    encoder: Arc<dyn SubsetEncoder>,
    input: &[Sample],
) -> Vec<Sample> {
    let mut e = Embedder::new(scheme, encoder, Watermark::single(true)).unwrap();
    let mut out = Vec::with_capacity(input.len());
    for &s in input {
        out.extend(e.push(s));
    }
    out.extend(e.finish());
    out
}

fn main() {
    let budget_ms: u64 = std::env::var("WMS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let budget = Duration::from_millis(budget_ms.max(1));
    let out_path = std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".into());

    let (data, _) = datasets::irtf_normalized_prefix(ITEMS);
    let reduced = WmParams {
        min_active: Some(12),
        ..exp::irtf_params()
    };
    let scheme_fast = exp::scheme(reduced);
    let scheme_naive = scheme_fast.with_hash(scheme_fast.hash.without_midstate());
    let items = data.len() as u64;
    let mut records: Vec<PerfRecord> = Vec::new();

    eprintln!("bench_baseline: {budget_ms} ms per measurement over {items} items");

    let embed_id = "pipeline-embed/multihash min_active=12 5k items";
    records.push(perf::measure(embed_id, "naive", items, budget, || {
        black_box(embed_stream_legacy(
            scheme_naive.clone(),
            Arc::new(NaiveMultiHashEncoder),
            black_box(&data),
        ));
    }));
    records.push(perf::measure(embed_id, "optimized", items, budget, || {
        black_box(
            Embedder::embed_stream(
                scheme_fast.clone(),
                Arc::new(wms_core::encoding::multihash::MultiHashEncoder),
                Watermark::single(true),
                black_box(&data),
            )
            .unwrap(),
        );
    }));

    let init_id = "pipeline-embed/initial encoder 5k items";
    records.push(perf::measure(init_id, "optimized", items, budget, || {
        black_box(
            Embedder::embed_stream(
                exp::scheme(exp::irtf_params()),
                Arc::new(InitialEncoder),
                Watermark::single(true),
                black_box(&data),
            )
            .unwrap(),
        );
    }));

    // Detection runs over the optimized marked stream (bit-identical to
    // the naive one — golden tests prove it).
    let (marked, _) = Embedder::embed_stream(
        scheme_fast.clone(),
        Arc::new(wms_core::encoding::multihash::MultiHashEncoder),
        Watermark::single(true),
        &data,
    )
    .unwrap();
    let detect_id = "pipeline-detect/multihash 5k items";
    records.push(perf::measure(detect_id, "naive", items, budget, || {
        black_box(
            Detector::detect_stream(
                scheme_naive.clone(),
                Arc::new(NaiveMultiHashEncoder),
                1,
                black_box(&marked),
                TransformHint::None,
            )
            .unwrap(),
        );
    }));
    records.push(perf::measure(detect_id, "optimized", items, budget, || {
        black_box(
            Detector::detect_stream(
                scheme_fast.clone(),
                Arc::new(wms_core::encoding::multihash::MultiHashEncoder),
                1,
                black_box(&marked),
                TransformHint::None,
            )
            .unwrap(),
        );
    }));

    print!("{}", perf::render_perf_table(&records));
    for id in [embed_id, detect_id] {
        if let Some(s) = perf::speedup(&records, id) {
            println!("speedup {id}: {s:.2}x");
        }
    }
    let json = perf::render_json(SCHEMA, budget_ms, &records);
    std::fs::write(&out_path, &json).expect("write BENCH_pipeline.json");
    println!("wrote {out_path}");
}
