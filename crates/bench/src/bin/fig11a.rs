//! Figure 11a: computation cost of the multi-hash encoding vs guaranteed
//! resilience. Guaranteeing survival of sampling/summarization up to
//! degree `a` means fully encoding a subset of `a` items — all
//! `a(a+1)/2` averages — at an expected cost of `2^(τ·a(a+1)/2)` search
//! candidates (log scale; §4.3's worked example is a=5 → ≈32k).

use wms_bench::{exp, Series};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::encoding::SubsetEncoder;
use wms_core::{analysis, Label, WmParams};

fn main() {
    let mut measured = Series::new("log10 iterations (measured)");
    let mut predicted = Series::new("log10 iterations (2^(a(a+1)/2))");
    let enc = MultiHashEncoder;
    for a in 1..=6usize {
        let params = WmParams {
            max_subset: a,
            min_active: None,
            max_iterations: 1 << 26,
            ..exp::irtf_params()
        };
        let scheme = exp::scheme(params);
        // A plausible characteristic subset of `a` items near an extreme.
        let values: Vec<f64> = (0..a)
            .map(|k| 0.31 - 0.0008 * (k as f64 - a as f64 / 2.0).powi(2))
            .collect();
        // Average the geometric search over several labels; heavier
        // configurations get fewer repetitions.
        let reps: u64 = match a {
            1..=4 => 12,
            5 => 6,
            _ => 3,
        };
        let mut total: u64 = 0;
        let mut done = 0u64;
        for l in 0..reps {
            let label = Label::from_parts((1 << 10) | l, 11);
            if let Some(r) = enc.embed(&scheme, &values, a / 2, &label, true) {
                total += r.iterations;
                done += 1;
            }
        }
        let mean = total as f64 / done.max(1) as f64;
        measured.push(a as f64, mean.log10());
        predicted.push(
            a as f64,
            analysis::expected_search_iterations(a as u64, 1).log10(),
        );
        eprintln!("a={a}: mean iterations {mean:.0} over {done} runs");
    }
    wms_bench::emit_figure(
        "Figure 11a: multi-hash encoding cost vs guaranteed resilience (log10 scale)",
        "guaranteed resilience",
        &[measured, predicted],
    );
}
