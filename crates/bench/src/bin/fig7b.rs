//! Figure 7b: detected watermark bias vs τ (fraction of data altered) at
//! ε = 10 %. The paper's headline: at τ = 50 %, ε = 10 % the bias stays
//! above 25 — a false-positive rate under "one in thirty million".

use wms_attacks::EpsilonAttack;
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits", stats.embedded);

    let mut s = Series::new("bias (eps=0.1)");
    let mut conf = Series::new("confidence log2(1/Pfp)");
    for tau_step in 0..=10 {
        let tau = tau_step as f64 * 0.05;
        let attacked = EpsilonAttack::uniform(tau, 0.1, 7).apply(&marked);
        let report = exp::detect(&scheme, &enc, &attacked, TransformHint::None);
        s.push(tau, report.bias() as f64);
        conf.push(tau, report.bias().max(0) as f64);
    }
    wms_bench::emit_figure(
        "Figure 7b: watermark bias vs tau at epsilon=10% (real data)",
        "tau",
        &[s, conf],
    );
}
