//! §6.4 data-quality table: the impact of watermarking on the stream's
//! mean and standard deviation, over repeated runs on real-like and
//! synthetic data. The paper reports ≤ 0.21 % (mean) and ≤ 0.27 % (std).

use wms_bench::report::render_table;
use wms_bench::{datasets, exp};
use wms_math::stats::relative_change_pct;
use wms_math::summarize;
use wms_stream::values_of;

fn main() {
    let enc = exp::encoder();
    let mut rows = Vec::new();
    let mut worst_mean = 0.0f64;
    let mut worst_std = 0.0f64;

    let mut run = |name: String, data: Vec<wms_stream::Sample>, params: wms_core::WmParams| {
        let scheme = exp::scheme(params);
        let before = summarize(&values_of(&data)).unwrap();
        let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
        let after = summarize(&values_of(&marked)).unwrap();
        let dm = relative_change_pct(before.mean, after.mean);
        let ds = relative_change_pct(before.std_dev, after.std_dev);
        worst_mean = worst_mean.max(dm);
        worst_std = worst_std.max(ds);
        rows.push(vec![
            name,
            format!("{}", stats.embedded),
            format!("{dm:.5}"),
            format!("{ds:.5}"),
        ]);
    };

    for seed in 0..4u64 {
        let (data, _) = datasets::gaussian_normalized(5000, 20 + seed);
        run(
            format!("synthetic/seed{seed}"),
            data,
            exp::synthetic_params(),
        );
    }
    let (irtf, _) = datasets::irtf_normalized_prefix(5000);
    run("irtf-like/5k".to_string(), irtf, exp::irtf_params());
    let (irtf_full, _) = datasets::irtf_normalized();
    run("irtf-like/full".to_string(), irtf_full, exp::irtf_params());

    let headers = vec![
        "dataset".to_string(),
        "bits embedded".to_string(),
        "mean delta (%)".to_string(),
        "std delta (%)".to_string(),
    ];
    println!("== §6.4 data-quality impact (paper: mean ≤ 0.21%, std ≤ 0.27%) ==");
    print!("{}", render_table(&headers, &rows));
    println!("worst-case: mean {worst_mean:.5}% std {worst_std:.5}%");
    assert!(worst_mean < 0.21, "mean impact exceeds the paper's bound");
    assert!(worst_std < 0.27, "std impact exceeds the paper's bound");
    println!("PASS: within the paper's reported bounds");
}
