//! Figure 11b: data-quality impact vs θ. Increasing the selection modulus
//! θ decreases the number of bit-carrying extremes (fraction b(wm)/θ) and
//! with it the impact on the stream's mean and standard deviation.

use std::sync::Arc;
use wms_bench::{datasets, exp, Series};
use wms_core::encoding::initial::InitialEncoder;
use wms_core::SubsetEncoder;
use wms_math::stats::relative_change_pct;
use wms_math::summarize;
use wms_stream::values_of;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let before = summarize(&values_of(&data)).unwrap();
    // The initial encoder's harmonization moves subset items by up to δ,
    // so its quality impact is measurable and θ-dependent (the multi-hash
    // encoder only touches the γ low bits — its impact is ~1e-4 %,
    // essentially noise; see table_quality).
    let enc: Arc<dyn SubsetEncoder> = Arc::new(InitialEncoder);

    let mut mean_s = Series::new("mean alteration (%)");
    let mut std_s = Series::new("std-dev alteration (%)");
    let mut count_s = Series::new("bits embedded");
    for theta in 2..=8u64 {
        let scheme = exp::scheme(exp::irtf_params().with_selection_modulus(theta));
        let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
        let after = summarize(&values_of(&marked)).unwrap();
        mean_s.push(theta as f64, relative_change_pct(before.mean, after.mean));
        std_s.push(
            theta as f64,
            relative_change_pct(before.std_dev, after.std_dev),
        );
        count_s.push(theta as f64, stats.embedded as f64);
    }
    wms_bench::emit_figure(
        "Figure 11b: mean/std impact vs selection modulus theta (real data)",
        "theta",
        &[mean_s, std_s, count_s],
    );
}
