//! Resilience regression gate: compares a fresh `BENCH_resilience.json`
//! against the committed floors and exits non-zero on any regression.
//!
//! ```text
//! cargo run -p wms-bench --release --bin bench_check
//! ```
//!
//! Environment:
//! * `WMS_BENCH_OUT`          — fresh results (default `BENCH_resilience.json`);
//! * `WMS_RESILIENCE_FLOORS`  — floors file (default `RESILIENCE_FLOORS.txt`).
//!
//! The smoke grid is deterministic, so the committed floors are
//! *exact-match in both directions*: a fresh detection rate below its
//! floor is a regression, above it is unacknowledged drift — either way
//! a real behavioral change (scheme, attack, stream synthesis or RNG),
//! never noise. After an intentional change, regenerate both files with
//! `WMS_RESILIENCE_FLOORS=RESILIENCE_FLOORS.txt cargo run --release -p
//! wms-bench --bin bench_resilience` and commit them.

use wms_bench::resilience::{check_floors, parse_cells};

fn main() {
    let fresh_path =
        std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_resilience.json".into());
    let floors_path =
        std::env::var("WMS_RESILIENCE_FLOORS").unwrap_or_else(|_| "RESILIENCE_FLOORS.txt".into());
    let fresh = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| panic!("read {fresh_path}: {e} (run bench_resilience first)"));
    let floors =
        std::fs::read_to_string(&floors_path).unwrap_or_else(|e| panic!("read {floors_path}: {e}"));

    let cells = parse_cells(&fresh);
    eprintln!("bench_check: {} fresh cells from {fresh_path}", cells.len());
    match check_floors(&cells, &floors) {
        Ok(checked) => {
            println!("resilience gate: {checked} floors checked, no regression");
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("resilience gate: {v}");
            }
            eprintln!("resilience gate: {} violation(s)", violations.len());
            std::process::exit(1);
        }
    }
}
