//! Figure 9b: watermark survival under uniform random sampling. The
//! paper's headline: sampling below 8 % of the stream (degree ≥ 12) still
//! yields > 97 % detection confidence.

use wms_attacks::UniformSampling;
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, fp) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits", stats.embedded);

    let mut s = Series::new("detected bias");
    let mut tc = Series::new("true-verdict extremes");
    let mut chi = Series::new("chi estimated from subsets");
    for degree in 2..=12usize {
        let attacked = UniformSampling::new(degree, 42).apply(&marked);
        let rate_ratio = marked.len() as f64 / attacked.len() as f64;
        let report = exp::detect(&scheme, &enc, &attacked, TransformHint::Known(rate_ratio));
        s.push(degree as f64, report.bias() as f64);
        tc.push(degree as f64, report.buckets[0].true_count as f64);
        let est = exp::detect(&scheme, &enc, &attacked, TransformHint::Estimate(fp));
        chi.push(degree as f64, est.assumed_transform_degree);
    }
    wms_bench::emit_figure(
        "Figure 9b: watermark bias vs sampling degree (real data)",
        "sampling degree",
        &[s, tc, chi],
    );
}
