//! Figure 10b: watermark survival under *combined* sampling followed by
//! summarization — the paper's hardest benign pipeline. A 25 % sampling
//! followed by 25 % summarization should still leave a convincing bias.

use wms_attacks::{Summarization, UniformSampling};
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::{Pipeline, Transform};

fn main() {
    // Full reference dataset: combined transforms shrink the stream by up
    // to 16x, so the carrier population must start large.
    let (data, _) = datasets::irtf_normalized();
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits", stats.embedded);

    let mut series = Vec::new();
    for summ in 2..=4usize {
        let mut s = Series::new(format!("summarization={summ}"));
        for samp in 2..=4usize {
            let pipeline = Pipeline::new()
                .then(UniformSampling::new(samp, 42))
                .then(Summarization::new(summ));
            let attacked = pipeline.apply(&marked);
            let rate_ratio = marked.len() as f64 / attacked.len() as f64;
            let report = exp::detect(&scheme, &enc, &attacked, TransformHint::Known(rate_ratio));
            s.push(samp as f64, report.bias() as f64);
        }
        series.push(s);
    }
    wms_bench::emit_figure(
        "Figure 10b: watermark bias under combined sampling + summarization (real data)",
        "sampling degree",
        &series,
    );
}
