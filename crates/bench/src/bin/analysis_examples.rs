//! §5 worked examples, recomputed from the closed-form analysis module.

use wms_core::analysis;

fn main() {
    println!("== §5 worked examples ==");
    println!(
        "expected multi-hash search cost, a=5, tau=1:     {:>12.0}   (paper: ~32,000)",
        analysis::expected_search_iterations(5, 1)
    );
    println!(
        "per-extreme false positive, a=5, tau=1:          {:>12.3e} (paper: 2^-15)",
        analysis::per_extreme_false_positive(5, 1)
    );
    let pfp20 = analysis::per_extreme_false_positive(5, 1).powf(20.0);
    println!(
        "P_fp after 20 carrier extremes:                  {:>12.3e} (paper: ~0)",
        pfp20
    );
    println!(
        "degraded limit (1 surviving m_ij), 20 carriers:  {:>12.3e} (paper: ~one in a million)",
        0.5f64.powf(20.0)
    );
    println!(
        "c_m for a=6, a2=50%:                             {:>12.1}   (paper: 15)",
        analysis::altered_pair_count(6, 0.5)
    );
    println!(
        "P(all active m_ij destroyed), a=6,a2=a4=50%:     {:>12.4}   (paper: ~0.0085)",
        analysis::all_active_destroyed(6, 0.5, 0.5)
    );
    println!(
        "extra data to convince, a1=5:                    {:>11.2}%   (paper: ~4.25%)",
        analysis::extra_data_fraction(5, 6, 0.5, 0.5) * 100.0
    );
    println!(
        "min segment for detection, xi=40, lambda=10,rho=2:{:>11.0}   (= xi*(lambda*rho+2))",
        analysis::min_segment_items(40.0, 10, 2)
    );
}
