//! Daemon transport baseline: what the WMSP socket hop costs over
//! driving the engine in-process, what the shed policy does under a
//! flood, and how long kill-and-resume recovery takes. Writes the
//! machine-readable `BENCH_daemon.json`.
//!
//! ```text
//! WMS_BENCH_MS=500 cargo run -p wms-bench --release --bin bench_daemon
//! ```
//!
//! Environment:
//! * `WMS_BENCH_MS`  — wall-clock budget per measurement (default 200 ms);
//! * `WMS_BENCH_OUT` — output path (default `BENCH_daemon.json`).
//!
//! Every socket run is drift-checked: its output file must be
//! byte-identical to the in-process reference or the bench aborts —
//! a throughput number for a daemon that corrupts output is worthless.
//!
//! The daemon listens on a loopback TCP socket (portable, and the
//! honest price of a real network stack). `daemon-embed/transport`
//! compares in-process embedding against the full pipelined
//! send → ack → drain cycle; `daemon-recovery/replay-after-kill` times
//! phase 2 of a crash: rebind with `resume`, full client replay (stale
//! batches refused cheaply), graceful drain. Flood behavior lands in
//! the JSON metadata (`flood_batches` / `flood_shed`).

use std::collections::BTreeSet;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wms_bench::perf::{self, PerfRecord};
use wms_bench::testkit::{
    engine_reference_output, first_divergence, raw_wave_events, test_embed, test_identity,
};
use wms_core::EmbedConfig;
use wms_daemon::proto::batch_frame;
use wms_daemon::{
    BatchReply, Client, DaemonConfig, Endpoint, Outcome, OverloadPolicy, RunReport, Server,
};
use wms_engine::{EngineConfig, Event};

const SCHEMA: &str = "wms-bench-daemon/v1";
const KEY: u64 = 4242;
/// Events per stream in the workload (3 streams).
const PER_STREAM: usize = 1500;
/// Events per WMSP batch.
const BATCH: usize = 256;

fn base_config(dir: &Path, embed: &Arc<EmbedConfig>) -> DaemonConfig {
    DaemonConfig::new(
        Endpoint::Tcp("127.0.0.1:0".into()),
        dir.join("out.csv"),
        EngineConfig::with_workers(1),
        Arc::clone(embed),
        test_identity(KEY),
    )
}

fn start(cfg: DaemonConfig) -> (Endpoint, std::thread::JoinHandle<RunReport>) {
    let server = Server::bind(cfg).expect("bind");
    let ep = Endpoint::parse(server.local_desc()).expect("parse endpoint");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (ep, handle)
}

fn connect(ep: &Endpoint) -> (Client, wms_daemon::Greeting) {
    Client::connect_retry(ep, "bench-daemon", Duration::from_secs(5)).expect("connect")
}

/// Writes every batch (sequence numbers `seq0..`), then absorbs
/// verdicts — resending shed/gap refusals in ascending order once the
/// pipe is drained — until all of them are applied (or already stale
/// from a previous life).
fn pipeline_until_applied(client: &mut Client, batches: &[&[Event]], seq0: u64) {
    for (i, batch) in batches.iter().enumerate() {
        client
            .write_raw(&batch_frame(seq0 + i as u64, batch))
            .expect("write");
    }
    let mut outstanding: BTreeSet<u64> = (seq0..seq0 + batches.len() as u64).collect();
    let mut in_flight = batches.len();
    let mut resend: BTreeSet<u64> = BTreeSet::new();
    while !outstanding.is_empty() {
        let (seq, reply) = client.read_reply().expect("reply");
        in_flight -= 1;
        match reply {
            BatchReply::Acked { .. } | BatchReply::Stale => {
                outstanding.remove(&seq);
            }
            BatchReply::Shed | BatchReply::Gap => {
                resend.insert(seq);
            }
            BatchReply::Draining => panic!("nothing requested a drain"),
        }
        if in_flight == 0 && !outstanding.is_empty() {
            for &seq in &resend {
                client
                    .write_raw(&batch_frame(seq, batches[(seq - seq0) as usize]))
                    .expect("retry write");
                in_flight += 1;
            }
            resend.clear();
        }
    }
}

/// One full daemon lifecycle: bind, pipeline the whole schedule, drain.
fn socket_run(dir: &Path, embed: &Arc<EmbedConfig>, batches: &[&[Event]]) -> RunReport {
    let (ep, handle) = start(base_config(dir, embed));
    let (mut client, _) = connect(&ep);
    pipeline_until_applied(&mut client, batches, 1);
    client.drain().expect("drain");
    handle.join().expect("join")
}

/// Flood a shed-policy daemon (bounded queue, slowed engine) and
/// converge anyway; returns the run report with its shed count.
fn flood_run(dir: &Path, embed: &Arc<EmbedConfig>, batches: &[&[Event]]) -> RunReport {
    let mut cfg = base_config(dir, embed);
    cfg.overload = OverloadPolicy::Shed;
    cfg.queue_depth = 1;
    cfg.ingest_delay = Duration::from_millis(10);
    let (ep, handle) = start(cfg);
    let (mut client, _) = connect(&ep);
    pipeline_until_applied(&mut client, batches, 1);
    client.drain().expect("drain");
    handle.join().expect("join")
}

/// Kill-and-resume: phase 1 hard-stops mid-schedule (the in-process
/// `kill -9` stand-in), phase 2 — the timed part — rebinds with
/// `resume`, replays the entire journal and drains.
fn crash_and_resume(
    dir: &Path,
    embed: &Arc<EmbedConfig>,
    batches: &[&[Event]],
) -> (Duration, RunReport) {
    let mut cfg = base_config(dir, embed);
    cfg.checkpoint = Some(dir.join("daemon.ck"));
    cfg.checkpoint_every = 4;
    cfg.hard_stop_after = (batches.len() as u64 / 2).max(1);
    let (ep, handle) = start(cfg.clone());
    let (mut client, _) = connect(&ep);
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch(i as u64 + 1, batch) {
            Ok(BatchReply::Acked { .. }) => continue,
            // The stop surfaces as a refusal or a torn socket.
            Ok(_) | Err(_) => break,
        }
    }
    let stopped = handle.join().expect("join");
    assert_eq!(stopped.outcome, Outcome::HardStopped);

    let t0 = Instant::now();
    cfg.resume = true;
    cfg.hard_stop_after = 0;
    let (ep, handle) = start(cfg);
    let (mut client, _) = connect(&ep);
    pipeline_until_applied(&mut client, batches, 1);
    client.drain().expect("drain");
    let report = handle.join().expect("join");
    (t0.elapsed(), report)
}

fn check_drift(dir: &Path, reference: &[u8], what: &str) {
    let got = std::fs::read(dir.join("out.csv")).expect("read output");
    if let Some(pos) = first_divergence(reference, &got) {
        eprintln!(
            "bench_daemon: {what}: output drifted from the in-process reference at byte {pos}"
        );
        std::process::exit(1);
    }
}

fn main() {
    let budget_ms: u64 = std::env::var("WMS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let budget = Duration::from_millis(budget_ms.max(1));
    let out_path = std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_daemon.json".into());

    let dir = std::env::temp_dir().join(format!("wms-bench-daemon-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let embed = test_embed(KEY);
    let events = raw_wave_events(&[3, 8, 21], PER_STREAM);
    let batches: Vec<&[Event]> = events.chunks(BATCH).collect();
    let items = events.len() as u64;
    let reference = engine_reference_output(&embed, &batches);
    eprintln!(
        "bench_daemon: {budget_ms} ms per measurement, {items} events in {} batches",
        batches.len()
    );

    let mut records: Vec<PerfRecord> = Vec::new();

    // The no-network denominator: the same engine, driven directly.
    records.push(perf::measure(
        "daemon-embed/transport",
        "in-process",
        items,
        budget,
        || {
            black_box(engine_reference_output(&embed, black_box(&batches)));
        },
    ));

    // Steady-state socket streaming: one long-lived daemon and
    // connection; each iteration pipelines the whole schedule under
    // fresh sequence numbers. Drain/teardown (a ~150 ms constant of
    // quiesce grace and final checkpointing) is excluded here and
    // reported by the lifecycle row instead.
    {
        let (ep, handle) = start(base_config(&dir, &embed));
        let (mut client, _) = connect(&ep);
        let mut next_seq = 1u64;
        records.push(perf::measure(
            "daemon-embed/transport",
            "socket",
            items,
            budget,
            || {
                pipeline_until_applied(&mut client, &batches, next_seq);
                next_seq += batches.len() as u64;
            },
        ));
        client.drain().expect("drain");
        handle.join().expect("join");
    }

    // The same steady-state stream against an auto-sized engine
    // (`workers = 0` → one shard per host core, fed through the
    // per-shard ingest rings with deferred ACKs). On a single-core host
    // this should track the workers=1 row; with spare cores the gap is
    // the daemon's multi-core headroom.
    {
        let mut cfg = base_config(&dir, &embed);
        cfg.engine = EngineConfig::with_workers(0);
        let (ep, handle) = start(cfg);
        let (mut client, _) = connect(&ep);
        let mut next_seq = 1u64;
        records.push(perf::measure(
            "daemon-embed/transport",
            "socket workers=auto",
            items,
            budget,
            || {
                pipeline_until_applied(&mut client, &batches, next_seq);
                next_seq += batches.len() as u64;
            },
        ));
        client.drain().expect("drain");
        handle.join().expect("join");
    }

    // One full lifecycle — bind, handshake, stream, graceful drain —
    // and the byte-identity check against the in-process reference.
    let t0 = Instant::now();
    black_box(socket_run(&dir, &embed, &batches));
    let lifecycle = t0.elapsed();
    check_drift(&dir, &reference, "socket run");
    records.push(PerfRecord {
        bench: "daemon-lifecycle/bind-stream-drain".into(),
        variant: "socket".into(),
        items,
        iters: 1,
        ns_per_iter: lifecycle.as_nanos() as f64,
        items_per_sec: items as f64 * 1e9 / lifecycle.as_nanos() as f64,
    });

    // Shed-rate under flood (counters, not throughput: the run is
    // dominated by the deliberately slowed engine).
    let flood = flood_run(&dir, &embed, &batches);
    check_drift(&dir, &reference, "flood run");

    // Recovery latency: rebind + full replay + drain after a hard stop.
    let (recovery, resumed) = crash_and_resume(&dir, &embed, &batches);
    assert!(
        resumed.stale >= 1,
        "resume must refuse replayed batches as stale"
    );
    check_drift(&dir, &reference, "resumed run");
    records.push(PerfRecord {
        bench: "daemon-recovery/replay-after-kill".into(),
        variant: "socket".into(),
        items,
        iters: 1,
        ns_per_iter: recovery.as_nanos() as f64,
        items_per_sec: items as f64 * 1e9 / recovery.as_nanos() as f64,
    });

    let meta = [
        ("flood_batches", batches.len() as u64),
        ("flood_shed", flood.shed),
        ("recovery_ms", recovery.as_millis() as u64),
    ];
    let json = perf::render_json_meta(SCHEMA, budget_ms, &meta, &records);
    std::fs::write(&out_path, &json).expect("write artifact");
    eprint!("{}", perf::render_perf_table(&records));
    eprintln!(
        "flood: {} of {} batches shed; recovery replay: {} ms; wrote {out_path}",
        flood.shed,
        batches.len(),
        recovery.as_millis()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
