//! Calibration helper: prints ξ(ν,δ) and subset-size statistics of the
//! reference datasets across candidate (δ, ν) operating points. Used to
//! pin the experiment parameters in `exp.rs`.

use wms_bench::datasets;
use wms_core::extremes;
use wms_stream::values_of;

fn main() {
    let (irtf, _) = datasets::irtf_normalized();
    let v = values_of(&irtf);
    println!("IRTF-like ({} samples):", v.len());
    for delta in [0.005f64, 0.01, 0.02, 0.03] {
        let all = extremes::scan(&v, delta);
        let avg = extremes::avg_subset_size(&v, delta).unwrap_or(0.0);
        for nu in [6usize, 10, 14, 20] {
            let majors = all.iter().filter(|e| e.is_major(nu)).count();
            let xi = v.len() as f64 / majors.max(1) as f64;
            println!(
                "  delta={delta:<6} nu={nu:<3} extremes={:<6} majors={majors:<6} xi={xi:<8.1} avg_subset={avg:.1}",
                all.len()
            );
        }
    }
    let (g, _) = datasets::gaussian_normalized(20_000, 6);
    let gv = values_of(&g);
    println!("gaussian ({} samples):", gv.len());
    for delta in [0.01f64, 0.02, 0.04] {
        let all = extremes::scan(&gv, delta);
        let avg = extremes::avg_subset_size(&gv, delta).unwrap_or(0.0);
        for nu in [4usize, 8, 12] {
            let majors = all.iter().filter(|e| e.is_major(nu)).count();
            let xi = gv.len() as f64 / majors.max(1) as f64;
            println!(
                "  delta={delta:<6} nu={nu:<3} extremes={:<6} majors={majors:<6} xi={xi:<8.1} avg_subset={avg:.1}",
                all.len()
            );
        }
    }
}
