//! False-positive calibration: the clean-data bias distribution for two
//! label-entropy configurations (the EXPERIMENTS.md "false-positive
//! calibration" table). Run on unwatermarked streams with independent
//! keys; the resilient (low-entropy) labels trade a fatter clean tail for
//! epsilon-attack survival.
use std::sync::Arc;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{Detector, Scheme, TransformHint, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_stream::normalize_stream;

fn run(p: WmParams, tag: &str) {
    let enc = Arc::new(MultiHashEncoder);
    let mut biases = Vec::new();
    for seed in 0..40u64 {
        let cfg = wms_sensors::IrtfConfig {
            readings: 3000,
            ..Default::default()
        };
        let raw = wms_sensors::generate_irtf(&cfg, 5000 + seed);
        let (stream, _) = normalize_stream(&raw).unwrap();
        let s = Scheme::new(p, KeyedHash::md5(Key::from_u64(31 + seed))).unwrap();
        let r = Detector::detect_stream(s, enc.clone(), 1, &stream, TransformHint::None).unwrap();
        biases.push((r.bias(), r.verdicts));
    }
    let over6 = biases.iter().filter(|(b, _)| *b >= 6).count();
    let over12 = biases.iter().filter(|(b, _)| *b >= 12).count();
    let over20 = biases.iter().filter(|(b, _)| *b >= 20).count();
    let max = biases.iter().map(|(b, _)| *b).max().unwrap();
    let avg_v: f64 = biases.iter().map(|(_, v)| *v as f64).sum::<f64>() / biases.len() as f64;
    println!("{tag}: >=6: {over6}/40, >=12: {over12}/40, >=20: {over20}/40, max {max}, avg verdicts {avg_v:.0}");
}

fn main() {
    let resilient = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 5,
        label_msb_bits: 2,
        min_active: Some(12),
        window: 512,
        ..WmParams::default()
    };
    run(resilient, "resilient (beta'=2, lambda=5)");
    let entropic = WmParams {
        radius: 0.01,
        degree: 10,
        label_len: 10,
        label_msb_bits: 4,
        min_active: Some(12),
        window: 512,
        ..WmParams::default()
    };
    run(entropic, "entropic (beta'=4, lambda=10)");
}
