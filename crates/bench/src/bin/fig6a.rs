//! Figure 6a: label alteration (%) under increasingly aggressive uniform
//! ε-attacks, for label sizes λ = 10 and λ = 25 (1 % of items altered).

use wms_attacks::{label_survival, match_tolerance, EpsilonAttack};
use wms_bench::{datasets, exp, Series};
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::label_study_stream(20000, 6);
    let mut series = Vec::new();
    for lambda in [10usize, 25] {
        let scheme = exp::scheme(
            exp::synthetic_params()
                .with_degree(8)
                .with_label_len(lambda),
        );
        let mut s = Series::new(format!("label size={lambda}"));
        for step in 1..=10 {
            let eps = step as f64 * 0.1;
            let attacked = EpsilonAttack::uniform(0.01, eps, 42).apply(&data);
            let r = label_survival(&scheme, &data, &attacked, 1.0, match_tolerance(1.0));
            s.push(eps, r.altered_pct());
        }
        series.push(s);
    }
    wms_bench::emit_figure(
        "Figure 6a: label alteration vs epsilon-attack amplitude (1% of data altered)",
        "epsilon",
        &series,
    );
}
