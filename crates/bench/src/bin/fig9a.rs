//! Figure 9a: watermark survival under summarization. An increasing
//! summarization degree results in a decreasing detected bias; a bias of
//! 10 already means a false-positive probability of ~1/1024.

use wms_attacks::Summarization;
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, fp) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits", stats.embedded);

    let mut s = Series::new("detected bias");
    let mut tc = Series::new("true-verdict extremes");
    let mut chi = Series::new("chi estimated from subsets");
    for degree in 2..=11usize {
        let attacked = Summarization::new(degree).apply(&marked);
        // χ from the rate ratio ς/ς′ — the paper's primary §4.2 route
        // (stream lengths are known to the detector).
        let rate_ratio = marked.len() as f64 / attacked.len() as f64;
        let report = exp::detect(&scheme, &enc, &attacked, TransformHint::Known(rate_ratio));
        s.push(degree as f64, report.bias() as f64);
        tc.push(degree as f64, report.buckets[0].true_count as f64);
        // Also report the §4.2 subset-shrinkage estimate for comparison.
        let est = exp::detect(&scheme, &enc, &attacked, TransformHint::Estimate(fp));
        chi.push(degree as f64, est.assumed_transform_degree);
    }
    wms_bench::emit_figure(
        "Figure 9a: watermark bias vs summarization degree (real data)",
        "summarization degree",
        &[s, tc, chi],
    );
}
