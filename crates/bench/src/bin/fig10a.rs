//! Figure 10a: watermark survival under segmentation — detected bias as a
//! function of the recovered segment size (full IRTF-like dataset,
//! random contiguous segments, averaged over positions).

use wms_attacks::RandomSegment;
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized();
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, fp) = exp::embed_true(&scheme, &enc, &data);
    eprintln!(
        "embedded {} bits over {} samples",
        stats.embedded,
        marked.len()
    );

    let mut s = Series::new("detected bias (avg of 3 segments)");
    for size in [1000usize, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000] {
        let mut total = 0i64;
        let runs = 3;
        for seed in 0..runs {
            let segment = RandomSegment {
                len: size,
                seed: 100 + seed,
            }
            .apply(&marked);
            let report = exp::detect(&scheme, &enc, &segment, TransformHint::Estimate(fp));
            total += report.bias();
        }
        s.push(size as f64, total as f64 / runs as f64);
    }
    wms_bench::emit_figure(
        "Figure 10a: watermark bias vs recovered segment size (real data)",
        "segment size",
        &[s],
    );
}
