//! Figure 8a: label resilience under sampling (degree 3) as a function of
//! label bit-size λ. Larger labels touch more extremes, so they are more
//! fragile.

use wms_attacks::{label_survival, match_tolerance, UniformSampling};
use wms_bench::{datasets, exp, Series};
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::label_study_stream(40000, 6);
    let attacked = UniformSampling::new(3, 42).apply(&data);
    let mut s = Series::new("labels altered (%)");
    for lambda in [5usize, 10, 15, 20, 25] {
        let scheme = exp::scheme(
            exp::synthetic_params()
                .with_degree(8)
                .with_label_len(lambda),
        );
        let r = label_survival(&scheme, &data, &attacked, 3.0, match_tolerance(3.0));
        s.push(lambda as f64, r.altered_pct());
    }
    wms_bench::emit_figure(
        "Figure 8a: label alteration vs label size under sampling of degree 3",
        "label size",
        &[s],
    );
}
