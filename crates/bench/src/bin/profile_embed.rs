//! Quick component profile of the multihash embed bench workload.
use std::sync::Arc;
use std::time::Instant;
use wms_bench::{datasets, exp};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{Embedder, Watermark, WmParams};

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let reduced = WmParams {
        min_active: Some(12),
        ..exp::irtf_params()
    };
    // Full pipeline timing + stats.
    let t = Instant::now();
    let mut stats = None;
    for _ in 0..20 {
        let (_, s) = Embedder::embed_stream(
            exp::scheme(reduced),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
            &data,
        )
        .unwrap();
        stats = Some(s);
    }
    let full = t.elapsed().as_secs_f64() / 20.0;
    let stats = stats.unwrap();
    println!("full embed: {:.3} ms  stats: {stats:?}", full * 1e3);
    println!(
        "majors={} selected={} embedded={} total_iterations={}",
        stats.majors_seen, stats.selected, stats.embedded, stats.total_iterations
    );

    // Pipeline with an encoder that does nothing (measures scan/window/labeler cost).
    struct NullEnc;
    impl wms_core::SubsetEncoder for NullEnc {
        fn embed(
            &self,
            _s: &wms_core::Scheme,
            values: &[f64],
            _o: usize,
            _l: &wms_core::Label,
            _b: bool,
        ) -> Option<wms_core::EmbedResult> {
            Some(wms_core::EmbedResult {
                values: values.to_vec(),
                iterations: 1,
            })
        }
        fn detect(
            &self,
            _s: &wms_core::Scheme,
            _v: &[f64],
            _l: &wms_core::Label,
        ) -> wms_core::Vote {
            wms_core::Vote::empty()
        }
        fn name(&self) -> &'static str {
            "null"
        }
    }
    let t = Instant::now();
    for _ in 0..20 {
        Embedder::embed_stream(
            exp::scheme(reduced),
            Arc::new(NullEnc),
            Watermark::single(true),
            &data,
        )
        .unwrap();
    }
    println!(
        "null-encoder pipeline: {:.3} ms",
        t.elapsed().as_secs_f64() / 20.0 * 1e3
    );

    // Raw compiled hash throughput.
    let s = exp::scheme(reduced);
    let label = wms_core::Label::from_parts(0b1_0110, 5);
    let mut compiled = s.compile_convention_hasher(&label);
    let t = Instant::now();
    let mut acc = 0u64;
    let n = 1_000_000u64;
    for i in 0..n {
        acc ^= compiled.hash_u64(i);
    }
    let per = t.elapsed().as_nanos() as f64 / n as f64;
    println!("compiled hash: {per:.1} ns/hash (acc {acc})");

    // Batched compiled hash throughput.
    let mut compiled4 = s.compile_convention_hasher(&label);
    let t = Instant::now();
    let mut acc4 = 0u64;
    let n4 = 500_000u64;
    for i in 0..n4 {
        let r = compiled4.hash_u64_x4([i, i + 1, i + 2, i + 3]);
        acc4 ^= r[0] ^ r[1] ^ r[2] ^ r[3];
    }
    let per4 = t.elapsed().as_nanos() as f64 / n4 as f64;
    println!(
        "compiled hash x4: {:.1} ns/batch = {:.1} ns/hash (acc {acc4})",
        per4,
        per4 / 4.0
    );

    let mut compiled8 = s.compile_convention_hasher(&label);
    let t = Instant::now();
    let mut acc8 = 0u64;
    let n8 = 500_000u64;
    for i in 0..n8 {
        let r = compiled8.hash_u64_lanes([i, i + 1, i + 2, i + 3, i + 4, i + 5, i + 6, i + 7]);
        acc8 ^= r.iter().fold(0, |a, b| a ^ b);
    }
    let per8 = t.elapsed().as_nanos() as f64 / n8 as f64;
    println!(
        "compiled hash x8: {:.1} ns/batch = {:.1} ns/hash (acc {acc8})",
        per8,
        per8 / 8.0
    );

    let mut compiled16 = s.compile_convention_hasher(&label);
    let t = Instant::now();
    let mut acc16 = 0u64;
    let n16 = 500_000u64;
    for i in 0..n16 {
        let mut xs = [0u64; 16];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = i + l as u64;
        }
        let r = compiled16.hash_u64_lanes(xs);
        acc16 ^= r.iter().fold(0, |a, b| a ^ b);
    }
    let per16 = t.elapsed().as_nanos() as f64 / n16 as f64;
    println!(
        "compiled hash x16: {:.1} ns/batch = {:.1} ns/hash (acc {acc16})",
        per16,
        per16 / 16.0
    );

    // Direct (midstate) convention_code throughput.
    let t = Instant::now();
    let mut acc2 = 0u64;
    let n2 = 500_000u64;
    for i in 0..n2 {
        acc2 ^= s.convention_code(i as i64, &label);
    }
    let per2 = t.elapsed().as_nanos() as f64 / n2 as f64;
    println!("midstate convention_code: {per2:.1} ns/hash (acc {acc2})");
}
