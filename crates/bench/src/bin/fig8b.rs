//! Figure 8b: label alteration (%) under summarization of increasing
//! degree (label size λ = 10).

use wms_attacks::{label_survival, match_tolerance, Summarization};
use wms_bench::{datasets, exp, Series};
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::label_study_stream(40000, 6);
    let scheme = exp::scheme(exp::synthetic_params().with_degree(8).with_label_len(10));
    let mut s = Series::new("labels altered (%)");
    for degree in [2usize, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let attacked = Summarization::new(degree).apply(&data);
        let r = label_survival(
            &scheme,
            &data,
            &attacked,
            degree as f64,
            match_tolerance(degree as f64),
        );
        s.push(degree as f64, r.altered_pct());
    }
    wms_bench::emit_figure(
        "Figure 8b: label alteration vs summarization degree (lambda=10)",
        "summarization degree",
        &[s],
    );
}
