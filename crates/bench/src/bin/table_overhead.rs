//! §6.4 computation-overhead table: per-item processing cost of each
//! encoding vs the "read and copy" baseline. The paper reports ≈ +5.7 %
//! for the initial encoding and ~+1000 % (and exponentially rising with
//! guaranteed resilience) for the full multi-hash routine.

use std::sync::Arc;
use std::time::Instant;
use wms_bench::report::render_table;
use wms_bench::{datasets, exp};
use wms_core::encoding::initial::InitialEncoder;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::encoding::quadres::QuadResEncoder;
use wms_core::{Embedder, SubsetEncoder, Watermark, WmParams};
use wms_stream::{ReadCopy, Transform};

fn time_embed(params: WmParams, enc: Arc<dyn SubsetEncoder>, data: &[wms_stream::Sample]) -> f64 {
    let scheme = exp::scheme(params);
    let t0 = Instant::now();
    let (_, stats) =
        Embedder::embed_stream(scheme, enc, Watermark::single(true), data).expect("valid config");
    let dt = t0.elapsed().as_secs_f64();
    assert!(stats.embedded > 0, "nothing embedded — timing meaningless");
    dt / data.len() as f64 * 1e9 // ns per item
}

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);

    // Baseline: read-and-copy with a fixed per-item cost.
    let t0 = Instant::now();
    let copied = ReadCopy.apply(&data);
    let base_ns = t0.elapsed().as_secs_f64() / data.len() as f64 * 1e9;
    assert_eq!(copied.len(), data.len());

    let p = exp::irtf_params();
    let scheme = exp::scheme(p);
    let rows_spec: Vec<(&str, WmParams, Arc<dyn SubsetEncoder>)> = vec![
        ("initial (labeled, §3.2/§4.1)", p, Arc::new(InitialEncoder)),
        (
            "quadratic-residue k=3 (§4.3 alt)",
            p,
            Arc::new(QuadResEncoder::from_scheme(&scheme, 3)),
        ),
        (
            "multi-hash, min_active=12 (§4.3 reduced)",
            WmParams {
                min_active: Some(12),
                ..p
            },
            Arc::new(MultiHashEncoder),
        ),
        (
            "multi-hash, full convention a<=4",
            WmParams {
                max_subset: 4,
                min_active: None,
                ..p
            },
            Arc::new(MultiHashEncoder),
        ),
        (
            "multi-hash, full convention a<=5",
            WmParams {
                max_subset: 5,
                min_active: None,
                ..p
            },
            Arc::new(MultiHashEncoder),
        ),
    ];

    let mut rows = Vec::new();
    rows.push(vec![
        "read-and-copy baseline".to_string(),
        format!("{base_ns:.0}"),
        "-".to_string(),
    ]);
    for (name, params, enc) in rows_spec {
        let ns = time_embed(params, enc, &data);
        let overhead = (ns - base_ns) / base_ns * 100.0;
        rows.push(vec![
            name.to_string(),
            format!("{ns:.0}"),
            format!("+{overhead:.0}%"),
        ]);
    }
    let headers = vec![
        "pipeline".to_string(),
        "ns/item".to_string(),
        "overhead vs copy".to_string(),
    ];
    println!("== §6.4 per-item processing overhead ==");
    print!("{}", render_table(&headers, &rows));
    println!(
        "(expected shape: initial cheapest; multi-hash cost explodes with the\n guaranteed-resilience subset size — compare Figure 11a)"
    );
}
