//! Resilience campaign driver: sweeps attack × severity × scheme through
//! both the single-stream pipeline and the multi-stream engine path, and
//! writes the machine-readable `BENCH_resilience.json` the CI regression
//! gate (`bench_check`) compares against the committed floors.
//!
//! ```text
//! cargo run -p wms-bench --release --bin bench_resilience
//! ```
//!
//! Environment:
//! * `WMS_RESILIENCE_GRID`    — `smoke` (default; the committed CI grid)
//!   or `paper` (the wider severity sweep);
//! * `WMS_RESILIENCE_TRIALS`  — streams per cell (default 5);
//! * `WMS_RESILIENCE_ITEMS`   — items per stream (default 5000);
//! * `WMS_BENCH_OUT`          — output path (default `BENCH_resilience.json`);
//! * `WMS_RESILIENCE_FLOORS`  — when set, also (re)writes the floors file
//!   at this path from the fresh results.
//!
//! Detection rates are bit-deterministic given the grid, trials, items
//! and seed — only `items_per_sec` varies run to run. Changing trials or
//! items therefore changes the rates: CI runs the defaults, and the
//! committed `BENCH_resilience.json` must be regenerated with them.

use wms_bench::resilience::{
    grid_by_name, render_floors, render_resilience_json, render_verdict_table, run_campaign,
    Campaign, PathKind,
};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let grid_name = std::env::var("WMS_RESILIENCE_GRID").unwrap_or_else(|_| "smoke".into());
    let grid = grid_by_name(&grid_name).expect("WMS_RESILIENCE_GRID");
    let out_path =
        std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_resilience.json".into());
    let defaults = Campaign::default();
    let campaign = Campaign {
        trials: env_or("WMS_RESILIENCE_TRIALS", defaults.trials),
        items: env_or("WMS_RESILIENCE_ITEMS", defaults.items),
        ..defaults
    };
    eprintln!(
        "bench_resilience: grid={grid_name} ({} specs), {} trials x {} items, both paths",
        grid.len(),
        campaign.trials,
        campaign.items
    );

    let mut cells = Vec::new();
    for encoder in ["multihash", "initial"] {
        for path in [PathKind::Single, PathKind::Engine] {
            cells.extend(
                run_campaign(&campaign, &grid, encoder, path).expect("campaign configuration"),
            );
        }
    }

    print!("{}", render_verdict_table(&cells));
    let json = render_resilience_json(&campaign, &cells);
    std::fs::write(&out_path, &json).expect("write BENCH_resilience.json");
    println!("wrote {out_path}");
    if let Ok(floors_path) = std::env::var("WMS_RESILIENCE_FLOORS") {
        std::fs::write(&floors_path, render_floors(&cells)).expect("write floors");
        println!("wrote {floors_path}");
    }
}
