//! Figure 7a: detected watermark bias under ε-attacks, as a surface over
//! (τ = fraction of data altered, ε = alteration amplitude). Real
//! (IRTF-like) data, one-bit `true` watermark, multi-hash encoding.

use wms_attacks::EpsilonAttack;
use wms_bench::{datasets, exp, Series};
use wms_core::TransformHint;
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits (xi = {:?})", stats.embedded, stats.xi());

    let mut series = Vec::new();
    for amp_step in 0..=4 {
        let eps = amp_step as f64 * 0.1;
        let mut s = Series::new(format!("eps={eps:.1}"));
        for tau_step in 0..=5 {
            let tau = tau_step as f64 * 0.1;
            let attacked = EpsilonAttack::uniform(tau, eps, 7).apply(&marked);
            let report = exp::detect(&scheme, &enc, &attacked, TransformHint::None);
            s.push(tau, report.bias() as f64);
        }
        series.push(s);
    }
    wms_bench::emit_figure(
        "Figure 7a: watermark bias vs (tau, epsilon) epsilon-attack surface (real data)",
        "tau",
        &series,
    );
}
