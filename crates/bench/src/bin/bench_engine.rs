//! Multi-stream engine scaling baseline: measures aggregate embed
//! throughput through `wms-engine` as the stream count and worker count
//! vary, against a sequential single-thread baseline over the same
//! shared-config sessions, and writes the machine-readable
//! `BENCH_engine.json`.
//!
//! ```text
//! WMS_BENCH_MS=500 cargo run -p wms-bench --release --bin bench_engine
//! ```
//!
//! Environment:
//! * `WMS_BENCH_MS`  — wall-clock budget per measurement (default 200 ms);
//! * `WMS_BENCH_OUT` — output path (default `BENCH_engine.json`).
//!
//! The JSON carries `host_cpus`: worker scaling beyond the physical core
//! count cannot speed anything up, so read `workers=N` rows against it.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use wms_bench::perf::{self, PerfRecord};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{EmbedConfig, EmbedSession, Scheme, Watermark, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{Checkpoint, Engine, EngineConfig, Event, StreamId, StreamSpec};
use wms_stream::Sample;

const SCHEMA: &str = "wms-bench-engine/v1";
/// Total items per iteration, split across the streams.
const TOTAL_ITEMS: usize = 65_536;
/// Ingest batch size (events per `Engine::ingest` call).
const BATCH: usize = 4096;

fn params() -> WmParams {
    WmParams {
        window: 256,
        degree: 3,
        radius: 0.01,
        max_subset: 4,
        label_len: 4,
        label_stride: 1,
        min_active: Some(12),
        ..WmParams::default()
    }
}

fn scheme() -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(0xC0FFEE))).unwrap()
}

fn config() -> Arc<EmbedConfig> {
    Arc::new(
        EmbedConfig::new(
            scheme(),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    )
}

/// Round-robin interleaving of `streams` sine streams covering
/// `TOTAL_ITEMS` events in total.
fn workload(streams: usize) -> Vec<Event> {
    let per_stream = (TOTAL_ITEMS / streams).max(1);
    let mut events = Vec::with_capacity(per_stream * streams);
    for i in 0..per_stream {
        for id in 0..streams as u64 {
            let t = i as f64 + id as f64;
            let period = 19.0 + (id % 7) as f64 * 4.0;
            let v = 0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin();
            events.push(Event::new(StreamId(id), Sample::new(i as u64, v)));
        }
    }
    events
}

/// One full engine run: spawn, register, ingest in batches, finish.
/// Returns total samples out (sanity check + black-box anchor).
fn run_engine(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize, workers: usize) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers));
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    let mut n = 0usize;
    for chunk in events.chunks(BATCH) {
        for out in engine.ingest(chunk).unwrap() {
            n += out.samples.len();
        }
    }
    for outcome in engine.finish().unwrap() {
        n += outcome.tail.len();
    }
    n
}

/// [`run_engine`] with a serialized checkpoint taken every `every`
/// batches — the throughput cost of durability.
fn run_engine_checkpointed(
    cfg: &Arc<EmbedConfig>,
    events: &[Event],
    streams: usize,
    workers: usize,
    every: usize,
) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers));
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    let mut n = 0usize;
    for (b, chunk) in events.chunks(BATCH).enumerate() {
        for out in engine.ingest(chunk).unwrap() {
            n += out.samples.len();
        }
        if (b + 1) % every == 0 {
            n += black_box(engine.checkpoint().unwrap().to_bytes()).len() % 2;
        }
    }
    for outcome in engine.finish().unwrap() {
        n += outcome.tail.len();
    }
    n
}

/// An engine mid-run (half the workload ingested), for measuring the
/// checkpoint and restore operations in isolation.
fn warmed_engine(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize) -> Engine {
    let mut engine = Engine::new(EngineConfig::with_workers(1));
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    for chunk in events[..events.len() / 2].chunks(BATCH) {
        engine.ingest(chunk).unwrap();
    }
    engine
}

/// The no-executor baseline: the same shared config and per-stream
/// sessions driven inline on the caller thread, in wire order.
fn run_sequential(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize) -> usize {
    let mut sessions: HashMap<u64, EmbedSession> = (0..streams as u64)
        .map(|id| (id, cfg.new_session()))
        .collect();
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        cfg.push_into(sessions.get_mut(&ev.stream.0).unwrap(), ev.sample, &mut out);
    }
    for (_, mut sess) in sessions {
        cfg.finish_into(&mut sess, &mut out);
    }
    out.len()
}

fn main() {
    let budget_ms: u64 = std::env::var("WMS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let budget = Duration::from_millis(budget_ms.max(1));
    let out_path = std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = config();
    let mut records: Vec<PerfRecord> = Vec::new();
    eprintln!(
        "bench_engine: {budget_ms} ms per measurement, {TOTAL_ITEMS} items, {host_cpus} cpus"
    );

    // Throughput vs stream count: sequential baseline vs the executor.
    for streams in [1usize, 8, 64, 1024] {
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/streams={streams}");
        records.push(perf::measure(&id, "sequential", items, budget, || {
            black_box(run_sequential(&cfg, black_box(&events), streams));
        }));
        for workers in [1usize, host_cpus] {
            let variant = format!("workers={workers}");
            if records
                .iter()
                .any(|r| r.bench == id && r.variant == variant)
            {
                continue; // host_cpus == 1 duplicates workers=1
            }
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine(&cfg, black_box(&events), streams, workers));
            }));
        }
    }

    // Worker sweep at 64 streams (the ≥64-stream scaling row; beyond
    // host_cpus the extra workers only measure executor overhead). The
    // host's own core count is always part of the sweep so the scaling
    // headline below exists on any machine.
    {
        let streams = 64usize;
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/worker-sweep streams={streams}");
        let mut sweep = vec![1usize, 2, 4, 8, host_cpus];
        sweep.sort_unstable();
        sweep.dedup();
        for workers in sweep {
            let variant = format!("workers={workers}");
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine(&cfg, black_box(&events), streams, workers));
            }));
        }
    }

    // Checkpoint/restore overhead at 64 streams on the inline backend.
    {
        let streams = 64usize;
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/checkpointed streams={streams}");
        for every in [4usize, 1] {
            let variant = format!("ckpt-every={every}");
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine_checkpointed(&cfg, &events, streams, 1, every));
            }));
        }
        // The two operations in isolation, on an engine holding half the
        // workload: items/sec here means stream snapshots per second.
        let mut engine = warmed_engine(&cfg, &events, streams);
        let cid = format!("engine-checkpoint/streams={streams}");
        records.push(perf::measure(
            &cid,
            "snapshot+serialize",
            streams as u64,
            budget,
            || {
                black_box(engine.checkpoint().unwrap().to_bytes().len());
            },
        ));
        let bytes = engine.checkpoint().unwrap().to_bytes();
        println!(
            "checkpoint size at {streams} streams (window half-full): {} bytes",
            bytes.len()
        );
        records.push(perf::measure(
            &cid,
            "parse+restore",
            streams as u64,
            budget,
            || {
                let ck = Checkpoint::from_bytes(black_box(&bytes)).unwrap();
                let restored = Engine::restore(EngineConfig::with_workers(1), &ck, |_| {
                    Some(StreamSpec::Embed(Arc::clone(&cfg)))
                })
                .unwrap();
                black_box(restored.workers());
            },
        ));
    }

    print!("{}", perf::render_perf_table(&records));
    let rate = |bench: &str, variant: &str| {
        records
            .iter()
            .find(|r| r.bench == bench && r.variant == variant)
            .map(|r| r.items_per_sec)
    };
    // Inline-dispatch headline: with one worker the engine runs the
    // shard on the caller thread, so streams=1 should track the
    // sequential baseline instead of paying a channel round-trip.
    if let (Some(seq), Some(one)) = (
        rate("engine-embed/streams=1", "sequential"),
        rate("engine-embed/streams=1", "workers=1"),
    ) {
        println!(
            "single-stream executor vs sequential: {:.2}x (inline single-worker dispatch)",
            one / seq
        );
    }
    // Scaling headline: 1 worker -> all cores at 64 streams.
    let sweep = "engine-embed/worker-sweep streams=64";
    if let (Some(one), Some(all)) = (
        rate(sweep, "workers=1"),
        rate(sweep, &format!("workers={host_cpus}")),
    ) {
        println!(
            "scaling 1 -> {host_cpus} workers at 64 streams: {:.2}x (host has {host_cpus} cpus)",
            all / one
        );
    }
    let json = perf::render_json_meta(
        SCHEMA,
        budget_ms,
        &[
            ("host_cpus", host_cpus as u64),
            ("total_items", TOTAL_ITEMS as u64),
            ("batch", BATCH as u64),
        ],
        &records,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
