//! Multi-stream engine scaling baseline: measures aggregate embed
//! throughput through `wms-engine` as the stream count and worker count
//! vary, against a sequential single-thread baseline over the same
//! shared-config sessions, and writes the machine-readable
//! `BENCH_engine.json`.
//!
//! ```text
//! WMS_BENCH_MS=500 cargo run -p wms-bench --release --bin bench_engine
//! ```
//!
//! Environment:
//! * `WMS_BENCH_MS`  — wall-clock budget per measurement (default 200 ms);
//! * `WMS_BENCH_OUT` — output path (default `BENCH_engine.json`).
//!
//! The JSON carries `host_cpus`: worker scaling beyond the physical core
//! count cannot speed anything up, so read `workers=N` rows against it.
//! The `engine-noop` sweep is the sweep's honest denominator: the same
//! executor driven with no-op sessions, so a flat embed sweep on a small
//! host decomposes into executor overhead vs watermark compute instead
//! of being guessed around.
//!
//! The `engine-registry` rows are the bounded-memory capacity proof:
//! one million registered streams processed under a fixed
//! 10,240-session residency budget (cold sessions hibernated to a spill
//! file), with a built-in drift check — the watermarked subset's output
//! must be byte-identical to an unbudgeted engine's, or the bench
//! aborts.

use std::collections::{HashMap, HashSet};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wms_bench::perf::{self, PerfRecord};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{EmbedConfig, EmbedSession, Scheme, Watermark, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_engine::{
    Checkpoint, Engine, EngineConfig, Event, MemoryBudget, RebalanceConfig, StreamId, StreamSpec,
    DEFAULT_RING_CAPACITY,
};
use wms_stream::Sample;
use wms_telemetry::Registry;

const SCHEMA: &str = "wms-bench-engine/v1";
/// Total items per iteration, split across the streams.
const TOTAL_ITEMS: usize = 65_536;
/// Ingest batch size (events per `Engine::ingest` call).
const BATCH: usize = 4096;

fn params() -> WmParams {
    WmParams {
        window: 256,
        degree: 3,
        radius: 0.01,
        max_subset: 4,
        label_len: 4,
        label_stride: 1,
        min_active: Some(12),
        ..WmParams::default()
    }
}

fn scheme() -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(0xC0FFEE))).unwrap()
}

fn config() -> Arc<EmbedConfig> {
    Arc::new(
        EmbedConfig::new(
            scheme(),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    )
}

/// Round-robin interleaving of `streams` sine streams covering
/// `TOTAL_ITEMS` events in total.
fn workload(streams: usize) -> Vec<Event> {
    let per_stream = (TOTAL_ITEMS / streams).max(1);
    let mut events = Vec::with_capacity(per_stream * streams);
    for i in 0..per_stream {
        for id in 0..streams as u64 {
            let t = i as f64 + id as f64;
            let period = 19.0 + (id % 7) as f64 * 4.0;
            let v = 0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin();
            events.push(Event::new(StreamId(id), Sample::new(i as u64, v)));
        }
    }
    events
}

/// One full engine run: spawn, register, ingest in batches, finish.
/// Returns total samples out (sanity check + black-box anchor).
fn run_engine(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize, workers: usize) -> usize {
    run_engine_with(EngineConfig::with_workers(workers), cfg, events, streams)
}

/// [`run_engine`] under an explicit [`EngineConfig`] — the skew rows
/// use this to pit the default rebalancer against `rebalance=off` on
/// identical events.
fn run_engine_with(
    engine_cfg: EngineConfig,
    cfg: &Arc<EmbedConfig>,
    events: &[Event],
    streams: usize,
) -> usize {
    let mut engine = Engine::new(engine_cfg).unwrap();
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    let mut n = 0usize;
    for chunk in events.chunks(BATCH) {
        for out in engine.ingest(chunk).unwrap() {
            n += out.samples.len();
        }
    }
    for outcome in engine.finish().unwrap() {
        n += outcome.tail.len();
    }
    n
}

/// [`run_engine`] over no-op sessions: identical routing, batching,
/// registry and reply traffic, zero per-sample compute. The difference
/// between this and [`run_engine`] is the watermark; the difference
/// between this and doing nothing is the executor.
fn run_engine_noop(events: &[Event], streams: usize, workers: usize) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    for id in 0..streams as u64 {
        engine.register(StreamId(id), StreamSpec::NoOp).unwrap();
    }
    let mut n = 0usize;
    for chunk in events.chunks(BATCH) {
        n += engine.ingest(chunk).unwrap().len();
    }
    n + engine.finish().unwrap().len()
}

/// [`run_engine_noop`] with a telemetry sink attached: the engine's
/// metric handles registered into a [`Registry`] and the exposition
/// rendered once at the end, as a scraping daemon would. Recording is
/// always on (relaxed atomics), so the delta between this row and the
/// plain no-op row is the entire cost a metrics consumer adds — the
/// number behind the "<2% overhead" claim in DESIGN.md §3.18.
fn run_engine_noop_telemetry(events: &[Event], streams: usize, workers: usize) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    let registry = Registry::new();
    engine.metrics().register_into(&registry);
    for id in 0..streams as u64 {
        engine.register(StreamId(id), StreamSpec::NoOp).unwrap();
    }
    let mut n = 0usize;
    for chunk in events.chunks(BATCH) {
        n += engine.ingest(chunk).unwrap().len();
    }
    n += engine.finish().unwrap().len();
    n + black_box(registry.render()).len().min(1)
}

/// Interleaved best-of-rounds measurement for variants whose *delta* is
/// the result: each variant runs [`DRIFT_ROUNDS`] short windows,
/// alternating back-to-back with the others, and keeps its fastest
/// window. Two single long windows minutes apart pick up whatever load
/// drift the host has in between — on a shared core that drift is
/// several percent, dwarfing a sub-percent delta. Alternation gives
/// every variant the same traffic, and min-of-windows discards the
/// noisy ones. Windows are kept short (many rounds) so a multi-second
/// neighbor burst can't contaminate every window of one variant.
const DRIFT_ROUNDS: u32 = 15;

fn measure_interleaved(
    bench: &str,
    items: u64,
    budget: Duration,
    variants: &mut [(String, &mut dyn FnMut())],
) -> Vec<PerfRecord> {
    let slice = (budget / DRIFT_ROUNDS).max(Duration::from_millis(1));
    let mut best: Vec<Option<PerfRecord>> = variants.iter().map(|_| None).collect();
    for _ in 0..DRIFT_ROUNDS {
        for (i, (variant, f)) in variants.iter_mut().enumerate() {
            let r = perf::measure(bench, variant.clone(), items, slice, &mut **f);
            if best[i]
                .as_ref()
                .is_none_or(|b| r.ns_per_iter < b.ns_per_iter)
            {
                best[i] = Some(r);
            }
        }
    }
    best.into_iter().map(Option::unwrap).collect()
}

/// [`run_engine_noop`] through the pipelined `submit`/`collect_next`
/// API instead of the per-batch `ingest` barrier: up to `ring_capacity`
/// epochs ride in flight, so routing of batch N+1 overlaps the shard
/// work of batch N. The gap between this and [`run_engine_noop`] is
/// what the barrier costs.
fn run_engine_noop_pipelined(events: &[Event], streams: usize, workers: usize) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    for id in 0..streams as u64 {
        engine.register(StreamId(id), StreamSpec::NoOp).unwrap();
    }
    let depth = engine.ring_capacity().max(1);
    let mut n = 0usize;
    let mut outstanding = 0usize;
    for chunk in events.chunks(BATCH) {
        while outstanding >= depth {
            let (_, outs) = engine.collect_next().unwrap().expect("epoch outstanding");
            n += outs.len();
            outstanding -= 1;
        }
        engine.submit(chunk).unwrap();
        outstanding += 1;
    }
    while outstanding > 0 {
        let (_, outs) = engine.collect_next().unwrap().expect("epoch outstanding");
        n += outs.len();
        outstanding -= 1;
    }
    n + engine.finish().unwrap().len()
}

/// Skewed interleaving over `streams` streams: stream 0 carries half
/// the events while the rest round-robin the other half — the shape
/// hash-routing loses on and the rebalancer exists for. Per-stream
/// sample indices stay sequential so outputs are well-defined.
fn workload_skewed(streams: usize) -> Vec<Event> {
    assert!(streams >= 2);
    let mut events = Vec::with_capacity(TOTAL_ITEMS);
    let mut next = vec![0u64; streams];
    for i in 0..TOTAL_ITEMS {
        let id = if i % 2 == 0 {
            0
        } else {
            1 + (i / 2) % (streams - 1)
        };
        let k = next[id];
        next[id] += 1;
        events.push(Event::new(
            StreamId(id as u64),
            Sample::new(k, wave_value(k as usize, id as u64)),
        ));
    }
    events
}

/// The per-sample sine used by [`workload`], exposed for the registry
/// bench which builds traffic over a sparse id subset.
fn wave_value(i: usize, id: u64) -> f64 {
    let t = i as f64 + id as f64;
    let period = 19.0 + (id % 7) as f64 * 4.0;
    0.3 * (t * core::f64::consts::TAU / period).sin()
        + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
}

/// Splitmix64 — deterministic cold-stream picks for the registry bench.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One manually-timed run (`iters = 1`) — for workloads like the
/// million-stream registration that are far too large to loop under the
/// wall-clock budget but still belong in the trajectory file.
fn timed_once(bench: &str, variant: &str, items: u64, f: impl FnOnce()) -> PerfRecord {
    let t0 = Instant::now();
    f();
    let ns = t0.elapsed().as_nanos() as f64;
    PerfRecord {
        bench: bench.into(),
        variant: variant.into(),
        items,
        iters: 1,
        ns_per_iter: ns,
        items_per_sec: items as f64 * 1e9 / ns,
    }
}

/// [`run_engine`] with a serialized checkpoint taken every `every`
/// batches — the throughput cost of durability.
fn run_engine_checkpointed(
    cfg: &Arc<EmbedConfig>,
    events: &[Event],
    streams: usize,
    workers: usize,
    every: usize,
) -> usize {
    let mut engine = Engine::new(EngineConfig::with_workers(workers)).unwrap();
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    let mut n = 0usize;
    for (b, chunk) in events.chunks(BATCH).enumerate() {
        for out in engine.ingest(chunk).unwrap() {
            n += out.samples.len();
        }
        if (b + 1) % every == 0 {
            n += black_box(engine.checkpoint().unwrap().to_bytes()).len() % 2;
        }
    }
    for outcome in engine.finish().unwrap() {
        n += outcome.tail.len();
    }
    n
}

/// An engine mid-run (half the workload ingested), for measuring the
/// checkpoint and restore operations in isolation.
fn warmed_engine(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize) -> Engine {
    let mut engine = Engine::new(EngineConfig::with_workers(1)).unwrap();
    for id in 0..streams as u64 {
        engine
            .register(StreamId(id), StreamSpec::Embed(Arc::clone(cfg)))
            .unwrap();
    }
    for chunk in events[..events.len() / 2].chunks(BATCH) {
        engine.ingest(chunk).unwrap();
    }
    engine
}

/// The no-executor baseline: the same shared config and per-stream
/// sessions driven inline on the caller thread, in wire order.
fn run_sequential(cfg: &Arc<EmbedConfig>, events: &[Event], streams: usize) -> usize {
    let mut sessions: HashMap<u64, EmbedSession> = (0..streams as u64)
        .map(|id| (id, cfg.new_session()))
        .collect();
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        cfg.push_into(sessions.get_mut(&ev.stream.0).unwrap(), ev.sample, &mut out);
    }
    for (_, mut sess) in sessions {
        cfg.finish_into(&mut sess, &mut out);
    }
    out.len()
}

fn main() {
    let budget_ms: u64 = std::env::var("WMS_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let budget = Duration::from_millis(budget_ms.max(1));
    let out_path = std::env::var("WMS_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".into());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cfg = config();
    let mut records: Vec<PerfRecord> = Vec::new();
    eprintln!(
        "bench_engine: {budget_ms} ms per measurement, {TOTAL_ITEMS} items, {host_cpus} cpus"
    );

    // Throughput vs stream count: sequential baseline vs the executor.
    for streams in [1usize, 8, 64, 1024] {
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/streams={streams}");
        records.push(perf::measure(&id, "sequential", items, budget, || {
            black_box(run_sequential(&cfg, black_box(&events), streams));
        }));
        for workers in [1usize, host_cpus] {
            let variant = format!("workers={workers}");
            if records
                .iter()
                .any(|r| r.bench == id && r.variant == variant)
            {
                continue; // host_cpus == 1 duplicates workers=1
            }
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine(&cfg, black_box(&events), streams, workers));
            }));
        }
    }

    // Worker sweep at 64 streams (the ≥64-stream scaling row; beyond
    // host_cpus the extra workers only measure executor overhead). The
    // host's own core count is always part of the sweep so the scaling
    // headline below exists on any machine.
    {
        let streams = 64usize;
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/worker-sweep streams={streams}");
        let mut sweep = vec![1usize, 2, 4, 8, host_cpus];
        sweep.sort_unstable();
        sweep.dedup();
        for workers in sweep {
            let variant = format!("workers={workers}");
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine(&cfg, black_box(&events), streams, workers));
            }));
        }
    }

    // The same sweep over no-op sessions: pure executor overhead
    // (routing, batching, channel traffic, registry bookkeeping). The
    // embed sweep above conflates executor and watermark cost — this is
    // its denominator.
    {
        let streams = 64usize;
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-noop/worker-sweep streams={streams}");
        let mut sweep = vec![1usize, 2, 4, 8, host_cpus];
        sweep.sort_unstable();
        sweep.dedup();
        for workers in sweep {
            // The plain row and its telemetry twin (same run with a
            // sink registered and the exposition rendered once — the
            // overhead-claim pair behind "<2%" in DESIGN.md §3.18) are
            // measured interleaved: their true delta is microseconds,
            // so host load drift between two separate windows would
            // otherwise be the entire signal.
            let mut plain = || {
                black_box(run_engine_noop(black_box(&events), streams, workers));
            };
            let mut telemetry = || {
                black_box(run_engine_noop_telemetry(
                    black_box(&events),
                    streams,
                    workers,
                ));
            };
            records.extend(measure_interleaved(
                &id,
                items,
                budget,
                &mut [
                    (format!("workers={workers}"), &mut plain),
                    (format!("workers={workers} telemetry"), &mut telemetry),
                ],
            ));
            // The same run through submit/collect with the ring's full
            // in-flight window — barrier vs pipelined on one chart.
            let variant = format!("workers={workers} pipelined");
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine_noop_pipelined(
                    black_box(&events),
                    streams,
                    workers,
                ));
            }));
        }
    }

    // Skewed traffic: stream 0 carries half the events while 63 streams
    // share the rest. Hash routing pins the hot stream to one shard;
    // the rows pair the default rebalancer (steals whole streams off
    // the hot shard at epoch boundaries) against rebalance=off on the
    // same events, with the sequential baseline as denominator.
    {
        let streams = 64usize;
        let events = workload_skewed(streams);
        let items = events.len() as u64;
        let id = "engine-embed/skewed streams=64 hot=1/2";
        records.push(perf::measure(id, "sequential", items, budget, || {
            black_box(run_sequential(&cfg, black_box(&events), streams));
        }));
        let mut sweep = vec![1usize, 2, host_cpus];
        sweep.sort_unstable();
        sweep.dedup();
        for workers in sweep {
            let variant = format!("workers={workers}");
            records.push(perf::measure(id, &variant, items, budget, || {
                black_box(run_engine(&cfg, black_box(&events), streams, workers));
            }));
        }
        let off = EngineConfig::with_workers(2).with_rebalance(RebalanceConfig::disabled());
        records.push(perf::measure(
            id,
            "workers=2 rebalance=off",
            items,
            budget,
            || {
                black_box(run_engine_with(
                    off.clone(),
                    &cfg,
                    black_box(&events),
                    streams,
                ));
            },
        ));
    }

    // Hibernation latency: one full evict → spill → read → checksum →
    // restore → re-adopt cycle, for a real embed session (window 256)
    // and for a no-op session (pure spill framing). items/sec = cycles
    // per second; 1e9/items_per_sec = ns per cycle.
    {
        let streams = 64usize;
        let events = workload(streams);
        let mut engine = warmed_engine(&cfg, &events, streams);
        let mut idx = (events.len() / streams) as u64;
        records.push(perf::measure(
            "engine-hibernate/streams=64 window=256",
            "evict+readopt cycle",
            1,
            budget,
            || {
                engine.hibernate(StreamId(0)).unwrap();
                let ev = Event::new(StreamId(0), Sample::new(idx, wave_value(idx as usize, 0)));
                idx += 1;
                black_box(engine.ingest(std::slice::from_ref(&ev)).unwrap());
            },
        ));
        let mut engine = Engine::new(EngineConfig::with_workers(1)).unwrap();
        engine.register(StreamId(0), StreamSpec::NoOp).unwrap();
        let mut idx = 0u64;
        records.push(perf::measure(
            "engine-hibernate/noop",
            "evict+readopt cycle",
            1,
            budget,
            || {
                engine.hibernate(StreamId(0)).unwrap();
                let ev = Event::new(StreamId(0), Sample::new(idx, 0.0));
                idx += 1;
                black_box(engine.ingest(std::slice::from_ref(&ev)).unwrap());
            },
        ));
    }

    // Checkpoint/restore overhead at 64 streams on the inline backend.
    {
        let streams = 64usize;
        let events = workload(streams);
        let items = events.len() as u64;
        let id = format!("engine-embed/checkpointed streams={streams}");
        for every in [4usize, 1] {
            let variant = format!("ckpt-every={every}");
            records.push(perf::measure(&id, &variant, items, budget, || {
                black_box(run_engine_checkpointed(&cfg, &events, streams, 1, every));
            }));
        }
        // The two operations in isolation, on an engine holding half the
        // workload: items/sec here means stream snapshots per second.
        let mut engine = warmed_engine(&cfg, &events, streams);
        let cid = format!("engine-checkpoint/streams={streams}");
        records.push(perf::measure(
            &cid,
            "snapshot+serialize",
            streams as u64,
            budget,
            || {
                black_box(engine.checkpoint().unwrap().to_bytes().len());
            },
        ));
        let bytes = engine.checkpoint().unwrap().to_bytes();
        println!(
            "checkpoint size at {streams} streams (window half-full): {} bytes",
            bytes.len()
        );
        records.push(perf::measure(
            &cid,
            "parse+restore",
            streams as u64,
            budget,
            || {
                let ck = Checkpoint::from_bytes(black_box(&bytes)).unwrap();
                let restored = Engine::restore(EngineConfig::with_workers(1), &ck, |_| {
                    Some(StreamSpec::Embed(Arc::clone(&cfg)))
                })
                .unwrap();
                black_box(restored.workers());
            },
        ));
    }

    // Bounded-memory capacity proof: one MILLION registered streams
    // under a fixed 10,240-session residency budget, cold sessions
    // hibernated to a spill file. A sparse subset of 512 streams carries
    // real embed sessions; its output is compared byte-for-byte against
    // an unbudgeted reference engine, and any drift aborts the bench —
    // the committed row certifies capacity *and* exactness at once.
    let registry_drift_checked: u64;
    {
        const REGISTRY_STREAMS: usize = 1_000_000;
        const REGISTRY_BUDGET: usize = 10_240;
        const EMBED_SUBSET: usize = 512;
        const PER_STREAM: usize = 300;
        let spill_path = std::env::temp_dir().join(format!(
            "wms-bench-registry-spill-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&spill_path);
        eprintln!(
            "bench_engine: registry run ({REGISTRY_STREAMS} streams, budget {REGISTRY_BUDGET})"
        );
        let engine_cfg = EngineConfig::with_workers(1).with_budget(
            MemoryBudget::resident(REGISTRY_BUDGET).with_spill_file(spill_path.clone()),
        );
        let mut engine = Engine::new(engine_cfg).unwrap();
        // The watermarked subset, spread across the whole id space.
        let embed_ids: Vec<u64> = (0..EMBED_SUBSET as u64).map(|i| i * 1953 + 7).collect();
        let embed_set: HashSet<u64> = embed_ids.iter().copied().collect();
        let bench_id =
            format!("engine-registry/streams={REGISTRY_STREAMS} budget={REGISTRY_BUDGET}");
        records.push(timed_once(
            &bench_id,
            "register+evict",
            REGISTRY_STREAMS as u64,
            || {
                for id in 0..REGISTRY_STREAMS as u64 {
                    let spec = if embed_set.contains(&id) {
                        StreamSpec::Embed(Arc::clone(&cfg))
                    } else {
                        StreamSpec::NoOp
                    };
                    engine.register(StreamId(id), spec).unwrap();
                }
            },
        ));
        assert!(
            engine.resident_streams() <= REGISTRY_BUDGET,
            "budget violated: {} resident",
            engine.resident_streams()
        );
        assert_eq!(
            engine.resident_streams() + engine.spilled_streams(),
            REGISTRY_STREAMS
        );

        // Traffic: the embed subset round-robin, plus deterministic cold
        // no-op touches sprinkled in so the LRU keeps churning embed
        // sessions through the spill during the measurement.
        let mut rng = 0xB16_5EEDu64;
        let mut events = Vec::with_capacity(EMBED_SUBSET * PER_STREAM + 4 * PER_STREAM);
        let mut embed_only = Vec::with_capacity(EMBED_SUBSET * PER_STREAM);
        for i in 0..PER_STREAM {
            for &id in &embed_ids {
                let ev = Event::new(StreamId(id), Sample::new(i as u64, wave_value(i, id)));
                events.push(ev);
                embed_only.push(ev);
            }
            for _ in 0..4 {
                let cold = splitmix(&mut rng) % REGISTRY_STREAMS as u64;
                if !embed_set.contains(&cold) {
                    events.push(Event::new(StreamId(cold), Sample::new(i as u64, 0.0)));
                }
            }
        }
        let mut outputs: HashMap<u64, Vec<Sample>> = HashMap::new();
        records.push(timed_once(
            &bench_id,
            "ingest+readopt",
            events.len() as u64,
            || {
                for chunk in events.chunks(BATCH) {
                    for out in engine.ingest(chunk).unwrap() {
                        if embed_set.contains(&out.stream.0) {
                            outputs.entry(out.stream.0).or_default().extend(out.samples);
                        }
                    }
                }
            },
        ));
        let mut outcomes = Vec::new();
        records.push(timed_once(
            &bench_id,
            "finish-drain",
            REGISTRY_STREAMS as u64,
            || {
                outcomes = engine.finish().unwrap();
            },
        ));
        let mut stats = HashMap::new();
        for o in outcomes {
            if embed_set.contains(&o.stream.0) {
                outputs.entry(o.stream.0).or_default().extend(o.tail);
                stats.insert(o.stream.0, o.embed_stats.expect("embed subset"));
            }
        }
        let _ = std::fs::remove_file(&spill_path);

        // The drift check: an unbudgeted engine over just the embed
        // subset must produce the same bytes.
        let mut reference = Engine::new(EngineConfig::with_workers(1)).unwrap();
        for &id in &embed_ids {
            reference
                .register(StreamId(id), StreamSpec::Embed(Arc::clone(&cfg)))
                .unwrap();
        }
        let mut want: HashMap<u64, Vec<Sample>> = HashMap::new();
        for chunk in embed_only.chunks(BATCH) {
            for out in reference.ingest(chunk).unwrap() {
                want.entry(out.stream.0).or_default().extend(out.samples);
            }
        }
        for o in reference.finish().unwrap() {
            want.entry(o.stream.0).or_default().extend(o.tail);
            assert_eq!(
                stats.get(&o.stream.0),
                Some(&o.embed_stats.expect("embed subset")),
                "registry drift: stream {} stats diverged under the budget",
                o.stream
            );
        }
        for (&id, w) in &want {
            let g = &outputs[&id];
            assert_eq!(g.len(), w.len(), "registry drift: stream {id} length");
            for (i, (a, b)) in g.iter().zip(w).enumerate() {
                assert_eq!(
                    a.value.to_bits(),
                    b.value.to_bits(),
                    "registry drift: stream {id} sample {i}"
                );
            }
        }
        registry_drift_checked = want.len() as u64;
        println!(
            "registry: {REGISTRY_STREAMS} streams under a {REGISTRY_BUDGET}-resident budget; \
             zero output drift across {registry_drift_checked} watermarked streams"
        );
    }

    print!("{}", perf::render_perf_table(&records));
    let rate = |bench: &str, variant: &str| {
        records
            .iter()
            .find(|r| r.bench == bench && r.variant == variant)
            .map(|r| r.items_per_sec)
    };
    // Inline-dispatch headline: with one worker the engine runs the
    // shard on the caller thread, so streams=1 should track the
    // sequential baseline instead of paying a channel round-trip.
    if let (Some(seq), Some(one)) = (
        rate("engine-embed/streams=1", "sequential"),
        rate("engine-embed/streams=1", "workers=1"),
    ) {
        println!(
            "single-stream executor vs sequential: {:.2}x (inline single-worker dispatch)",
            one / seq
        );
    }
    // Scaling headline: 1 worker -> all cores at 64 streams.
    let sweep = "engine-embed/worker-sweep streams=64";
    if let (Some(one), Some(all)) = (
        rate(sweep, "workers=1"),
        rate(sweep, &format!("workers={host_cpus}")),
    ) {
        println!(
            "scaling 1 -> {host_cpus} workers at 64 streams: {:.2}x (host has {host_cpus} cpus)",
            all / one
        );
    }
    // Pipelining headline: what does skipping the per-batch barrier buy
    // on the pure-executor sweep?
    if let (Some(barrier), Some(pipelined)) = (
        rate("engine-noop/worker-sweep streams=64", "workers=2"),
        rate("engine-noop/worker-sweep streams=64", "workers=2 pipelined"),
    ) {
        println!(
            "pipelined submit/collect vs per-batch barrier (no-op, workers=2): {:.2}x",
            pipelined / barrier
        );
    }
    // Skew headline: the rebalancer's worth on hot-stream traffic.
    if let (Some(off), Some(on)) = (
        rate(
            "engine-embed/skewed streams=64 hot=1/2",
            "workers=2 rebalance=off",
        ),
        rate("engine-embed/skewed streams=64 hot=1/2", "workers=2"),
    ) {
        println!(
            "skewed 64-stream run, workers=2: rebalance on vs off: {:.2}x",
            on / off
        );
    }
    // Overhead headline: what share of an embed run is the executor
    // itself? (no-op sessions process the same events through the same
    // machinery with zero watermark compute).
    if let (Some(noop), Some(embed)) = (
        rate("engine-noop/worker-sweep streams=64", "workers=1"),
        rate(sweep, "workers=1"),
    ) {
        println!(
            "executor overhead at 64 streams: no-op runs {:.1}x the embed rate \
             (executor is ~{:.1}% of the embed run)",
            noop / embed,
            100.0 * embed / noop
        );
    }
    let json = perf::render_json_meta(
        SCHEMA,
        budget_ms,
        &[
            ("host_cpus", host_cpus as u64),
            ("total_items", TOTAL_ITEMS as u64),
            ("batch", BATCH as u64),
            ("ring_capacity", DEFAULT_RING_CAPACITY as u64),
            (
                "rebalance_every_batches",
                RebalanceConfig::default().every_batches,
            ),
            (
                "rebalance_ratio_x100",
                (RebalanceConfig::default().ratio * 100.0) as u64,
            ),
            ("registry_streams", 1_000_000),
            ("registry_budget", 10_240),
            ("registry_drift_streams_checked", registry_drift_checked),
            ("registry_drift_samples", 0),
        ],
        &records,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
