//! Ablation of the design choices DESIGN.md §3 calls out:
//!
//! 1. **Verdict aggregation** — singles-first (m_ii weighted ahead of the
//!    multi-item averages) vs a flat majority over all m_ij;
//! 2. **ν′ adjustment** — ⌈ν/χ⌉ (ceiling) vs the nominal χ=1 detection
//!    (no adjustment at all), quantifying what §4.2 buys.
//!
//! Both are measured as detected bias on the same marked stream under
//! sampling and summarization.

use std::sync::Arc;
use wms_attacks::{Summarization, UniformSampling};
use wms_bench::report::render_table;
use wms_bench::{datasets, exp};
use wms_core::encoding::multihash::MultiHashFlatMajority;
use wms_core::{SubsetEncoder, TransformHint};
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(5000);
    let scheme = exp::scheme(exp::irtf_params());
    let enc = exp::encoder();
    let (marked, stats, _) = exp::embed_true(&scheme, &enc, &data);
    eprintln!("embedded {} bits", stats.embedded);
    let flat: Arc<dyn SubsetEncoder> = Arc::new(MultiHashFlatMajority);

    let mut rows = Vec::new();
    let attacks: Vec<(String, Vec<wms_stream::Sample>, f64)> = vec![
        ("none".into(), marked.clone(), 1.0),
        (
            "sampling 2".into(),
            UniformSampling::new(2, 42).apply(&marked),
            2.0,
        ),
        (
            "sampling 4".into(),
            UniformSampling::new(4, 42).apply(&marked),
            4.0,
        ),
        (
            "summarization 2".into(),
            Summarization::new(2).apply(&marked),
            2.0,
        ),
        (
            "summarization 3".into(),
            Summarization::new(3).apply(&marked),
            3.0,
        ),
    ];
    for (name, attacked, chi) in &attacks {
        let singles = exp::detect(&scheme, &enc, attacked, TransformHint::Known(*chi));
        let flatrep = exp::detect(&scheme, &flat, attacked, TransformHint::Known(*chi));
        let nochi = exp::detect(&scheme, &enc, attacked, TransformHint::None);
        rows.push(vec![
            name.clone(),
            format!("{}", singles.bias()),
            format!("{}", flatrep.bias()),
            format!("{}", nochi.bias()),
        ]);
    }
    let headers = vec![
        "attack".to_string(),
        "singles-first + nu'".to_string(),
        "flat majority + nu'".to_string(),
        "singles-first, no nu' adj".to_string(),
    ];
    println!("== Ablation: verdict aggregation and nu' adjustment ==");
    print!("{}", render_table(&headers, &rows));
    println!(
        "(singles-first should dominate flat majority under transforms;\n dropping the §4.2 nu' adjustment should cost bias on transformed data)"
    );
}
