//! Figure 6b: label alteration (%) under uniform ε-attacks altering 1 %
//! vs 2 % of the data (label size λ = 10).

use wms_attacks::{label_survival, match_tolerance, EpsilonAttack};
use wms_bench::{datasets, exp, Series};
use wms_stream::Transform;

fn main() {
    let (data, _) = datasets::label_study_stream(20000, 6);
    let scheme = exp::scheme(exp::synthetic_params().with_degree(8).with_label_len(10));
    let mut series = Vec::new();
    for frac in [0.01f64, 0.02] {
        let mut s = Series::new(format!("{:.0}% of data", frac * 100.0));
        for step in 1..=10 {
            let eps = step as f64 * 0.1;
            let attacked = EpsilonAttack::uniform(frac, eps, 42).apply(&data);
            let r = label_survival(&scheme, &data, &attacked, 1.0, match_tolerance(1.0));
            s.push(eps, r.altered_pct());
        }
        series.push(s);
    }
    wms_bench::emit_figure(
        "Figure 6b: label alteration vs epsilon, by altered-data fraction (lambda=10)",
        "epsilon",
        &series,
    );
}
