//! §4.1/§4.3 ablation: Mallory's bucket-counting attack against the three
//! encodings. The unlabeled initial scheme collapses; the labeled initial
//! scheme retains most of its bias; the multi-hash scheme is invisible to
//! the counter and unaffected.

use std::sync::Arc;
use wms_attacks::BucketCountingAttack;
use wms_bench::report::render_table;
use wms_bench::{datasets, exp};
use wms_core::encoding::initial::{InitialEncoder, UnlabeledInitialEncoder};
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{SubsetEncoder, TransformHint};
use wms_stream::{values_of, Transform};

fn main() {
    let (data, _) = datasets::irtf_normalized_prefix(6000);
    let attack = BucketCountingAttack {
        radius: exp::irtf_params().radius,
        degree: exp::irtf_params().degree,
        ..BucketCountingAttack::default()
    };

    let encoders: Vec<(&str, Arc<dyn SubsetEncoder>)> = vec![
        (
            "initial, unlabeled (§3.2)",
            Arc::new(UnlabeledInitialEncoder),
        ),
        ("initial, labeled (§4.1)", Arc::new(InitialEncoder)),
        ("multi-hash (§4.3)", Arc::new(MultiHashEncoder)),
    ];

    let mut rows = Vec::new();
    for (name, enc) in encoders {
        let scheme = exp::scheme(exp::irtf_params());
        let (marked, _, _) = exp::embed_true(&scheme, &enc, &data);
        let findings = attack.analyze(&values_of(&marked));
        let before = exp::detect(&scheme, &enc, &marked, TransformHint::None);
        let attacked = attack.apply(&marked);
        let after = exp::detect(&scheme, &enc, &attacked, TransformHint::None);
        rows.push(vec![
            name.to_string(),
            format!("{}", findings.len()),
            format!("{}", before.bias()),
            format!("{}", after.bias()),
        ]);
    }
    let headers = vec![
        "encoding".to_string(),
        "biased positions found".to_string(),
        "bias before attack".to_string(),
        "bias after attack".to_string(),
    ];
    println!("== Bucket-counting correlation attack ablation (§4.1/§4.3) ==");
    print!("{}", render_table(&headers, &rows));
}
