//! Self-timed perf baseline harness: measures pipeline workloads and
//! writes the machine-readable `BENCH_pipeline.json` trajectory file.
//!
//! Unlike the criterion-shim benches (which print to stdout and are meant
//! for interactive use), this module produces one structured artifact per
//! run so successive PRs can diff throughput. The `bench_baseline` binary
//! drives it over the §6 pipeline workloads in *before* (naive encoder,
//! midstate disabled) and *after* (memoized + midstate + scratch-buffer)
//! variants.

use std::time::{Duration, Instant};

/// One measured workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Workload id, e.g. `pipeline-embed/multihash min_active=12 5k items`.
    pub bench: String,
    /// `naive` (pre-overhaul hot path) or `optimized`.
    pub variant: String,
    /// Logical items processed per iteration.
    pub items: u64,
    /// Timed iterations.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Derived items/second throughput.
    pub items_per_sec: f64,
}

/// Runs `f` repeatedly for roughly `budget` (after one untimed warmup
/// pass; at least one timed iteration always runs) and derives items/sec.
pub fn measure(
    bench: impl Into<String>,
    variant: impl Into<String>,
    items: u64,
    budget: Duration,
    mut f: impl FnMut(),
) -> PerfRecord {
    // Warmup: lazy init (datasets, allocator pools) must not skew iter 1.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    let elapsed = loop {
        f();
        iters += 1;
        let e = start.elapsed();
        if e >= budget {
            break e;
        }
    };
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    PerfRecord {
        bench: bench.into(),
        variant: variant.into(),
        items,
        iters,
        ns_per_iter,
        items_per_sec: items as f64 * 1e9 / ns_per_iter,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the `BENCH_pipeline.json` document (hand-rolled JSON; the
/// workspace is offline and carries no serde).
pub fn render_json(schema: &str, budget_ms: u64, records: &[PerfRecord]) -> String {
    render_json_meta(schema, budget_ms, &[], records)
}

/// [`render_json`] with extra top-level numeric metadata fields (e.g.
/// `host_cpus` for scaling benches, whose numbers are meaningless
/// without the core count they ran on).
pub fn render_json_meta(
    schema: &str,
    budget_ms: u64,
    meta: &[(&str, u64)],
    records: &[PerfRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", json_escape(schema)));
    out.push_str(&format!("  \"budget_ms\": {budget_ms},\n"));
    for (k, v) in meta {
        out.push_str(&format!("  \"{}\": {v},\n", json_escape(k)));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"variant\": \"{}\", \"items\": {}, \"iters\": {}, \
             \"ns_per_iter\": {:.1}, \"items_per_sec\": {:.1}}}{}\n",
            json_escape(&r.bench),
            json_escape(&r.variant),
            r.items,
            r.iters,
            r.ns_per_iter,
            r.items_per_sec,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table printed next to the JSON artifact.
pub fn render_perf_table(records: &[PerfRecord]) -> String {
    let headers: Vec<String> = ["bench", "variant", "items/sec", "ns/iter", "iters"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.bench.clone(),
                r.variant.clone(),
                format!("{:.0}", r.items_per_sec),
                format!("{:.0}", r.ns_per_iter),
                r.iters.to_string(),
            ]
        })
        .collect();
    crate::report::render_table(&headers, &rows)
}

/// Speedup of `optimized` over `naive` for one bench id, when both are
/// present.
pub fn speedup(records: &[PerfRecord], bench: &str) -> Option<f64> {
    let of = |variant: &str| {
        records
            .iter()
            .find(|r| r.bench == bench && r.variant == variant)
            .map(|r| r.items_per_sec)
    };
    Some(of("optimized")? / of("naive")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bench: &str, variant: &str, rate: f64) -> PerfRecord {
        PerfRecord {
            bench: bench.into(),
            variant: variant.into(),
            items: 100,
            iters: 3,
            ns_per_iter: 100.0 * 1e9 / rate,
            items_per_sec: rate,
        }
    }

    #[test]
    fn measure_runs_at_least_once_and_derives_rate() {
        let mut calls = 0u32;
        let r = measure("t", "optimized", 50, Duration::ZERO, || calls += 1);
        assert!(calls >= 2, "warmup + >=1 timed iteration");
        assert!(r.iters >= 1);
        assert!(r.items_per_sec > 0.0);
        assert_eq!(r.items, 50);
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let records = vec![
            rec("embed/x", "naive", 1e5),
            rec("embed/x", "optimized", 4e5),
        ];
        let j = render_json("wms-bench-pipeline/v1", 200, &records);
        assert!(j.contains("\"schema\": \"wms-bench-pipeline/v1\""));
        assert!(j.contains("\"budget_ms\": 200"));
        assert!(j.contains("\"variant\": \"naive\""));
        assert!(j.contains("\"variant\": \"optimized\""));
        // Exactly one comma between the two result objects, none trailing.
        assert_eq!(j.matches("},\n").count(), 1);
        assert!(!j.contains(",\n  ]"));
        let braces = j.matches('{').count();
        assert_eq!(braces, j.matches('}').count());
    }

    #[test]
    fn json_meta_fields_injected() {
        let j = render_json_meta("s", 5, &[("host_cpus", 4), ("total_items", 100)], &[]);
        assert!(j.contains("\"host_cpus\": 4"));
        assert!(j.contains("\"total_items\": 100"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_escapes_quotes() {
        let records = vec![rec("weird\"id", "optimized", 1.0)];
        let j = render_json("s", 1, &records);
        assert!(j.contains("weird\\\"id"));
    }

    #[test]
    fn speedup_pairs_variants() {
        let records = vec![
            rec("embed", "naive", 1e5),
            rec("embed", "optimized", 3.5e5),
            rec("detect", "optimized", 2e5),
        ];
        let s = speedup(&records, "embed").unwrap();
        assert!((s - 3.5).abs() < 1e-9);
        assert!(speedup(&records, "detect").is_none());
    }

    #[test]
    fn table_includes_every_record() {
        let records = vec![rec("a", "naive", 1.0), rec("b", "optimized", 2.0)];
        let t = render_perf_table(&records);
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains("items/sec"));
    }
}
