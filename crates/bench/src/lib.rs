//! # wms-bench
//!
//! The experiment harness regenerating every figure and table of the
//! paper's evaluation (§6). Each `src/bin/figNN.rs` binary reproduces one
//! plot and prints both an aligned table and a CSV block; the Criterion
//! benches in `benches/` cover the timing claims of §6.4.
//!
//! Run e.g.:
//! ```text
//! cargo run -p wms-bench --release --bin fig9b
//! cargo bench -p wms-bench
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemonfault;
pub mod datasets;
pub mod exp;
pub mod perf;
pub mod reference;
pub mod report;
pub mod resilience;
pub mod testkit;

pub use report::{emit_figure, Series};
