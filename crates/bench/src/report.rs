//! Plain-text figure/table reporting.
//!
//! Every figure binary prints (a) a human-readable aligned table of the
//! series the paper plots and (b) a machine-readable CSV block, so runs
//! can be diffed and re-plotted.

/// One plotted series: label plus (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a figure as an aligned text table (x column + one column per
/// series). All series must share the same x grid.
pub fn render_figure(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    if series.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let mut headers = vec![x_label.to_string()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let n = series[0].points.len();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = vec![fmt_num(series[0].points[i].0)];
        for s in series {
            row.push(s.points.get(i).map(|p| fmt_num(p.1)).unwrap_or_default());
        }
        rows.push(row);
    }
    out.push_str(&render_table(&headers, &rows));
    out
}

/// Renders an aligned text table.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c.min(widths.len() - 1)]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders the CSV block for a figure.
pub fn render_csv(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("csv:");
    out.push_str(x_label);
    for s in series {
        out.push(',');
        out.push_str(&s.label.replace(',', ";"));
    }
    out.push('\n');
    if let Some(first) = series.first() {
        for i in 0..first.points.len() {
            out.push_str(&format!("csv:{}", first.points[i].0));
            for s in series {
                match s.points.get(i) {
                    Some(p) => out.push_str(&format!(",{}", p.1)),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Prints figure table + CSV to stdout (the binaries' single entry point).
pub fn emit_figure(title: &str, x_label: &str, series: &[Series]) {
    print!("{}", render_figure(title, x_label, series));
    print!("{}", render_csv(x_label, series));
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        let mut a = Series::new("label size=10");
        a.push(0.1, 5.0);
        a.push(0.2, 11.5);
        let mut b = Series::new("label size=25");
        b.push(0.1, 9.0);
        b.push(0.2, 20.25);
        vec![a, b]
    }

    #[test]
    fn figure_rendering_contains_everything() {
        let s = demo_series();
        let out = render_figure("Figure 6a", "epsilon", &s);
        assert!(out.contains("Figure 6a"));
        assert!(out.contains("label size=10"));
        assert!(out.contains("label size=25"));
        assert!(out.contains("epsilon"));
        assert!(out.contains("11.5"));
        assert!(out.contains("20.25"));
    }

    #[test]
    fn csv_block_is_machine_readable() {
        let s = demo_series();
        let csv = render_csv("epsilon", &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "csv:epsilon,label size=10,label size=25");
        assert_eq!(lines[1], "csv:0.1,5,9");
        assert_eq!(lines[2], "csv:0.2,11.5,20.25");
    }

    #[test]
    fn table_alignment_pads_columns() {
        let headers = vec!["x".to_string(), "verylongheader".to_string()];
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let t = render_table(&headers, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(
            lines[0].len(),
            lines[2].len(),
            "rows padded to header width"
        );
    }

    #[test]
    fn empty_figure_safe() {
        let out = render_figure("t", "x", &[]);
        assert!(out.contains("no data"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(5.0), "5");
        assert_eq!(fmt_num(5.25), "5.250");
        assert_eq!(fmt_num(123.456), "123.5");
    }
}
