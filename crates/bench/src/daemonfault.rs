//! Network fault injection for the WMSP daemon.
//!
//! A fault is a *transformation of the byte stream a client would have
//! sent*: re-chunking at hostile boundaries, truncating mid-frame,
//! flipping a byte, or stalling half-open. [`plan`] turns wire bytes
//! plus a [`Fault`] into an explicit [`WirePlan`] — the exact chunk
//! sequence (and stall) to write — so tests can assert properties of
//! the schedule itself, and [`send`] replays a plan into any writer
//! (usually a [`wms_daemon::Conn`]).
//!
//! The invariant the fault suite proves with these pieces: every fault
//! surfaces as a typed error or NACK on the injecting connection, and
//! **no fault schedule changes a single byte of the daemon's output**.

use std::io::Write;
use std::time::Duration;

/// One transport-level fault to inject into a WMSP byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver the bytes in chunks of at most `n` bytes (`n >= 1`),
    /// exercising reassembly at arbitrary frame-boundary splits.
    SplitEvery(usize),
    /// Send only the first `n` bytes, then nothing (the peer closing
    /// mid-frame is the usual follow-up).
    TruncateAfter(usize),
    /// XOR one byte with `mask` before sending. A zero mask is bumped
    /// to `1` so the byte always really changes.
    CorruptByte {
        /// Byte offset into the wire stream (wrapped into range).
        offset: usize,
        /// XOR mask to apply.
        mask: u8,
    },
    /// Send the first `bytes` bytes, go quiet for `hold` (half-open
    /// stall), then send the rest.
    StallAfter {
        /// Bytes delivered before the stall.
        bytes: usize,
        /// How long the connection stays silent.
        hold: Duration,
    },
}

/// An explicit delivery schedule: what [`send`] will write, verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlan {
    /// Byte chunks, written in order with one `write_all` + flush each.
    pub chunks: Vec<Vec<u8>>,
    /// Sleep this long before writing chunk index `.0`.
    pub stall: Option<(usize, Duration)>,
}

/// Compiles `fault` against `wire` into the chunk schedule to send.
pub fn plan(wire: &[u8], fault: &Fault) -> WirePlan {
    match *fault {
        Fault::SplitEvery(n) => {
            let n = n.max(1);
            WirePlan {
                chunks: wire.chunks(n).map(<[u8]>::to_vec).collect(),
                stall: None,
            }
        }
        Fault::TruncateAfter(n) => WirePlan {
            chunks: vec![wire[..n.min(wire.len())].to_vec()],
            stall: None,
        },
        Fault::CorruptByte { offset, mask } => {
            let mut bytes = wire.to_vec();
            if !bytes.is_empty() {
                let at = offset % bytes.len();
                bytes[at] ^= if mask == 0 { 1 } else { mask };
            }
            WirePlan {
                chunks: vec![bytes],
                stall: None,
            }
        }
        Fault::StallAfter { bytes, hold } => {
            let cut = bytes.min(wire.len());
            WirePlan {
                chunks: vec![wire[..cut].to_vec(), wire[cut..].to_vec()],
                stall: Some((1, hold)),
            }
        }
    }
}

/// Replays a [`WirePlan`] into `w`, flushing after every chunk so each
/// lands on the socket as its own delivery (sleeping at the stall
/// point, if any).
pub fn send(w: &mut impl Write, plan: &WirePlan) -> std::io::Result<()> {
    for (i, chunk) in plan.chunks.iter().enumerate() {
        if let Some((at, hold)) = plan.stall {
            if at == i {
                std::thread::sleep(hold);
            }
        }
        w.write_all(chunk)?;
        w.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIRE: &[u8] = b"WMSP-example-frame-bytes";

    #[test]
    fn split_preserves_every_byte_in_order() {
        for n in [1usize, 3, 7, 1000] {
            let p = plan(WIRE, &Fault::SplitEvery(n));
            assert!(p
                .chunks
                .iter()
                .all(|c| !c.is_empty() && c.len() <= n.max(1)));
            let joined: Vec<u8> = p.chunks.concat();
            assert_eq!(joined, WIRE, "split every {n} lost or reordered bytes");
        }
        // A degenerate 0 is treated as 1, not a panic.
        assert_eq!(plan(WIRE, &Fault::SplitEvery(0)).chunks.len(), WIRE.len());
    }

    #[test]
    fn truncate_is_an_exact_prefix() {
        let p = plan(WIRE, &Fault::TruncateAfter(5));
        assert_eq!(p.chunks, vec![WIRE[..5].to_vec()]);
        // Truncating past the end sends everything.
        let p = plan(WIRE, &Fault::TruncateAfter(10_000));
        assert_eq!(p.chunks, vec![WIRE.to_vec()]);
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let p = plan(
            WIRE,
            &Fault::CorruptByte {
                offset: 6,
                mask: 0x20,
            },
        );
        let sent = &p.chunks[0];
        assert_eq!(sent.len(), WIRE.len());
        let diffs: Vec<usize> = (0..sent.len()).filter(|&i| sent[i] != WIRE[i]).collect();
        assert_eq!(diffs, vec![6]);
        // mask 0 still changes the byte; offsets wrap instead of panicking.
        let p = plan(
            WIRE,
            &Fault::CorruptByte {
                offset: WIRE.len() + 2,
                mask: 0,
            },
        );
        assert_ne!(p.chunks[0][2], WIRE[2]);
    }

    #[test]
    fn stall_splits_at_the_requested_byte() {
        let hold = Duration::from_millis(123);
        let p = plan(WIRE, &Fault::StallAfter { bytes: 4, hold });
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.chunks[0], WIRE[..4].to_vec());
        assert_eq!(p.chunks[1], WIRE[4..].to_vec());
        assert_eq!(p.stall, Some((1, hold)));
    }

    #[test]
    fn send_writes_the_plan_verbatim() {
        let p = plan(WIRE, &Fault::SplitEvery(5));
        let mut sink = Vec::new();
        send(&mut sink, &p).unwrap();
        assert_eq!(sink, WIRE);
    }
}
