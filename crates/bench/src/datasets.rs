//! Reference datasets for the §6 experiments, pre-normalized into the
//! paper's canonical (−0.5, +0.5) interval.

use wms_sensors::{IrtfConfig, SmoothGaussianSource, TemperatureConfig};
use wms_stream::{normalize_stream, Normalizer, Sample, StreamSource};

/// Seed of the workspace's canonical IRTF-like dataset.
pub const IRTF_SEED: u64 = 200_309;

/// The normalized IRTF-like reference dataset (the stand-in for the
/// paper's 21,630-reading NASA dataset; see DESIGN.md).
pub fn irtf_normalized() -> (Vec<Sample>, Normalizer) {
    let raw = wms_sensors::generate_irtf(&IrtfConfig::default(), IRTF_SEED);
    normalize_stream(&raw).expect("reference data is non-degenerate")
}

/// A normalized prefix of the IRTF dataset — the paper's "roughly 5000
/// data values" quantitative setting.
pub fn irtf_normalized_prefix(n: usize) -> (Vec<Sample>, Normalizer) {
    let raw = wms_sensors::generate_irtf(&IrtfConfig::default(), IRTF_SEED);
    let prefix = &raw[..n.min(raw.len())];
    normalize_stream(prefix).expect("reference data is non-degenerate")
}

/// The paper's synthetic setting: normalized gaussian stream, mean 0,
/// std 0.5, smooth enough for fat extremes (ξ ≈ 100 at the synthetic
/// experiment parameters).
pub fn gaussian_normalized(n: usize, seed: u64) -> (Vec<Sample>, Normalizer) {
    let raw = SmoothGaussianSource::generate(0.0, 0.5, 25, seed, n);
    normalize_stream(&raw).expect("gaussian stream is non-degenerate")
}

/// Normalized synthetic temperature stream (ξ ≈ 100 configuration).
pub fn temperature_normalized(n: usize, seed: u64) -> (Vec<Sample>, Normalizer) {
    let mut src = wms_sensors::OscillatingTemperature::new(TemperatureConfig::xi_100(), seed);
    let raw = src.take_samples(n);
    normalize_stream(&raw).expect("temperature stream is non-degenerate")
}

/// The stream used by the label-survival studies (Figures 6 and 8): a
/// smooth quasi-periodic temperature carrier with slow baseline drift and
/// gentle micro-noise, whose major extremes form well-separated clusters —
/// the regime in which the paper's labeling scheme operates as designed.
pub fn label_study_stream(n: usize, seed: u64) -> (Vec<Sample>, Normalizer) {
    let cfg = TemperatureConfig {
        base: 15.0,
        amplitude: 6.0,
        period: 200.0,
        period_jitter: 0.05,
        noise_std: 0.05,
        noise_ar: 0.5,
        drift_std: 0.05,
    };
    let mut src = wms_sensors::OscillatingTemperature::new(cfg, seed);
    let raw = src.take_samples(n);
    normalize_stream(&raw).expect("label-study stream is non-degenerate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irtf_is_normalized_and_full_length() {
        let (d, _) = irtf_normalized();
        assert_eq!(d.len(), wms_sensors::IRTF_READINGS);
        assert!(d.iter().all(|s| s.value > -0.5 && s.value < 0.5));
    }

    #[test]
    fn prefix_has_requested_length() {
        let (d, _) = irtf_normalized_prefix(5000);
        assert_eq!(d.len(), 5000);
    }

    #[test]
    fn gaussian_and_temperature_normalized() {
        for (d, _) in [
            gaussian_normalized(3000, 1),
            temperature_normalized(3000, 1),
        ] {
            assert_eq!(d.len(), 3000);
            assert!(d.iter().all(|s| s.value > -0.5 && s.value < 0.5));
        }
    }

    #[test]
    fn datasets_deterministic() {
        let (a, _) = irtf_normalized_prefix(1000);
        let (b, _) = irtf_normalized_prefix(1000);
        assert_eq!(a, b);
    }
}
