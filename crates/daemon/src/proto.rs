//! The `WMSP` wire protocol: length-framed, CRC-checksummed batches.
//!
//! Every frame on the socket has the same envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "WMSP"
//! 4       1     protocol version (currently 1)
//! 5       1     frame type
//! 6       4     payload length, u32 LE (<= MAX_PAYLOAD)
//! 10      len   payload (per-type encoding below)
//! 10+len  4     CRC-32 (IEEE) over bytes [0, 10+len), u32 LE
//! ```
//!
//! The CRC covers the header *and* the payload, so a corrupted type or
//! length byte is detected exactly like a corrupted sample. Payloads use
//! the workspace's little-endian [`ByteWriter`]/[`ByteReader`] vocabulary
//! (u64 length-prefixed byte strings, f64 as raw bits — the same codec
//! checkpoints use, so an event round-trips the wire bit-exactly).
//!
//! Decoding is **sans-IO**: [`FrameDecoder`] consumes arbitrary byte
//! chunks via [`push`](FrameDecoder::push) and yields complete frames,
//! so the same state machine serves blocking socket readers, the
//! fault-injection harness, and the property tests (which deliver frames
//! in adversarial chunkings). Every malformation maps to a typed
//! [`ProtoError`]; the decoder never panics and never silently accepts a
//! damaged frame (CRC-32 detects all single-byte corruptions).

use wms_core::checkpoint::{ByteReader, ByteWriter, CheckpointError};
use wms_crypto::crc32::Crc32;
use wms_stream::{Event, Sample, StreamId};

/// Frame envelope magic.
pub const MAGIC: [u8; 4] = *b"WMSP";
/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Envelope bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 10;
/// Trailing checksum bytes.
pub const CRC_LEN: usize = 4;
/// Hard per-frame payload cap. A length field above this is rejected as
/// [`ProtoError::Oversize`] before any allocation happens — a corrupted
/// or hostile length cannot make the server reserve gigabytes.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame type tags.
pub mod frame_type {
    /// Client handshake.
    pub const HELLO: u8 = 1;
    /// Server handshake reply (carries the durable acked sequence).
    pub const HELLO_OK: u8 = 2;
    /// One batch of interleaved events.
    pub const BATCH: u8 = 3;
    /// Batch accepted and applied.
    pub const ACK: u8 = 4;
    /// Batch (or connection) refused, with a typed reason.
    pub const NACK: u8 = 5;
    /// Graceful drain request.
    pub const SHUTDOWN: u8 = 6;
    /// Drain complete: tails flushed, final state durable.
    pub const SHUTDOWN_OK: u8 = 7;
    /// Telemetry snapshot request.
    pub const STATS: u8 = 8;
    /// Telemetry snapshot reply (Prometheus-style text exposition).
    pub const STATS_OK: u8 = 9;
}

/// Typed NACK reason codes (`Nack.code`). Stable wire identities —
/// append, never renumber.
pub mod nack {
    /// The frame itself was damaged (bad magic/version/CRC/length);
    /// the detail carries the [`ProtoError`](super::ProtoError) code.
    /// The connection is closed after this NACK: a framing error means
    /// the byte stream cannot be trusted to resynchronize.
    pub const BAD_FRAME: u16 = 1;
    /// Hello asked for a protocol revision this server does not speak.
    pub const UNSUPPORTED: u16 = 2;
    /// Shed overload policy: the ingest queue is full. Re-send later;
    /// nothing was applied.
    pub const OVERLOADED: u16 = 3;
    /// The server is draining; no new batches are accepted.
    pub const DRAINING: u16 = 4;
    /// `seq` was already applied (duplicate replay). Safe to treat as
    /// acknowledged.
    pub const STALE: u16 = 5;
    /// `seq` skips ahead of the next expected sequence; the batch was
    /// not applied (applying it would leave a hole in the flow).
    pub const GAP: u16 = 6;
    /// The engine refused the batch; the detail carries the
    /// `EngineError` code and message.
    pub const ENGINE: u16 = 7;
}

/// A decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: requested protocol revision + client name.
    Hello {
        /// Protocol revision the client speaks.
        proto: u16,
        /// Free-form client identity (diagnostics only).
        client: String,
    },
    /// Server handshake reply.
    HelloOk {
        /// Protocol revision the server speaks.
        proto: u16,
        /// Highest batch sequence applied to server state. A client
        /// must (re-)send every batch with a higher sequence.
        acked_seq: u64,
        /// The serving scheme's fingerprint, so a client embedding
        /// under different parameters fails loudly at handshake time.
        fingerprint: u64,
    },
    /// One batch of events, client-ordered by `seq` starting at 1.
    Batch {
        /// Monotonic batch sequence number.
        seq: u64,
        /// The interleaved events.
        events: Vec<Event>,
    },
    /// Batch `seq` applied; `emitted` output rows were produced.
    Ack {
        /// Sequence being acknowledged.
        seq: u64,
        /// Output rows written for this batch.
        emitted: u64,
    },
    /// Typed refusal. `seq` is 0 when the NACK is not about a specific
    /// batch (e.g. a framing error).
    Nack {
        /// Sequence being refused (0 = connection-level).
        seq: u64,
        /// A [`nack`] reason code.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Graceful drain request.
    Shutdown,
    /// Drain complete.
    ShutdownOk {
        /// Streams finalized.
        streams: u64,
        /// Tail rows flushed by the finalization.
        tail_rows: u64,
    },
    /// Telemetry snapshot request (empty payload; answered with
    /// [`Frame::StatsOk`] and never refused, even while draining —
    /// operators need visibility most during a drain).
    Stats,
    /// Telemetry snapshot reply.
    StatsOk {
        /// Prometheus-style text exposition of every registered metric.
        text: String,
    },
}

/// A typed wire-protocol malformation. Never a panic, never silence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes are not `WMSP`.
    BadMagic {
        /// Bytes actually found.
        found: [u8; 4],
    },
    /// Version byte newer than this build.
    UnsupportedVersion {
        /// Version found on the wire.
        found: u8,
        /// Newest version this build decodes.
        supported: u8,
    },
    /// Unknown frame type tag (CRC-valid, so genuinely foreign).
    UnknownType(u8),
    /// Length field exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// Length claimed by the frame.
        len: u32,
        /// The cap.
        max: u32,
    },
    /// Stored CRC does not match the received bytes.
    CrcMismatch {
        /// CRC computed over the received bytes.
        expected: u32,
        /// CRC stored in the frame.
        found: u32,
    },
    /// CRC-valid envelope, undecodable payload.
    Malformed(String),
    /// The peer closed mid-frame: bytes were buffered but no complete
    /// frame ever arrived.
    Truncated {
        /// Bytes stranded in the decoder.
        buffered: usize,
    },
}

impl ProtoError {
    /// Stable small-integer identity (NACK details, exit-code mapping).
    /// Append, never renumber.
    pub fn code(&self) -> u16 {
        match self {
            ProtoError::BadMagic { .. } => 1,
            ProtoError::UnsupportedVersion { .. } => 2,
            ProtoError::UnknownType(_) => 3,
            ProtoError::Oversize { .. } => 4,
            ProtoError::CrcMismatch { .. } => 5,
            ProtoError::Malformed(_) => 6,
            ProtoError::Truncated { .. } => 7,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected \"WMSP\")")
            }
            ProtoError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {supported})"
                )
            }
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            ProtoError::CrcMismatch { expected, found } => write!(
                f,
                "frame CRC mismatch: stored {found:#010x}, bytes hash to {expected:#010x}"
            ),
            ProtoError::Malformed(msg) => write!(f, "malformed frame payload: {msg}"),
            ProtoError::Truncated { buffered } => {
                write!(f, "connection closed mid-frame ({buffered} bytes stranded)")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CheckpointError> for ProtoError {
    fn from(e: CheckpointError) -> Self {
        ProtoError::Malformed(e.to_string())
    }
}

fn envelope(ty: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(ty);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&out);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out
}

/// Encodes a batch frame straight from a borrowed event slice (the
/// client's journal keeps ownership; nothing is cloned).
pub fn batch_frame(seq: u64, events: &[Event]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(seq);
    w.put_u64(events.len() as u64);
    for e in events {
        w.put_u64(e.stream.0);
        w.put_u64(e.sample.index);
        w.put_f64(e.sample.value);
    }
    envelope(frame_type::BATCH, &w.into_bytes())
}

/// Decodes a batch payload into a caller-supplied (recycled) buffer,
/// returning the sequence number. The server's readers use this so event
/// vectors cycle through the connection pool instead of being
/// re-allocated per batch.
///
/// Provenance spans are not carried on the wire: samples are
/// reconstructed as pristine (`span == unit(index)`), which is exactly
/// what the CSV event reader produces for a fresh flow.
pub fn decode_batch_into(payload: &[u8], events: &mut Vec<Event>) -> Result<u64, ProtoError> {
    events.clear();
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let n = r.get_len(24)?;
    events.reserve(n);
    for _ in 0..n {
        let stream = StreamId(r.get_u64()?);
        let index = r.get_u64()?;
        let value = r.get_f64()?;
        events.push(Event::new(stream, Sample::new(index, value)));
    }
    r.finish()?;
    Ok(seq)
}

impl Frame {
    /// Encodes the frame into its complete wire envelope.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Hello { proto, client } => {
                let mut w = ByteWriter::new();
                w.put_u16(*proto);
                w.put_bytes(client.as_bytes());
                envelope(frame_type::HELLO, &w.into_bytes())
            }
            Frame::HelloOk {
                proto,
                acked_seq,
                fingerprint,
            } => {
                let mut w = ByteWriter::new();
                w.put_u16(*proto);
                w.put_u64(*acked_seq);
                w.put_u64(*fingerprint);
                envelope(frame_type::HELLO_OK, &w.into_bytes())
            }
            Frame::Batch { seq, events } => batch_frame(*seq, events),
            Frame::Ack { seq, emitted } => {
                let mut w = ByteWriter::new();
                w.put_u64(*seq);
                w.put_u64(*emitted);
                envelope(frame_type::ACK, &w.into_bytes())
            }
            Frame::Nack { seq, code, detail } => {
                let mut w = ByteWriter::new();
                w.put_u64(*seq);
                w.put_u16(*code);
                w.put_bytes(detail.as_bytes());
                envelope(frame_type::NACK, &w.into_bytes())
            }
            Frame::Shutdown => envelope(frame_type::SHUTDOWN, &[]),
            Frame::ShutdownOk { streams, tail_rows } => {
                let mut w = ByteWriter::new();
                w.put_u64(*streams);
                w.put_u64(*tail_rows);
                envelope(frame_type::SHUTDOWN_OK, &w.into_bytes())
            }
            Frame::Stats => envelope(frame_type::STATS, &[]),
            Frame::StatsOk { text } => {
                let mut w = ByteWriter::new();
                w.put_bytes(text.as_bytes());
                envelope(frame_type::STATS_OK, &w.into_bytes())
            }
        }
    }

    /// Decodes a CRC-validated payload of the given type.
    pub fn decode(ty: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
        match ty {
            frame_type::HELLO => {
                let mut r = ByteReader::new(payload);
                let proto = r.get_u16()?;
                let client = String::from_utf8_lossy(r.get_bytes()?).into_owned();
                r.finish()?;
                Ok(Frame::Hello { proto, client })
            }
            frame_type::HELLO_OK => {
                let mut r = ByteReader::new(payload);
                let frame = Frame::HelloOk {
                    proto: r.get_u16()?,
                    acked_seq: r.get_u64()?,
                    fingerprint: r.get_u64()?,
                };
                r.finish()?;
                Ok(frame)
            }
            frame_type::BATCH => {
                let mut events = Vec::new();
                let seq = decode_batch_into(payload, &mut events)?;
                Ok(Frame::Batch { seq, events })
            }
            frame_type::ACK => {
                let mut r = ByteReader::new(payload);
                let frame = Frame::Ack {
                    seq: r.get_u64()?,
                    emitted: r.get_u64()?,
                };
                r.finish()?;
                Ok(frame)
            }
            frame_type::NACK => {
                let mut r = ByteReader::new(payload);
                let seq = r.get_u64()?;
                let code = r.get_u16()?;
                let detail = String::from_utf8_lossy(r.get_bytes()?).into_owned();
                r.finish()?;
                Ok(Frame::Nack { seq, code, detail })
            }
            frame_type::SHUTDOWN => {
                if !payload.is_empty() {
                    return Err(CheckpointError::TrailingBytes.into());
                }
                Ok(Frame::Shutdown)
            }
            frame_type::SHUTDOWN_OK => {
                let mut r = ByteReader::new(payload);
                let frame = Frame::ShutdownOk {
                    streams: r.get_u64()?,
                    tail_rows: r.get_u64()?,
                };
                r.finish()?;
                Ok(frame)
            }
            frame_type::STATS => {
                if !payload.is_empty() {
                    return Err(CheckpointError::TrailingBytes.into());
                }
                Ok(Frame::Stats)
            }
            frame_type::STATS_OK => {
                let mut r = ByteReader::new(payload);
                let text = String::from_utf8_lossy(r.get_bytes()?).into_owned();
                r.finish()?;
                Ok(Frame::StatsOk { text })
            }
            other => Err(ProtoError::UnknownType(other)),
        }
    }
}

/// A validated envelope whose payload has not been interpreted yet.
/// Servers use this to route batch payloads into pooled buffers without
/// the generic [`Frame`] allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Frame type tag.
    pub ty: u8,
    /// CRC-validated payload bytes.
    pub payload: Vec<u8>,
}

/// Incremental sans-IO frame decoder.
///
/// Feed it bytes in whatever chunking the transport produces; it yields
/// complete frames once they (and their checksums) have fully arrived.
/// After a fatal error ([`BadMagic`](ProtoError::BadMagic) etc.) the
/// stream cannot be resynchronized — callers must close the connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Fresh decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Call at end-of-stream: leftover bytes mean the peer died (or was
    /// cut) mid-frame.
    pub fn finish_eof(&self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Truncated {
                buffered: self.buf.len(),
            })
        }
    }

    /// Tries to extract the next validated envelope. `Ok(None)` means
    /// more bytes are needed.
    pub fn try_raw(&mut self) -> Result<Option<RawFrame>, ProtoError> {
        if self.buf.len() < HEADER_LEN {
            // Fail fast on garbage even before a full header arrives.
            let have = self.buf.len().min(4);
            if self.buf[..have] != MAGIC[..have] {
                let mut found = [0u8; 4];
                found[..have].copy_from_slice(&self.buf[..have]);
                return Err(ProtoError::BadMagic { found });
            }
            return Ok(None);
        }
        if self.buf[..4] != MAGIC {
            return Err(ProtoError::BadMagic {
                found: [self.buf[0], self.buf[1], self.buf[2], self.buf[3]],
            });
        }
        if self.buf[4] != VERSION {
            return Err(ProtoError::UnsupportedVersion {
                found: self.buf[4],
                supported: VERSION,
            });
        }
        let len = u32::from_le_bytes(self.buf[6..10].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(ProtoError::Oversize {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let total = HEADER_LEN + len as usize + CRC_LEN;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = &self.buf[..HEADER_LEN + len as usize];
        let mut crc = Crc32::new();
        crc.update(body);
        let expected = crc.finish();
        let found = u32::from_le_bytes(
            self.buf[HEADER_LEN + len as usize..total]
                .try_into()
                .unwrap(),
        );
        if expected != found {
            return Err(ProtoError::CrcMismatch { expected, found });
        }
        let ty = self.buf[5];
        let payload = self.buf[HEADER_LEN..HEADER_LEN + len as usize].to_vec();
        self.buf.drain(..total);
        Ok(Some(RawFrame { ty, payload }))
    }

    /// Tries to extract and fully decode the next frame.
    pub fn try_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        match self.try_raw()? {
            None => Ok(None),
            Some(raw) => Frame::decode(raw.ty, &raw.payload).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        (0..5)
            .map(|i| Event::new(StreamId(3 + i % 2), Sample::new(i, 0.25 * i as f64 - 0.4)))
            .collect()
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                proto: 1,
                client: "test".into(),
            },
            Frame::HelloOk {
                proto: 1,
                acked_seq: 42,
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            },
            Frame::Batch {
                seq: 7,
                events: sample_events(),
            },
            Frame::Ack {
                seq: 7,
                emitted: 12,
            },
            Frame::Nack {
                seq: 8,
                code: nack::OVERLOADED,
                detail: "queue full".into(),
            },
            Frame::Shutdown,
            Frame::ShutdownOk {
                streams: 3,
                tail_rows: 99,
            },
            Frame::Stats,
            Frame::StatsOk {
                text: "# TYPE wms_x counter\nwms_x 1\n".into(),
            },
        ]
    }

    #[test]
    fn frames_roundtrip_whole() {
        for f in all_frames() {
            let mut d = FrameDecoder::new();
            d.push(&f.encode());
            assert_eq!(d.try_frame().unwrap(), Some(f.clone()));
            assert_eq!(d.try_frame().unwrap(), None);
            d.finish_eof().unwrap();
        }
    }

    #[test]
    fn frames_roundtrip_byte_at_a_time() {
        let f = Frame::Batch {
            seq: 3,
            events: sample_events(),
        };
        let bytes = f.encode();
        let mut d = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            d.push(&[*b]);
            let got = d.try_frame().unwrap();
            if i + 1 < bytes.len() {
                assert_eq!(got, None, "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some(f.clone()));
            }
        }
    }

    #[test]
    fn coalesced_frames_all_decode() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut d = FrameDecoder::new();
        d.push(&wire);
        for f in &frames {
            assert_eq!(d.try_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(d.try_frame().unwrap(), None);
        d.finish_eof().unwrap();
    }

    #[test]
    fn bad_magic_rejected_immediately() {
        let mut d = FrameDecoder::new();
        d.push(b"HTTP");
        match d.try_raw() {
            Err(ProtoError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        let mut frame = Frame::Shutdown.encode();
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new();
        d.push(&frame);
        match d.try_raw() {
            Err(ProtoError::Oversize { .. }) => {}
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn crc_corruption_detected() {
        let f = Frame::Ack { seq: 1, emitted: 2 };
        let mut bytes = f.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        match d.try_frame() {
            Err(_) => {}
            Ok(got) => panic!("corrupted frame decoded as {got:?}"),
        }
    }

    #[test]
    fn truncation_reported_at_eof() {
        let bytes = Frame::Shutdown.encode();
        let mut d = FrameDecoder::new();
        d.push(&bytes[..bytes.len() - 1]);
        assert_eq!(d.try_frame().unwrap(), None);
        match d.finish_eof() {
            Err(ProtoError::Truncated { buffered }) => assert!(buffered > 0),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn error_codes_are_distinct() {
        let errs = [
            ProtoError::BadMagic { found: [0; 4] },
            ProtoError::UnsupportedVersion {
                found: 9,
                supported: VERSION,
            },
            ProtoError::UnknownType(200),
            ProtoError::Oversize {
                len: u32::MAX,
                max: MAX_PAYLOAD,
            },
            ProtoError::CrcMismatch {
                expected: 1,
                found: 2,
            },
            ProtoError::Malformed("x".into()),
            ProtoError::Truncated { buffered: 3 },
        ];
        let mut codes: Vec<u16> = errs.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
    }
}
