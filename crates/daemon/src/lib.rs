//! # wms-daemon
//!
//! `wmsd`: a long-lived, crash-safe network daemon around the sharded
//! watermarking [`Engine`](wms_engine::Engine). Clients stream event
//! batches over TCP or unix-domain sockets using **WMSP**, a
//! length-framed, CRC-checksummed little protocol ([`proto`]); the
//! daemon watermarks them through one engine and appends the marked
//! rows to an output CSV.
//!
//! The crate's contract, in one paragraph: every fault has a *name*.
//! Malformed bytes become typed [`ProtoError`]s and `BAD_FRAME` NACKs,
//! never panics. A full ingest queue blocks or sheds with an
//! `OVERLOADED` NACK ([`OverloadPolicy`]), never silently drops.
//! A drain (SHUTDOWN frame or SIGTERM) quiesces the queue, writes a
//! final durable checkpoint, flushes per-stream tails and answers
//! `SHUTDOWN_OK` before exiting. And a `kill -9` mid-stream is
//! recoverable: rebinding with `resume` restores the engine from the
//! last checkpoint, truncates the output to the checkpointed offset and
//! tells clients (via `HELLO_OK`) which batches to replay — the final
//! output is byte-identical to a run that never died, so the daemon
//! changes no detection result, ever.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod server;

pub use client::{BatchReply, Client, ClientError, Greeting};
pub use metrics::DaemonMetrics;
pub use net::{connect, Conn, Endpoint};
pub use proto::{Frame, FrameDecoder, ProtoError};
pub use server::{DaemonConfig, Outcome, OverloadPolicy, RunReport, SchemeIdentity, Server};

use wms_engine::EngineError;

/// A daemon-level failure, partitioned by blame: each variant maps to
/// one documented `wms` process exit code.
#[derive(Debug)]
pub enum DaemonError {
    /// Invalid configuration (exit code 2).
    Config(String),
    /// Socket or file I/O failure (exit code 3).
    Io(String),
    /// Wire-protocol failure that kills the run, not just a connection
    /// (exit code 4).
    Proto(ProtoError),
    /// Persisted state (checkpoint / output file) is corrupt or belongs
    /// to a different run (exit code 5).
    Corrupt(String),
    /// The engine failed (worker lost, spill I/O, poisoned session)
    /// (exit code 6; checkpoint-shaped engine errors map to 5).
    Engine(EngineError),
}

impl DaemonError {
    pub(crate) fn from_io(e: std::io::Error) -> DaemonError {
        DaemonError::Io(e.to_string())
    }

    /// The documented process exit code for this failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            DaemonError::Config(_) => 2,
            DaemonError::Io(_) => 3,
            DaemonError::Proto(_) => 4,
            DaemonError::Corrupt(_) => 5,
            // An engine error caused by a bad checkpoint is a persisted
            // -state problem, not an engine fault.
            DaemonError::Engine(EngineError::Checkpoint(_)) => 5,
            DaemonError::Engine(_) => 6,
        }
    }
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Config(m) => write!(f, "{m}"),
            DaemonError::Io(m) => write!(f, "{m}"),
            DaemonError::Proto(e) => write!(f, "{e}"),
            DaemonError::Corrupt(m) => write!(f, "{m}"),
            DaemonError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<ProtoError> for DaemonError {
    fn from(e: ProtoError) -> Self {
        DaemonError::Proto(e)
    }
}

impl From<EngineError> for DaemonError {
    fn from(e: EngineError) -> Self {
        DaemonError::Engine(e)
    }
}
