//! A small synchronous WMSP client: what `wms send` and the test/bench
//! harnesses use to talk to a running `wmsd`.
//!
//! The client is deliberately dumb: one connection, strictly ordered
//! request/reply (unless the caller pipelines by hand with
//! [`Client::write_raw`] / [`Client::read_reply`]). Replay-after-crash
//! policy lives with the caller, which owns the batch journal; the
//! handshake's `acked_seq` says where to restart.

use crate::net::{self, Conn, Endpoint};
use crate::proto::{self, batch_frame, nack, Frame, FrameDecoder, ProtoError};
use std::io::{Read, Write};
use std::time::{Duration, Instant};
use wms_engine::Event;

/// What the server said to our `HELLO`.
#[derive(Debug, Clone, Copy)]
pub struct Greeting {
    /// Protocol revision the server speaks.
    pub proto: u16,
    /// Highest batch sequence already applied server-side. Send
    /// `acked_seq + 1` next; anything lower is refused as stale.
    pub acked_seq: u64,
    /// The server scheme's fingerprint.
    pub fingerprint: u64,
}

/// The server's verdict on one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchReply {
    /// Applied; `emitted` output rows were written.
    Acked {
        /// Output rows produced by this batch.
        emitted: u64,
    },
    /// Already applied in a previous life — skip ahead.
    Stale,
    /// Shed by the overload policy — back off and retry.
    Shed,
    /// Refused because an earlier batch is missing (a shed opened a
    /// hole in the sequence) — resend in order.
    Gap,
    /// The daemon is draining — stop sending.
    Draining,
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server's bytes did not parse as WMSP.
    Proto(ProtoError),
    /// A typed refusal that [`BatchReply`] does not absorb (bad frame,
    /// version mismatch, engine fault, sequence gap).
    Nack {
        /// The [`nack`] reason code.
        code: u16,
        /// Server-provided detail.
        detail: String,
    },
    /// The connection closed where a reply was expected.
    Closed,
    /// The server answered with a frame that makes no sense here.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Nack { code, detail } => {
                write!(f, "server refused (code {code}): {detail}")
            }
            ClientError::Closed => write!(f, "connection closed by the server"),
            ClientError::Unexpected(d) => write!(f, "unexpected server frame: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One WMSP connection, post-handshake.
pub struct Client {
    conn: Conn,
    dec: FrameDecoder,
}

impl Client {
    /// Connects and completes the `HELLO` handshake.
    pub fn connect(ep: &Endpoint, name: &str) -> Result<(Client, Greeting), ClientError> {
        let conn = net::connect(ep)?;
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        conn.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut c = Client {
            conn,
            dec: FrameDecoder::new(),
        };
        let hello = Frame::Hello {
            proto: proto::VERSION as u16,
            client: name.to_string(),
        };
        c.conn.write_all(&hello.encode())?;
        match c.read_frame()? {
            Frame::HelloOk {
                proto,
                acked_seq,
                fingerprint,
            } => Ok((
                c,
                Greeting {
                    proto,
                    acked_seq,
                    fingerprint,
                },
            )),
            Frame::Nack { code, detail, .. } => Err(ClientError::Nack { code, detail }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// [`Client::connect`], retried until `deadline` elapses — for
    /// harnesses that race a daemon's startup.
    pub fn connect_retry(
        ep: &Endpoint,
        name: &str,
        deadline: Duration,
    ) -> Result<(Client, Greeting), ClientError> {
        let start = Instant::now();
        loop {
            match Client::connect(ep, name) {
                Ok(ok) => return Ok(ok),
                Err(e) => {
                    if start.elapsed() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// Sends one batch and waits for the server's verdict.
    pub fn send_batch(&mut self, seq: u64, events: &[Event]) -> Result<BatchReply, ClientError> {
        self.conn.write_all(&batch_frame(seq, events))?;
        self.read_reply().map(|(_, reply)| reply)
    }

    /// Writes pre-encoded bytes without waiting — the pipelining /
    /// fault-injection building block.
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.conn.write_all(bytes)?;
        Ok(())
    }

    /// Raw mutable access to the underlying connection, for harnesses
    /// that deliver hostile byte schedules (splits, stalls, truncations)
    /// below the frame layer.
    pub fn conn_mut(&mut self) -> &mut Conn {
        &mut self.conn
    }

    /// Reads one batch verdict (the counterpart of [`Client::write_raw`]
    /// when pipelining). Returns the sequence number the verdict is
    /// about — with pipelining, shed NACKs (sent by the reader thread)
    /// can overtake ACKs (sent by the engine thread), so replies are
    /// not necessarily in send order.
    pub fn read_reply(&mut self) -> Result<(u64, BatchReply), ClientError> {
        match self.read_frame()? {
            Frame::Ack { seq, emitted } => Ok((seq, BatchReply::Acked { emitted })),
            Frame::Nack { seq, code, detail } => match code {
                nack::STALE => Ok((seq, BatchReply::Stale)),
                nack::OVERLOADED => Ok((seq, BatchReply::Shed)),
                nack::GAP => Ok((seq, BatchReply::Gap)),
                nack::DRAINING => Ok((seq, BatchReply::Draining)),
                _ => Err(ClientError::Nack { code, detail }),
            },
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Requests the server's metrics snapshot (`STATS`) and returns the
    /// Prometheus-style text exposition. Answered even while the daemon
    /// drains; in-flight batch verdicts that overtake the reply are
    /// skipped, same as [`Client::drain`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.conn.write_all(&Frame::Stats.encode())?;
        loop {
            match self.read_frame()? {
                Frame::StatsOk { text } => return Ok(text),
                Frame::Ack { .. } => continue,
                Frame::Nack { code, detail, .. } => match code {
                    nack::STALE | nack::OVERLOADED | nack::GAP | nack::DRAINING => continue,
                    _ => return Err(ClientError::Nack { code, detail }),
                },
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Requests a graceful drain and waits for `SHUTDOWN_OK`, skipping
    /// any still-in-flight batch verdicts. Returns `(streams,
    /// tail_rows)` from the finalization.
    pub fn drain(&mut self) -> Result<(u64, u64), ClientError> {
        self.conn.write_all(&Frame::Shutdown.encode())?;
        loop {
            match self.read_frame()? {
                Frame::ShutdownOk { streams, tail_rows } => return Ok((streams, tail_rows)),
                Frame::Ack { .. } => continue,
                Frame::Nack { code, detail, .. } => match code {
                    // Pipelined batches refused mid-drain are fine.
                    nack::STALE | nack::OVERLOADED | nack::GAP | nack::DRAINING => continue,
                    _ => return Err(ClientError::Nack { code, detail }),
                },
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
    }

    /// Reads until one full frame decodes.
    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(f) = self.dec.try_frame()? {
                return Ok(f);
            }
            match self.conn.read(&mut buf) {
                Ok(0) => {
                    self.dec.finish_eof()?;
                    return Err(ClientError::Closed);
                }
                Ok(n) => self.dec.push(&buf[..n]),
                Err(e) => return Err(ClientError::Io(e.to_string())),
            }
        }
    }
}
