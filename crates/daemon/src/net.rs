//! Transport plumbing: endpoint addressing and a stream abstraction over
//! TCP and (on unix) unix-domain sockets.
//!
//! `wmsd` treats the two transports identically — framing, timeouts,
//! backpressure and drain semantics live above this layer. Unix sockets
//! are what the CI smoke jobs and the fault harness use (no port
//! allocation races); TCP is for actual network service.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a daemon listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT`, `unix:PATH`, or a bare `HOST:PORT`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp address".into());
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".into());
            }
            #[cfg(unix)]
            return Ok(Endpoint::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(format!(
                "unix socket endpoint {path:?} is not available on this platform"
            ));
        }
        if s.contains(':') {
            return Ok(Endpoint::Tcp(s.to_string()));
        }
        Err(format!(
            "bad endpoint {s:?}: expected tcp:HOST:PORT or unix:PATH"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A bound listening socket on either transport.
#[derive(Debug)]
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Binds the endpoint. A pre-existing unix socket file is removed
    /// first (a daemon that died under `kill -9` leaves one behind; a
    /// *live* daemon on the same path would lose its socket — run one
    /// daemon per path).
    pub(crate) fn bind(ep: &Endpoint) -> io::Result<Listener> {
        match ep {
            Endpoint::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp),
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(Listener::Unix)
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(v),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(v),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                // Replies are small frames; Nagle would batch them
                // behind delayed ACKs and add milliseconds per batch.
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Conn::Unix(s))
            }
        }
    }

    /// The concrete bound address (TCP may have been bound to port 0).
    pub(crate) fn local_desc(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:?".into(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => match a.as_pathname() {
                    Some(p) => format!("unix:{}", p.display()),
                    None => "unix:?".into(),
                },
                Err(_) => "unix:?".into(),
            },
        }
    }
}

/// One established connection on either transport.
#[derive(Debug)]
pub enum Conn {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
}

/// Connects to a daemon endpoint (one blocking attempt).
pub fn connect(ep: &Endpoint) -> io::Result<Conn> {
    match ep {
        Endpoint::Tcp(addr) => {
            let s = TcpStream::connect(addr.as_str())?;
            s.set_nodelay(true)?; // frames are latency-sensitive
            Ok(Conn::Tcp(s))
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
    }
}

impl Conn {
    /// Sets the blocking-read timeout (`None` = wait forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets the blocking-write timeout (`None` = wait forever).
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Clones the handle (shared underlying socket) so a reader and a
    /// writer thread can own the two directions independently.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Shuts down both directions, waking any thread blocked on the
    /// socket.
    pub fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Whether an I/O error is a read/write timeout expiring (the two kinds
/// differ across platforms).
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7000").unwrap(),
            Endpoint::Tcp("127.0.0.1:7000".into())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7000").unwrap(),
            Endpoint::Tcp("127.0.0.1:7000".into())
        );
        #[cfg(unix)]
        assert_eq!(
            Endpoint::parse("unix:/tmp/wmsd.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/wmsd.sock"))
        );
        assert!(Endpoint::parse("nonsense").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn endpoint_display_roundtrips() {
        for s in ["tcp:127.0.0.1:9", "unix:/tmp/x.sock"] {
            #[cfg(not(unix))]
            if s.starts_with("unix:") {
                continue;
            }
            let ep = Endpoint::parse(s).unwrap();
            assert_eq!(ep.to_string(), s);
        }
    }
}
