//! The `wmsd` server: a long-lived watermarking daemon wrapping one
//! [`Engine`] behind the WMSP protocol.
//!
//! # Thread anatomy
//!
//! ```text
//! accept loop ──spawns──▶ per-conn reader ──Job::Batch──▶ engine thread
//!                         per-conn writer ◀──reply mpsc───┘
//! ```
//!
//! One engine thread owns the [`Engine`] and the output file; it is the
//! sequencing authority (batches apply in WMSP sequence order), so
//! detection output is byte-for-byte what a single-process `wms engine
//! --normalize none` run produces for the same batch schedule. It is no
//! longer where watermarking *runs*, though: each batch is routed
//! straight into the engine's per-shard ingest rings via
//! [`Engine::submit`] and its ACK is deferred until the epoch's outputs
//! are collected, so while the shard workers chew on batch N the engine
//! thread is already routing batch N+1 — back-to-back batches pipeline
//! instead of paying a barrier each. Per-connection reader threads
//! decode frames into recycled event buffers and feed a **bounded** job
//! queue; the queue is the backpressure boundary — and so is the ring:
//! at most `ring_capacity` epochs ride in flight before the engine
//! thread collects the oldest. [`OverloadPolicy::Block`] makes a full
//! queue push back through TCP flow control, [`OverloadPolicy::Shed`]
//! answers with a typed `OVERLOADED` NACK instead. Either way no batch
//! is ever silently dropped, and no ACK leaves before its outputs are
//! written.
//!
//! # Crash safety
//!
//! The engine thread periodically persists a durable checkpoint (same
//! temp-file + fsync + rename discipline as `wms engine`) carrying the
//! global acked sequence number and the durable output byte offset.
//! After `kill -9`, rebinding with `resume = true` truncates the output
//! back to the checkpointed offset, restores every session mid-stream
//! and re-advertises the acked sequence in `HELLO_OK`; clients replay
//! everything newer and the final output is byte-identical to a run
//! that never died.

use crate::metrics::DaemonMetrics;
use crate::net::{self, Conn, Endpoint, Listener};
use crate::proto::{self, decode_batch_into, frame_type, nack, Frame, FrameDecoder, ProtoError};
use crate::DaemonError;
use std::collections::{HashSet, VecDeque};
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use wms_core::checkpoint::{ByteReader, ByteWriter};
use wms_core::EmbedConfig;
use wms_engine::{Checkpoint, Engine, EngineConfig, EngineError, Event, StreamSpec};
use wms_telemetry::Registry;

/// Engine-thread wakeup tick: the granularity at which SIGTERM drain
/// requests and interval checkpoints are noticed.
const TICK: Duration = Duration::from_millis(50);
/// How long the drain loop waits for stragglers (readers blocked in a
/// queue `send` when the drain began) before declaring the queue dry.
const DRAIN_GRACE: Duration = Duration::from_millis(100);
/// Accept-loop poll interval while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(10);

/// What a full ingest queue does to the next incoming batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// The reader blocks until the queue has room; backpressure
    /// propagates to the client through transport flow control.
    Block,
    /// The batch is refused with an `OVERLOADED` NACK and counted in
    /// [`RunReport::shed`]; the client decides whether to retry.
    Shed,
}

impl OverloadPolicy {
    /// Parses `block` / `shed`.
    pub fn parse(s: &str) -> Result<OverloadPolicy, String> {
        match s {
            "block" => Ok(OverloadPolicy::Block),
            "shed" => Ok(OverloadPolicy::Shed),
            other => Err(format!(
                "unknown overload policy {other:?}; expected block|shed"
            )),
        }
    }
}

/// The scheme-level identity of a daemon run: everything the output
/// depends on that the engine's own session fingerprint does not cover.
/// Stored in the checkpoint metadata and compared on resume — resuming
/// under a different encoder, watermark or parameter set would embed a
/// mixed, corrupt mark and is refused loudly.
#[derive(Debug, Clone)]
pub struct SchemeIdentity {
    /// Encoder name (`multihash` / `initial` / `quadres`).
    pub encoder: String,
    /// The watermark bits being embedded.
    pub wm_bits: Vec<bool>,
    /// Full `WmParams` identity (Debug form).
    pub params: String,
    /// `Scheme::memo_fingerprint()` — advertised to clients in
    /// `HELLO_OK` so a misconfigured sender fails the handshake, not
    /// the detection.
    pub fingerprint: u64,
}

/// Configuration for one daemon run.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Watermarked output CSV (`stream,value` rows, raw values).
    pub output: PathBuf,
    /// Checkpoint file; `None` disables persistence entirely.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint after every N acked batches (0 = no count trigger).
    pub checkpoint_every: u64,
    /// Checkpoint when dirty and this much time has passed since the
    /// last one (`None` = no timer trigger).
    pub checkpoint_interval: Option<Duration>,
    /// Resume from `checkpoint` instead of starting fresh.
    pub resume: bool,
    /// Bound of the ingest job queue (batches in flight).
    pub queue_depth: usize,
    /// Full-queue behavior.
    pub overload: OverloadPolicy,
    /// Socket read timeout (also the idle-reap poll granularity).
    pub read_timeout: Duration,
    /// Socket write timeout; a peer that stalls longer while we flush
    /// replies is disconnected.
    pub write_timeout: Duration,
    /// A connection silent for this long is reaped.
    pub idle_timeout: Duration,
    /// Engine topology and memory budget.
    pub engine: EngineConfig,
    /// Shared embedding configuration (scheme + encoder + watermark).
    pub embed: Arc<EmbedConfig>,
    /// Run identity persisted with every checkpoint.
    pub identity: SchemeIdentity,
    /// Test/bench hook: stop ingesting after N acked batches, skipping
    /// the final checkpoint and tail flush (an in-process stand-in for
    /// `kill -9` at a deterministic point). 0 = run until drained.
    pub hard_stop_after: u64,
    /// Test/bench hook: sleep this long before each ingest, to make
    /// queue overflow (and thus shedding) deterministic.
    pub ingest_delay: Duration,
    /// Optional plaintext metrics endpoint (`--metrics`): serves the
    /// Prometheus-style text exposition to any connection, wrapped in a
    /// minimal HTTP response so `curl` and scrape-style pollers work.
    pub metrics_endpoint: Option<Endpoint>,
}

impl DaemonConfig {
    /// A config with conservative defaults for everything but the
    /// required pieces.
    pub fn new(
        endpoint: Endpoint,
        output: PathBuf,
        engine: EngineConfig,
        embed: Arc<EmbedConfig>,
        identity: SchemeIdentity,
    ) -> DaemonConfig {
        DaemonConfig {
            endpoint,
            output,
            checkpoint: None,
            checkpoint_every: 0,
            checkpoint_interval: None,
            resume: false,
            queue_depth: 64,
            overload: OverloadPolicy::Block,
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            engine,
            embed,
            identity,
            hard_stop_after: 0,
            ingest_delay: Duration::ZERO,
            metrics_endpoint: None,
        }
    }
}

/// How a daemon run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Graceful drain: queue quiesced, final checkpoint written, tails
    /// flushed, `SHUTDOWN_OK` sent.
    Drained,
    /// The `hard_stop_after` hook fired (crash simulation): no final
    /// checkpoint, no tails.
    HardStopped,
}

/// Counters and outcomes from one daemon run.
#[derive(Debug)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Batches acked.
    pub batches: u64,
    /// Events ingested.
    pub events: u64,
    /// Batches refused with `OVERLOADED` (shed policy only).
    pub shed: u64,
    /// Batches refused as stale (already-acked sequence numbers —
    /// normal during client replay after a crash).
    pub stale: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Highest acked batch sequence number.
    pub acked_seq: u64,
    /// Per-stream outcomes from `Engine::finish` (empty unless
    /// [`Outcome::Drained`]).
    pub outcomes: Vec<wms_engine::StreamOutcome>,
}

/// Checkpoint metadata for a daemon run: the replay cursor plus the
/// daemon-level analogue of the CLI's `ResumeMeta` identity fields.
struct DaemonMeta {
    acked_seq: u64,
    out_bytes: u64,
    encoder: String,
    wm_bits: Vec<bool>,
    params: String,
}

impl DaemonMeta {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.acked_seq);
        w.put_u64(self.out_bytes);
        w.put_bytes(self.encoder.as_bytes());
        w.put_bytes(&self.wm_bits.iter().map(|&b| b as u8).collect::<Vec<u8>>());
        w.put_bytes(self.params.as_bytes());
        w.into_bytes()
    }

    fn from_checkpoint(ck: &Checkpoint) -> Result<DaemonMeta, DaemonError> {
        let bad =
            |e: wms_core::CheckpointError| DaemonError::Corrupt(format!("daemon metadata: {e}"));
        let mut r = ByteReader::new(&ck.meta);
        let acked_seq = r.get_u64().map_err(bad)?;
        let out_bytes = r.get_u64().map_err(bad)?;
        let encoder = String::from_utf8_lossy(r.get_bytes().map_err(bad)?).into_owned();
        let wm_bits = r
            .get_bytes()
            .map_err(bad)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        let params = String::from_utf8_lossy(r.get_bytes().map_err(bad)?).into_owned();
        r.finish().map_err(bad)?;
        Ok(DaemonMeta {
            acked_seq,
            out_bytes,
            encoder,
            wm_bits,
            params,
        })
    }
}

/// A pool of recycled event buffers: readers `take`, the engine thread
/// `put`s after ingesting, so steady-state batch traffic allocates
/// nothing per frame.
struct Pool {
    free: Mutex<Vec<Vec<Event>>>,
    cap: usize,
}

impl Pool {
    fn new(cap: usize) -> Pool {
        Pool {
            free: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn take(&self) -> Vec<Event> {
        self.free
            .lock()
            .expect("pool lock")
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, mut v: Vec<Event>) {
        v.clear();
        let mut free = self.free.lock().expect("pool lock");
        if free.len() < self.cap {
            free.push(v);
        }
    }
}

/// A unit of work for the engine thread.
enum Job {
    /// One decoded batch; `reply` routes the ACK/NACK back through the
    /// originating connection's writer thread.
    Batch {
        seq: u64,
        events: Vec<Event>,
        reply: mpsc::Sender<Vec<u8>>,
    },
    /// A drain request (SHUTDOWN frame). `None` for signal-initiated
    /// drains with nobody to answer.
    Drain {
        reply: Option<mpsc::Sender<Vec<u8>>>,
    },
}

/// Everything the per-connection threads share.
#[derive(Clone)]
struct Shared {
    jobs: mpsc::SyncSender<Job>,
    draining: Arc<AtomicBool>,
    acked_pub: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    pool: Arc<Pool>,
    overload: OverloadPolicy,
    fingerprint: u64,
    read_timeout: Duration,
    write_timeout: Duration,
    idle_timeout: Duration,
    metrics: Arc<DaemonMetrics>,
    /// Daemon + engine metrics; rendered for `STATS` frames and the
    /// `--metrics` scrape listener.
    registry: Arc<Registry>,
}

/// SIGTERM plumbing. The handler only flips an atomic; the engine
/// thread notices on its next tick and starts a graceful drain. On
/// non-unix targets `install` is a no-op and `requested` is always
/// false (use the SHUTDOWN frame instead).
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERM: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    mod unix_impl {
        #![allow(unsafe_code)] // raw signal(2): the one async-signal API std doesn't wrap

        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }

        extern "C" fn on_term(_sig: i32) {
            super::TERM.store(true, std::sync::atomic::Ordering::SeqCst);
        }

        pub(super) fn install() {
            const SIGTERM: i32 = 15;
            const SIGINT: i32 = 2;
            unsafe {
                signal(SIGTERM, on_term);
                signal(SIGINT, on_term);
            }
        }
    }

    pub(super) fn install() {
        TERM.store(false, Ordering::SeqCst);
        #[cfg(unix)]
        unix_impl::install();
    }

    pub(super) fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// One submitted-but-not-yet-acked batch riding the engine's ingest
/// rings: everything needed to ACK it once its epoch is collected.
struct Inflight {
    seq: u64,
    n_events: u64,
    reply: mpsc::Sender<Vec<u8>>,
}

/// The engine thread's state: the only owner of the [`Engine`] and the
/// output file.
struct EngineLoop {
    engine: Option<Engine>,
    writer: BufWriter<std::fs::File>,
    registered: HashSet<u64>,
    embed: Arc<EmbedConfig>,
    identity: SchemeIdentity,
    ck_path: Option<PathBuf>,
    ck_every: u64,
    ck_interval: Option<Duration>,
    last_ck: Instant,
    batches_since_ck: u64,
    dirty: bool,
    acked: u64,
    /// Highest sequence routed into the rings (≥ `acked`; the gap is
    /// the in-flight window).
    submitted: u64,
    inflight: VecDeque<Inflight>,
    hard_stop_after: u64,
    ingest_delay: Duration,
    draining: Arc<AtomicBool>,
    acked_pub: Arc<AtomicU64>,
    shed: Arc<AtomicU64>,
    pool: Arc<Pool>,
    batches: u64,
    events: u64,
    stale: u64,
    metrics: Arc<DaemonMetrics>,
}

impl EngineLoop {
    fn run(mut self, rx: mpsc::Receiver<Job>) -> Result<RunReport, DaemonError> {
        let mut drain_replies: Vec<mpsc::Sender<Vec<u8>>> = Vec::new();
        let outcome = loop {
            if self.hard_stop_after > 0 && self.batches >= self.hard_stop_after {
                break Outcome::HardStopped;
            }
            // While epochs are in flight, prefer routing more work over
            // waiting — but the moment the queue runs dry, collect and
            // ACK the backlog instead of letting replies sit.
            if !self.inflight.is_empty() {
                match rx.try_recv() {
                    Ok(Job::Batch { seq, events, reply }) => {
                        self.handle_batch(seq, events, &reply)?;
                    }
                    Ok(Job::Drain { reply }) => {
                        self.draining.store(true, Ordering::SeqCst);
                        if let Some(r) = reply {
                            drain_replies.push(r);
                        }
                        self.drain_rest(&rx, &mut drain_replies)?;
                        break Outcome::Drained;
                    }
                    Err(mpsc::TryRecvError::Empty) => self.collect_one()?,
                    Err(mpsc::TryRecvError::Disconnected) => break Outcome::Drained,
                }
                continue;
            }
            match rx.recv_timeout(TICK) {
                Ok(Job::Batch { seq, events, reply }) => {
                    self.handle_batch(seq, events, &reply)?;
                }
                Ok(Job::Drain { reply }) => {
                    self.draining.store(true, Ordering::SeqCst);
                    if let Some(r) = reply {
                        drain_replies.push(r);
                    }
                    self.drain_rest(&rx, &mut drain_replies)?;
                    break Outcome::Drained;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.draining.load(Ordering::SeqCst) {
                        self.drain_rest(&rx, &mut drain_replies)?;
                        break Outcome::Drained;
                    }
                    self.maybe_interval_checkpoint()?;
                }
                // Every sender gone (server tearing down): drain.
                Err(mpsc::RecvTimeoutError::Disconnected) => break Outcome::Drained,
            }
        };
        match outcome {
            Outcome::Drained => {
                self.collect_all()?;
                self.finalize(drain_replies)
            }
            Outcome::HardStopped => {
                // Deliberately no final checkpoint, no finish(), no
                // collection of in-flight epochs: the output file holds
                // whatever a crash would have left.
                self.writer.flush().map_err(DaemonError::from_io)?;
                Ok(self.into_report(Outcome::HardStopped, Vec::new()))
            }
        }
    }

    /// After a drain begins: absorb in-flight batches (readers already
    /// blocked in a queue send) until the queue stays quiet for
    /// [`DRAIN_GRACE`]. New batches are refused upstream once the
    /// draining flag is up, so this terminates.
    fn drain_rest(
        &mut self,
        rx: &mpsc::Receiver<Job>,
        drain_replies: &mut Vec<mpsc::Sender<Vec<u8>>>,
    ) -> Result<(), DaemonError> {
        loop {
            match rx.recv_timeout(DRAIN_GRACE) {
                Ok(Job::Batch { seq, events, reply }) => self.handle_batch(seq, events, &reply)?,
                Ok(Job::Drain { reply }) => {
                    if let Some(r) = reply {
                        drain_replies.push(r);
                    }
                }
                Err(_) => return Ok(()),
            }
        }
    }

    /// Registers any unseen streams, then routes the batch into the
    /// per-shard ingest rings without waiting for it. Engine-level
    /// errors come back as `Err` for the caller to turn into a NACK.
    fn submit(&mut self, events: &[Event]) -> Result<u64, EngineError> {
        let engine = self.engine.as_mut().expect("engine live");
        for e in events {
            if self.registered.insert(e.stream.0) {
                engine.register(e.stream, StreamSpec::Embed(Arc::clone(&self.embed)))?;
            }
        }
        engine.submit(events)
    }

    fn handle_batch(
        &mut self,
        seq: u64,
        events: Vec<Event>,
        reply: &mpsc::Sender<Vec<u8>>,
    ) -> Result<(), DaemonError> {
        self.metrics.queue_depth.sub(1);
        if seq <= self.submitted {
            // Replay of an already-applied (or already-riding) batch —
            // a client journal after a crash: acknowledge-by-NACK so
            // the sender moves on.
            self.stale += 1;
            self.metrics.nack(nack::STALE);
            let nack = Frame::Nack {
                seq,
                code: nack::STALE,
                detail: format!("batch {seq} already applied (acked {})", self.acked),
            };
            let _ = reply.send(nack.encode());
            self.pool.put(events);
            return Ok(());
        }
        if seq != self.submitted + 1 {
            self.metrics.nack(nack::GAP);
            let nack = Frame::Nack {
                seq,
                code: nack::GAP,
                detail: format!("expected batch {}, got {seq}", self.submitted + 1),
            };
            let _ = reply.send(nack.encode());
            self.pool.put(events);
            return Ok(());
        }
        if !self.ingest_delay.is_zero() {
            std::thread::sleep(self.ingest_delay);
        }
        let n_events = events.len() as u64;
        if let Err(e) = self.submit(&events) {
            self.metrics.nack(nack::ENGINE);
            let nack = Frame::Nack {
                seq,
                code: nack::ENGINE,
                detail: format!("engine error {}: {e}", e.code()),
            };
            let _ = reply.send(nack.encode());
            self.pool.put(events);
            // A poisoned engine cannot make progress; exit loudly
            // rather than NACK every batch forever.
            if self
                .engine
                .as_ref()
                .is_some_and(|en| en.poisoned().is_some())
            {
                return Err(DaemonError::Engine(e));
            }
            return Ok(());
        }
        // The engine copied the events into its staging buffers, so the
        // frame buffer recycles immediately; the ACK waits for the
        // epoch's outputs.
        self.submitted = seq;
        self.inflight.push_back(Inflight {
            seq,
            n_events,
            reply: reply.clone(),
        });
        self.metrics.inflight_acks.set(self.inflight.len() as u64);
        self.pool.put(events);
        // Bound the in-flight window to the ring depth: beyond it the
        // shards are saturated and submitting more only buffers.
        let cap = self
            .engine
            .as_ref()
            .map(|en| en.ring_capacity())
            .unwrap_or(1)
            .max(1);
        while self.inflight.len() >= cap {
            self.collect_one()?;
        }
        Ok(())
    }

    /// Collects the oldest in-flight epoch, writes its rows and sends
    /// its deferred ACK. Worker loss NACKs every riding batch and takes
    /// the daemon down typed, not hung.
    fn collect_one(&mut self) -> Result<(), DaemonError> {
        let Some(front) = self.inflight.pop_front() else {
            return Ok(());
        };
        self.metrics.inflight_acks.set(self.inflight.len() as u64);
        let engine = self.engine.as_mut().expect("engine live");
        let outs = match engine.collect_next() {
            Ok(Some((_, outs))) => outs,
            Ok(None) => unreachable!("one inflight entry per outstanding epoch"),
            Err(e) => {
                self.metrics.nack(nack::ENGINE);
                let nack = Frame::Nack {
                    seq: front.seq,
                    code: nack::ENGINE,
                    detail: format!("engine error {}: {e}", e.code()),
                };
                let _ = front.reply.send(nack.encode());
                for rider in self.inflight.drain(..) {
                    self.metrics.nack(nack::ENGINE);
                    let nack = Frame::Nack {
                        seq: rider.seq,
                        code: nack::ENGINE,
                        detail: format!("engine error {}: {e}", e.code()),
                    };
                    let _ = rider.reply.send(nack.encode());
                }
                self.metrics.inflight_acks.set(0);
                return Err(DaemonError::Engine(e));
            }
        };
        let mut emitted = 0u64;
        for o in outs {
            for s in o.samples {
                writeln!(self.writer, "{},{}", o.stream, s.value).map_err(DaemonError::from_io)?;
                emitted += 1;
            }
        }
        self.acked = front.seq;
        self.acked_pub.store(front.seq, Ordering::SeqCst);
        self.dirty = true;
        self.batches += 1;
        self.batches_since_ck += 1;
        self.events += front.n_events;
        let _ = front.reply.send(
            Frame::Ack {
                seq: front.seq,
                emitted,
            }
            .encode(),
        );
        if self.ck_every > 0 && self.batches_since_ck >= self.ck_every {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Collects (and ACKs) every in-flight epoch — the write barrier in
    /// front of anything that snapshots or finishes the engine.
    fn collect_all(&mut self) -> Result<(), DaemonError> {
        while !self.inflight.is_empty() {
            self.collect_one()?;
        }
        Ok(())
    }

    fn maybe_interval_checkpoint(&mut self) -> Result<(), DaemonError> {
        if let Some(interval) = self.ck_interval {
            if self.dirty && self.last_ck.elapsed() >= interval {
                self.write_checkpoint()?;
            }
        }
        Ok(())
    }

    /// Durable checkpoint: fsync the output so the recorded byte offset
    /// never points past data a crash could lose, then temp-file +
    /// fsync + rename the snapshot — a crash at any moment leaves the
    /// previous checkpoint or the new one, never a torn file.
    fn write_checkpoint(&mut self) -> Result<(), DaemonError> {
        let Some(path) = self.ck_path.clone() else {
            return Ok(());
        };
        let started = Instant::now();
        // Collect (and ACK) everything riding the rings first: the
        // snapshot will contain those epochs' effects, so the recorded
        // `acked_seq` must cover them or a resume would replay them
        // into sessions that already absorbed them.
        self.collect_all()?;
        self.writer.flush().map_err(DaemonError::from_io)?;
        self.writer
            .get_ref()
            .sync_all()
            .map_err(DaemonError::from_io)?;
        let mut file: &std::fs::File = self.writer.get_ref();
        let out_bytes = file.stream_position().map_err(DaemonError::from_io)?;
        let engine = self.engine.as_mut().expect("engine live");
        let mut ck = engine.checkpoint().map_err(DaemonError::Engine)?;
        ck.meta = DaemonMeta {
            acked_seq: self.acked,
            out_bytes,
            encoder: self.identity.encoder.clone(),
            wm_bits: self.identity.wm_bits.clone(),
            params: self.identity.params.clone(),
        }
        .to_bytes();
        let tmp = path.with_extension("ck-tmp");
        (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&ck.to_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })()
        .map_err(DaemonError::from_io)?;
        self.dirty = false;
        self.batches_since_ck = 0;
        self.last_ck = Instant::now();
        self.metrics
            .checkpoint_write_seconds
            .observe_duration(started.elapsed());
        Ok(())
    }

    /// Graceful drain tail: final checkpoint, `Engine::finish`, tail
    /// rows, fsync, `SHUTDOWN_OK` to every drain requester.
    fn finalize(
        mut self,
        drain_replies: Vec<mpsc::Sender<Vec<u8>>>,
    ) -> Result<RunReport, DaemonError> {
        let started = Instant::now();
        if self.dirty {
            self.write_checkpoint()?;
        }
        let engine = self.engine.take().expect("engine live");
        let outcomes = engine.finish().map_err(DaemonError::Engine)?;
        let mut tail_rows = 0u64;
        for oc in &outcomes {
            for s in &oc.tail {
                writeln!(self.writer, "{},{}", oc.stream, s.value).map_err(DaemonError::from_io)?;
                tail_rows += 1;
            }
        }
        self.writer.flush().map_err(DaemonError::from_io)?;
        self.writer
            .get_ref()
            .sync_all()
            .map_err(DaemonError::from_io)?;
        let ok = Frame::ShutdownOk {
            streams: outcomes.len() as u64,
            tail_rows,
        }
        .encode();
        for r in &drain_replies {
            let _ = r.send(ok.clone());
        }
        self.metrics
            .drain_seconds
            .observe_duration(started.elapsed());
        Ok(self.into_report(Outcome::Drained, outcomes))
    }

    fn into_report(self, outcome: Outcome, outcomes: Vec<wms_engine::StreamOutcome>) -> RunReport {
        RunReport {
            outcome,
            batches: self.batches,
            events: self.events,
            shed: self.shed.load(Ordering::SeqCst),
            stale: self.stale,
            connections: 0, // filled in by the accept loop
            acked_seq: self.acked,
            outcomes,
        }
    }
}

/// A bound, ready-to-run daemon.
pub struct Server {
    cfg: DaemonConfig,
    listener: Listener,
    state: Option<EngineLoopSeed>,
    desc: String,
    metrics_listener: Option<Listener>,
    metrics_desc: Option<String>,
}

/// The pieces `bind` prepares for the engine thread.
struct EngineLoopSeed {
    engine: Engine,
    writer: BufWriter<std::fs::File>,
    registered: HashSet<u64>,
    acked: u64,
}

impl Server {
    /// Binds the endpoint and opens (or, with `resume`, re-adopts) the
    /// output file and checkpoint. All validation that can fail before
    /// serving happens here.
    pub fn bind(cfg: DaemonConfig) -> Result<Server, DaemonError> {
        if cfg.queue_depth == 0 {
            return Err(DaemonError::Config("queue depth must be >= 1".into()));
        }
        if (cfg.checkpoint_every > 0 || cfg.checkpoint_interval.is_some())
            && cfg.checkpoint.is_none()
        {
            return Err(DaemonError::Config(
                "checkpoint cadence configured without a checkpoint file".into(),
            ));
        }
        let seed = if cfg.resume {
            let ck_path = cfg.checkpoint.as_ref().ok_or_else(|| {
                DaemonError::Config("resume requested without a checkpoint file".into())
            })?;
            let bytes = std::fs::read(ck_path)
                .map_err(|e| DaemonError::Io(format!("{}: {e}", ck_path.display())))?;
            let ck = Checkpoint::from_bytes(&bytes)
                .map_err(|e| DaemonError::Corrupt(format!("{}: {e}", ck_path.display())))?;
            let meta = DaemonMeta::from_checkpoint(&ck)?;
            if meta.encoder != cfg.identity.encoder {
                return Err(DaemonError::Corrupt(format!(
                    "{}: checkpoint was taken with encoder {}, this run uses {} \
                     (resuming would embed a mixed, corrupt mark)",
                    ck_path.display(),
                    meta.encoder,
                    cfg.identity.encoder
                )));
            }
            if meta.wm_bits != cfg.identity.wm_bits {
                return Err(DaemonError::Corrupt(format!(
                    "{}: checkpoint embeds a different watermark than this run",
                    ck_path.display()
                )));
            }
            if meta.params != cfg.identity.params {
                return Err(DaemonError::Corrupt(format!(
                    "{}: checkpoint was taken under different scheme parameters \
                     ({}), this run uses {}",
                    ck_path.display(),
                    meta.params,
                    cfg.identity.params
                )));
            }
            let embed = Arc::clone(&cfg.embed);
            let engine = Engine::restore(cfg.engine.clone(), &ck, move |_| {
                Some(StreamSpec::Embed(Arc::clone(&embed)))
            })
            .map_err(|e| match &e {
                EngineError::Checkpoint(_) => {
                    DaemonError::Corrupt(format!("{}: {e}", ck_path.display()))
                }
                _ => DaemonError::Engine(e),
            })?;
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&cfg.output)
                .map_err(|e| DaemonError::Io(format!("{}: {e}", cfg.output.display())))?;
            let have = file.metadata().map_err(DaemonError::from_io)?.len();
            if have < meta.out_bytes {
                return Err(DaemonError::Corrupt(format!(
                    "{}: output file is shorter than the checkpoint expects \
                     ({have} < {} bytes) — not the file this checkpoint was taken against",
                    cfg.output.display(),
                    meta.out_bytes
                )));
            }
            // Drop rows written after the checkpoint; clients replay them.
            file.set_len(meta.out_bytes).map_err(DaemonError::from_io)?;
            let mut file = file;
            file.seek(SeekFrom::End(0)).map_err(DaemonError::from_io)?;
            EngineLoopSeed {
                engine,
                writer: BufWriter::new(file),
                registered: ck.streams().map(|s| s.0).collect(),
                acked: meta.acked_seq,
            }
        } else {
            let engine = Engine::new(cfg.engine.clone()).map_err(DaemonError::Engine)?;
            let mut writer = BufWriter::new(
                std::fs::File::create(&cfg.output)
                    .map_err(|e| DaemonError::Io(format!("{}: {e}", cfg.output.display())))?,
            );
            writeln!(writer, "# stream,value").map_err(DaemonError::from_io)?;
            EngineLoopSeed {
                engine,
                writer,
                registered: HashSet::new(),
                acked: 0,
            }
        };
        let listener = Listener::bind(&cfg.endpoint)
            .map_err(|e| DaemonError::Io(format!("bind {}: {e}", cfg.endpoint)))?;
        let desc = listener.local_desc();
        let metrics_listener = match &cfg.metrics_endpoint {
            Some(ep) => {
                Some(Listener::bind(ep).map_err(|e| DaemonError::Io(format!("bind {ep}: {e}")))?)
            }
            None => None,
        };
        let metrics_desc = metrics_listener.as_ref().map(|l| l.local_desc());
        Ok(Server {
            cfg,
            listener,
            state: Some(seed),
            desc,
            metrics_listener,
            metrics_desc,
        })
    }

    /// The concrete bound endpoint (useful when TCP port 0 was asked
    /// for, and for log lines).
    pub fn local_desc(&self) -> &str {
        &self.desc
    }

    /// The concrete bound metrics endpoint, when `--metrics` is on.
    pub fn metrics_local_desc(&self) -> Option<&str> {
        self.metrics_desc.as_deref()
    }

    /// The sequence number of the last batch the engine has applied
    /// (from the checkpoint when resuming, 0 when fresh).
    pub fn acked_seq(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.acked)
    }

    /// Serves until drained (SHUTDOWN frame or SIGTERM/SIGINT) or
    /// hard-stopped. Consumes the server; the report says how it ended.
    pub fn run(mut self) -> Result<RunReport, DaemonError> {
        sig::install();
        let seed = self.state.take().expect("bind populated state");
        let draining = Arc::new(AtomicBool::new(false));
        let finished = Arc::new(AtomicBool::new(false));
        let acked_pub = Arc::new(AtomicU64::new(seed.acked));
        let shed = Arc::new(AtomicU64::new(0));
        let pool = Arc::new(Pool::new(self.cfg.queue_depth * 2));
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<Job>(self.cfg.queue_depth);

        let metrics = Arc::new(DaemonMetrics::new());
        let registry = Arc::new(Registry::new());
        metrics.register_into(&registry);
        seed.engine.metrics().register_into(&registry);

        let eng = EngineLoop {
            engine: Some(seed.engine),
            writer: seed.writer,
            registered: seed.registered,
            embed: Arc::clone(&self.cfg.embed),
            identity: self.cfg.identity.clone(),
            ck_path: self.cfg.checkpoint.clone(),
            ck_every: self.cfg.checkpoint_every,
            ck_interval: self.cfg.checkpoint_interval,
            last_ck: Instant::now(),
            batches_since_ck: 0,
            dirty: false,
            acked: seed.acked,
            submitted: seed.acked,
            inflight: VecDeque::new(),
            hard_stop_after: self.cfg.hard_stop_after,
            ingest_delay: self.cfg.ingest_delay,
            draining: Arc::clone(&draining),
            acked_pub: Arc::clone(&acked_pub),
            shed: Arc::clone(&shed),
            pool: Arc::clone(&pool),
            batches: 0,
            events: 0,
            stale: 0,
            metrics: Arc::clone(&metrics),
        };
        let fin = Arc::clone(&finished);
        let engine_thread = std::thread::Builder::new()
            .name("wmsd-engine".into())
            .spawn(move || {
                let r = eng.run(jobs_rx);
                fin.store(true, Ordering::SeqCst);
                r
            })
            .map_err(DaemonError::from_io)?;

        let shared = Shared {
            jobs: jobs_tx.clone(),
            draining: Arc::clone(&draining),
            acked_pub: Arc::clone(&acked_pub),
            shed: Arc::clone(&shed),
            pool: Arc::clone(&pool),
            overload: self.cfg.overload,
            fingerprint: self.cfg.identity.fingerprint,
            read_timeout: self.cfg.read_timeout,
            write_timeout: self.cfg.write_timeout,
            idle_timeout: self.cfg.idle_timeout,
            metrics: Arc::clone(&metrics),
            registry: Arc::clone(&registry),
        };

        let metrics_thread = self.metrics_listener.take().map(|l| {
            let reg = Arc::clone(&registry);
            let fin = Arc::clone(&finished);
            std::thread::Builder::new()
                .name("wmsd-metrics".into())
                .spawn(move || metrics_loop(l, reg, fin))
                .expect("spawn metrics listener")
        });

        self.listener
            .set_nonblocking(true)
            .map_err(DaemonError::from_io)?;
        let mut conns: Vec<Conn> = Vec::new();
        let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut connections = 0u64;
        while !finished.load(Ordering::SeqCst) {
            if sig::requested() {
                draining.store(true, Ordering::SeqCst);
            }
            match self.listener.accept() {
                Ok(conn) => {
                    connections += 1;
                    metrics.connections.inc();
                    match spawn_conn(conn, shared.clone()) {
                        Ok((reader, writer, handle)) => {
                            threads.push(reader);
                            threads.push(writer);
                            conns.push(handle);
                        }
                        Err(_) => continue, // peer vanished during setup
                    }
                }
                Err(e) if net::is_timeout(&e) => std::thread::sleep(ACCEPT_TICK),
                Err(_) => std::thread::sleep(ACCEPT_TICK), // transient accept failure
            }
        }

        // Engine is done (drained, hard-stopped, or failed): wake every
        // connection thread and collect them.
        for c in &conns {
            let _ = c.shutdown();
        }
        drop(jobs_tx);
        let report = engine_thread
            .join()
            .unwrap_or_else(|_| Err(DaemonError::Config("engine thread panicked".into())));
        for t in threads {
            let _ = t.join();
        }
        if let Some(t) = metrics_thread {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.cfg.endpoint {
            let _ = std::fs::remove_file(path);
        }
        #[cfg(unix)]
        if let Some(Endpoint::Unix(path)) = &self.cfg.metrics_endpoint {
            let _ = std::fs::remove_file(path);
        }
        report.map(|mut r| {
            r.connections = connections;
            r
        })
    }
}

/// Spawns the reader and writer threads for one connection. Returns a
/// third handle to the socket for forced shutdown at teardown.
fn spawn_conn(
    conn: Conn,
    shared: Shared,
) -> std::io::Result<(
    std::thread::JoinHandle<()>,
    std::thread::JoinHandle<()>,
    Conn,
)> {
    let write_half = conn.try_clone()?;
    let control = conn.try_clone()?;
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let wt = shared.write_timeout;
    let writer = std::thread::Builder::new()
        .name("wmsd-writer".into())
        .spawn(move || writer_loop(write_half, reply_rx, wt))?;
    let reader = std::thread::Builder::new()
        .name("wmsd-reader".into())
        .spawn(move || reader_loop(conn, shared, reply_tx))?;
    Ok((reader, writer, control))
}

/// Flushes reply frames to the peer. A write error (including a write
/// timeout — the stalled half-open case) abandons the connection; the
/// socket shutdown wakes the reader too.
fn writer_loop(mut conn: Conn, rx: mpsc::Receiver<Vec<u8>>, write_timeout: Duration) {
    let _ = conn.set_write_timeout(Some(write_timeout));
    while let Ok(bytes) = rx.recv() {
        if conn.write_all(&bytes).and_then(|_| conn.flush()).is_err() {
            break;
        }
    }
    // All reply senders gone (reader exited, engine flushed every
    // pending ACK) or the peer is dead: close both directions.
    let _ = conn.shutdown();
}

/// Decodes frames off one connection and routes them. Exits on EOF,
/// socket error, idle timeout, or the first protocol error (after
/// sending a typed `BAD_FRAME` NACK).
fn reader_loop(mut conn: Conn, sh: Shared, reply_tx: mpsc::Sender<Vec<u8>>) {
    use std::io::Read;
    let _ = conn.set_read_timeout(Some(sh.read_timeout));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    loop {
        match conn.read(&mut buf) {
            Ok(0) => return, // clean EOF
            Ok(n) => {
                last_activity = Instant::now();
                dec.push(&buf[..n]);
                loop {
                    match dec.try_raw() {
                        Ok(None) => break,
                        Ok(Some(raw)) => {
                            if !handle_raw(raw, &sh, &reply_tx) {
                                return;
                            }
                        }
                        Err(e) => {
                            send_proto_nack(&reply_tx, &sh.metrics, &e);
                            return;
                        }
                    }
                }
            }
            Err(e) if net::is_timeout(&e) => {
                if last_activity.elapsed() >= sh.idle_timeout {
                    return; // reap the idle / half-open connection
                }
            }
            Err(_) => return,
        }
    }
}

fn send_proto_nack(reply_tx: &mpsc::Sender<Vec<u8>>, metrics: &DaemonMetrics, e: &ProtoError) {
    metrics.nack(nack::BAD_FRAME);
    let nack = Frame::Nack {
        seq: 0,
        code: nack::BAD_FRAME,
        detail: format!("protocol error {}: {e}", e.code()),
    };
    let _ = reply_tx.send(nack.encode());
}

/// Handles one well-framed message. Returns `false` to close the
/// connection.
fn handle_raw(raw: proto::RawFrame, sh: &Shared, reply_tx: &mpsc::Sender<Vec<u8>>) -> bool {
    sh.metrics.frame(raw.ty);
    match raw.ty {
        frame_type::BATCH => {
            let mut events = sh.pool.take();
            let seq = match decode_batch_into(&raw.payload, &mut events) {
                Ok(seq) => seq,
                Err(e) => {
                    sh.pool.put(events);
                    send_proto_nack(reply_tx, &sh.metrics, &e);
                    return false;
                }
            };
            if sh.draining.load(Ordering::SeqCst) {
                sh.pool.put(events);
                sh.metrics.nack(nack::DRAINING);
                let nack = Frame::Nack {
                    seq,
                    code: nack::DRAINING,
                    detail: "daemon is draining; batch not accepted".into(),
                };
                let _ = reply_tx.send(nack.encode());
                return true;
            }
            let job = Job::Batch {
                seq,
                events,
                reply: reply_tx.clone(),
            };
            // The gauge goes up before the send and the engine thread
            // takes it down when the job is dequeued, so it can read
            // one high, never negative.
            sh.metrics.queue_depth.add(1);
            match sh.overload {
                OverloadPolicy::Block => match sh.jobs.try_send(job) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(job)) => {
                        sh.metrics.blocks.inc();
                        if let Err(mpsc::SendError(job)) = sh.jobs.send(job) {
                            sh.metrics.queue_depth.sub(1);
                            refuse_dead_engine(job, sh, reply_tx);
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(job)) => {
                        sh.metrics.queue_depth.sub(1);
                        refuse_dead_engine(job, sh, reply_tx);
                    }
                },
                OverloadPolicy::Shed => match sh.jobs.try_send(job) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(job)) => {
                        sh.metrics.queue_depth.sub(1);
                        if let Job::Batch { seq, events, .. } = job {
                            sh.pool.put(events);
                            sh.shed.fetch_add(1, Ordering::SeqCst);
                            sh.metrics.sheds.inc();
                            sh.metrics.nack(nack::OVERLOADED);
                            let nack = Frame::Nack {
                                seq,
                                code: nack::OVERLOADED,
                                detail: "ingest queue full; batch shed".into(),
                            };
                            let _ = reply_tx.send(nack.encode());
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(job)) => {
                        sh.metrics.queue_depth.sub(1);
                        refuse_dead_engine(job, sh, reply_tx);
                    }
                },
            }
            true
        }
        frame_type::HELLO => match Frame::decode(raw.ty, &raw.payload) {
            Ok(Frame::Hello { proto, .. }) => {
                if proto != proto::VERSION as u16 {
                    sh.metrics.nack(nack::UNSUPPORTED);
                    let nack = Frame::Nack {
                        seq: 0,
                        code: nack::UNSUPPORTED,
                        detail: format!(
                            "protocol version {proto} not supported (server speaks {})",
                            proto::VERSION
                        ),
                    };
                    let _ = reply_tx.send(nack.encode());
                    return true;
                }
                let ok = Frame::HelloOk {
                    proto: proto::VERSION as u16,
                    acked_seq: sh.acked_pub.load(Ordering::SeqCst),
                    fingerprint: sh.fingerprint,
                };
                let _ = reply_tx.send(ok.encode());
                true
            }
            // decode() honors the frame type, so this arm is dead; a
            // NACK keeps the no-panic guarantee if that ever changes.
            Ok(_) => {
                send_proto_nack(
                    reply_tx,
                    &sh.metrics,
                    &ProtoError::Malformed("hello decoded oddly".into()),
                );
                false
            }
            Err(e) => {
                send_proto_nack(reply_tx, &sh.metrics, &e);
                false
            }
        },
        frame_type::SHUTDOWN => {
            sh.draining.store(true, Ordering::SeqCst);
            let job = Job::Drain {
                reply: Some(reply_tx.clone()),
            };
            if sh.jobs.send(job).is_err() {
                // Engine already gone (double shutdown): still answer.
                sh.metrics.nack(nack::DRAINING);
                let nack = Frame::Nack {
                    seq: 0,
                    code: nack::DRAINING,
                    detail: "daemon already drained".into(),
                };
                let _ = reply_tx.send(nack.encode());
            }
            true
        }
        // Answered on the reader thread (no engine round-trip), and
        // never refused — operators need visibility most mid-drain.
        frame_type::STATS => {
            let ok = Frame::StatsOk {
                text: sh.registry.render(),
            };
            let _ = reply_tx.send(ok.encode());
            true
        }
        // Server-to-client frame types arriving at the server are a
        // protocol violation by a confused peer.
        other => {
            sh.metrics.nack(nack::BAD_FRAME);
            let nack = Frame::Nack {
                seq: 0,
                code: nack::BAD_FRAME,
                detail: format!("unexpected frame type {other} from a client"),
            };
            let _ = reply_tx.send(nack.encode());
            false
        }
    }
}

/// The engine stopped while a batch was in flight: refuse it with a
/// typed NACK (never a silent drop) and recycle the buffer.
fn refuse_dead_engine(job: Job, sh: &Shared, reply_tx: &mpsc::Sender<Vec<u8>>) {
    if let Job::Batch { seq, events, .. } = job {
        sh.pool.put(events);
        sh.metrics.nack(nack::DRAINING);
        let nack = Frame::Nack {
            seq,
            code: nack::DRAINING,
            detail: "daemon stopped before the batch was applied".into(),
        };
        let _ = reply_tx.send(nack.encode());
    }
}

/// The `--metrics` scrape listener: accepts one connection at a time,
/// reads (and discards) whatever request line arrives, and answers with
/// the registry's text exposition wrapped in a minimal HTTP/1.0
/// response so `curl` and Prometheus-style pollers both work. Exits
/// when the engine thread finishes.
fn metrics_loop(listener: Listener, registry: Arc<Registry>, finished: Arc<AtomicBool>) {
    use std::io::Read;
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !finished.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(mut conn) => {
                let _ = conn.set_read_timeout(Some(Duration::from_millis(100)));
                let _ = conn.set_write_timeout(Some(Duration::from_secs(2)));
                // Drain the request until the header terminator (or a
                // timeout / EOF): plain `nc` sends nothing, curl sends
                // a GET — either way the reply is the same.
                let mut buf = [0u8; 1024];
                loop {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                                break;
                            }
                        }
                    }
                }
                let body = registry.render();
                let resp = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = conn.write_all(resp.as_bytes());
                let _ = conn.flush();
                let _ = conn.shutdown();
            }
            Err(e) if net::is_timeout(&e) => std::thread::sleep(ACCEPT_TICK),
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}
