//! Daemon telemetry: the counters, gauges and histograms `wmsd`
//! maintains about its own protocol traffic.
//!
//! Same contract as the engine's metrics ([`wms_engine::metrics`]):
//! recording is always on (relaxed atomics, no allocation), exposition
//! is opt-in via a [`Registry`], and the canonical names are documented
//! in `DESIGN.md` §3.18 — the `names_are_documented` test below fails
//! the build when the table and the code disagree.

use crate::proto::{frame_type, nack};
use wms_telemetry::{Counter, Gauge, Histogram, Registry};

/// Canonical daemon metric names (the DESIGN.md §3.18 contract).
pub mod names {
    /// Client connections accepted.
    pub const CONNECTIONS: &str = "wms_daemon_connections_total";
    /// Frames received, labeled by frame type.
    pub const FRAMES: &str = "wms_daemon_frames_total";
    /// NACK frames sent, labeled by code name.
    pub const NACKS: &str = "wms_daemon_nacks_total";
    /// Batches refused under the shed overload policy.
    pub const SHEDS: &str = "wms_daemon_sheds_total";
    /// Batches that waited for queue space under the block policy.
    pub const BLOCKS: &str = "wms_daemon_blocks_total";
    /// Batch jobs in the reader→engine queue right now.
    pub const QUEUE_DEPTH: &str = "wms_daemon_queue_depth";
    /// Applied batches whose ACKs are still buffered.
    pub const INFLIGHT_ACKS: &str = "wms_daemon_inflight_acks";
    /// Wall-clock seconds per graceful drain.
    pub const DRAIN_SECONDS: &str = "wms_daemon_drain_seconds";
    /// Wall-clock seconds per periodic checkpoint write.
    pub const CHECKPOINT_WRITE_SECONDS: &str = "wms_daemon_checkpoint_write_seconds";
}

/// The daemon's metric handles: one instance per [`Server`] run, shared
/// (behind an `Arc`) by the reader threads and the engine thread.
///
/// [`Server`]: crate::Server
#[derive(Debug)]
pub struct DaemonMetrics {
    /// Client connections accepted.
    pub connections: Counter,
    /// `HELLO` frames received.
    pub frames_hello: Counter,
    /// `BATCH` frames received.
    pub frames_batch: Counter,
    /// `SHUTDOWN` frames received.
    pub frames_shutdown: Counter,
    /// `STATS` frames received.
    pub frames_stats: Counter,
    /// Frames of any other (unexpected) type received.
    pub frames_other: Counter,
    /// `BAD_FRAME` NACKs sent.
    pub nack_bad_frame: Counter,
    /// `UNSUPPORTED` NACKs sent.
    pub nack_unsupported: Counter,
    /// `OVERLOADED` NACKs sent.
    pub nack_overloaded: Counter,
    /// `DRAINING` NACKs sent.
    pub nack_draining: Counter,
    /// `STALE` NACKs sent.
    pub nack_stale: Counter,
    /// `GAP` NACKs sent.
    pub nack_gap: Counter,
    /// `ENGINE` NACKs sent.
    pub nack_engine: Counter,
    /// Batches refused under `--overload shed`.
    pub sheds: Counter,
    /// Batches that waited for queue space under `--overload block`.
    pub blocks: Counter,
    /// Batch jobs in the reader→engine queue right now.
    pub queue_depth: Gauge,
    /// Applied batches whose ACKs are still buffered in the inflight
    /// window.
    pub inflight_acks: Gauge,
    /// Wall-clock seconds per graceful drain.
    pub drain_seconds: Histogram,
    /// Wall-clock seconds per periodic checkpoint write.
    pub checkpoint_write_seconds: Histogram,
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        DaemonMetrics::new()
    }
}

impl DaemonMetrics {
    /// Fresh handles; nothing is registered anywhere yet.
    pub fn new() -> DaemonMetrics {
        DaemonMetrics {
            connections: Counter::new(),
            frames_hello: Counter::new(),
            frames_batch: Counter::new(),
            frames_shutdown: Counter::new(),
            frames_stats: Counter::new(),
            frames_other: Counter::new(),
            nack_bad_frame: Counter::new(),
            nack_unsupported: Counter::new(),
            nack_overloaded: Counter::new(),
            nack_draining: Counter::new(),
            nack_stale: Counter::new(),
            nack_gap: Counter::new(),
            nack_engine: Counter::new(),
            sheds: Counter::new(),
            blocks: Counter::new(),
            queue_depth: Gauge::new(),
            inflight_acks: Gauge::new(),
            drain_seconds: Histogram::with_bounds(Histogram::duration_bounds()),
            checkpoint_write_seconds: Histogram::with_bounds(Histogram::duration_bounds()),
        }
    }

    /// Bumps the received-frame counter matching a wire type tag.
    pub fn frame(&self, ty: u8) {
        match ty {
            frame_type::HELLO => self.frames_hello.inc(),
            frame_type::BATCH => self.frames_batch.inc(),
            frame_type::SHUTDOWN => self.frames_shutdown.inc(),
            frame_type::STATS => self.frames_stats.inc(),
            _ => self.frames_other.inc(),
        }
    }

    /// Bumps the sent-NACK counter matching a [`nack`] code. Call at
    /// every point a `Frame::Nack` is encoded; unknown codes count as
    /// `bad_frame` (there is no way to send one today).
    pub fn nack(&self, code: u16) {
        match code {
            nack::UNSUPPORTED => self.nack_unsupported.inc(),
            nack::OVERLOADED => self.nack_overloaded.inc(),
            nack::DRAINING => self.nack_draining.inc(),
            nack::STALE => self.nack_stale.inc(),
            nack::GAP => self.nack_gap.inc(),
            nack::ENGINE => self.nack_engine.inc(),
            _ => self.nack_bad_frame.inc(),
        }
    }

    /// Registers every handle under its canonical name. Call once per
    /// registry.
    pub fn register_into(&self, reg: &Registry) {
        reg.register_counter(
            names::CONNECTIONS,
            "Client connections accepted.",
            &[],
            &self.connections,
        );
        let frames = [
            ("hello", &self.frames_hello),
            ("batch", &self.frames_batch),
            ("shutdown", &self.frames_shutdown),
            ("stats", &self.frames_stats),
            ("other", &self.frames_other),
        ];
        for (ty, c) in frames {
            reg.register_counter(
                names::FRAMES,
                "Frames received, by frame type.",
                &[("type", ty)],
                c,
            );
        }
        let nacks = [
            ("bad_frame", &self.nack_bad_frame),
            ("unsupported", &self.nack_unsupported),
            ("overloaded", &self.nack_overloaded),
            ("draining", &self.nack_draining),
            ("stale", &self.nack_stale),
            ("gap", &self.nack_gap),
            ("engine", &self.nack_engine),
        ];
        for (code, c) in nacks {
            reg.register_counter(
                names::NACKS,
                "NACK frames sent, by code name.",
                &[("code", code)],
                c,
            );
        }
        reg.register_counter(
            names::SHEDS,
            "Batches refused under the shed overload policy.",
            &[],
            &self.sheds,
        );
        reg.register_counter(
            names::BLOCKS,
            "Batches that waited for queue space under the block policy.",
            &[],
            &self.blocks,
        );
        reg.register_gauge(
            names::QUEUE_DEPTH,
            "Batch jobs in the reader-to-engine queue right now.",
            &[],
            &self.queue_depth,
        );
        reg.register_gauge(
            names::INFLIGHT_ACKS,
            "Applied batches whose ACKs are still buffered.",
            &[],
            &self.inflight_acks,
        );
        reg.register_histogram(
            names::DRAIN_SECONDS,
            "Wall-clock seconds per graceful drain.",
            &[],
            &self.drain_seconds,
        );
        reg.register_histogram(
            names::CHECKPOINT_WRITE_SECONDS,
            "Wall-clock seconds per periodic checkpoint write.",
            &[],
            &self.checkpoint_write_seconds,
        );
    }

    /// Every canonical daemon metric name — the doc-check contract.
    pub fn metric_names() -> &'static [&'static str] {
        &[
            names::CONNECTIONS,
            names::FRAMES,
            names::NACKS,
            names::SHEDS,
            names::BLOCKS,
            names::QUEUE_DEPTH,
            names::INFLIGHT_ACKS,
            names::DRAIN_SECONDS,
            names::CHECKPOINT_WRITE_SECONDS,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Renaming a daemon metric without updating the DESIGN.md §3.18
    /// reference table fails here.
    #[test]
    fn names_are_documented_in_design_md() {
        let design = include_str!("../../../DESIGN.md");
        for name in DaemonMetrics::metric_names() {
            assert!(
                design.contains(name),
                "metric {name} is not documented in DESIGN.md §3.18"
            );
        }
    }

    #[test]
    fn every_nack_code_routes_to_a_distinct_counter() {
        let m = DaemonMetrics::new();
        for code in [
            nack::BAD_FRAME,
            nack::UNSUPPORTED,
            nack::OVERLOADED,
            nack::DRAINING,
            nack::STALE,
            nack::GAP,
            nack::ENGINE,
        ] {
            m.nack(code);
        }
        for c in [
            &m.nack_bad_frame,
            &m.nack_unsupported,
            &m.nack_overloaded,
            &m.nack_draining,
            &m.nack_stale,
            &m.nack_gap,
            &m.nack_engine,
        ] {
            assert_eq!(c.get(), 1);
        }
    }

    #[test]
    fn register_into_exposes_every_series() {
        let m = DaemonMetrics::new();
        let reg = Registry::new();
        m.register_into(&reg);
        for want in DaemonMetrics::metric_names() {
            assert!(reg.names().iter().any(|n| n == want), "missing {want}");
        }
        m.frame(frame_type::BATCH);
        m.nack(nack::OVERLOADED);
        let text = reg.render();
        assert!(text.contains("wms_daemon_frames_total{type=\"batch\"} 1"));
        assert!(text.contains("wms_daemon_nacks_total{code=\"overloaded\"} 1"));
    }
}
