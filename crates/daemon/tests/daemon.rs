//! In-process daemon lifecycle tests: the server and a WMSP client run
//! in the same test process (unix socket in a temp dir), proving the
//! tentpole invariants without spawning binaries:
//!
//! - socket-fed output is byte-identical to driving the [`Engine`]
//!   directly with the same batch schedule;
//! - a hard stop (in-process `kill -9` stand-in) followed by a resume +
//!   client replay converges to the exact same bytes;
//! - shedding under overload refuses batches with typed NACKs and the
//!   retried schedule still changes nothing;
//! - garbage and corrupted frames get typed `BAD_FRAME` NACKs and never
//!   disturb the engine.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wms_core::encoding::multihash::MultiHashEncoder;
use wms_core::{EmbedConfig, Scheme, Watermark, WmParams};
use wms_crypto::{Key, KeyedHash};
use wms_daemon::proto::batch_frame;
use wms_daemon::{
    BatchReply, Client, ClientError, DaemonConfig, DaemonError, Endpoint, Outcome, OverloadPolicy,
    SchemeIdentity, Server,
};
use wms_engine::{Engine, EngineConfig, Event, StreamId, StreamSpec};
use wms_stream::{samples_from_values, Sample};

const KEY: u64 = 4242;

fn params() -> WmParams {
    WmParams {
        window: 64,
        degree: 2,
        radius: 0.01,
        max_subset: 4,
        label_len: 3,
        label_stride: 1,
        min_active: Some(4),
        ..WmParams::default()
    }
}

fn scheme() -> Scheme {
    Scheme::new(params(), KeyedHash::md5(Key::from_u64(KEY))).unwrap()
}

fn embed_cfg() -> Arc<EmbedConfig> {
    Arc::new(
        EmbedConfig::new(
            scheme(),
            Arc::new(MultiHashEncoder),
            Watermark::single(true),
        )
        .unwrap(),
    )
}

fn identity() -> SchemeIdentity {
    SchemeIdentity {
        encoder: "multihash".into(),
        wm_bits: Watermark::single(true).bits().to_vec(),
        params: format!("{:?}", params()),
        fingerprint: scheme().memo_fingerprint(),
    }
}

fn wave(n: usize, id: u64) -> Vec<Sample> {
    let period = 19.0 + (id % 7) as f64 * 4.0;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 + id as f64;
            0.3 * (t * core::f64::consts::TAU / period).sin()
                + 0.05 * (t * core::f64::consts::TAU / 7.0).sin()
        })
        .collect();
    samples_from_values(&values)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Round-robin-ish interleaving of three waveform streams.
fn fixture_events(per_stream: usize, seed: u64) -> Vec<Event> {
    let streams: Vec<(StreamId, Vec<Sample>)> = [3u64, 8, 21]
        .iter()
        .map(|&id| (StreamId(id), wave(per_stream, id)))
        .collect();
    let mut rng = seed;
    let mut cursors = vec![0usize; streams.len()];
    let total: usize = streams.iter().map(|(_, s)| s.len()).sum();
    let mut events = Vec::with_capacity(total);
    while events.len() < total {
        let live: Vec<usize> = (0..streams.len())
            .filter(|&i| cursors[i] < streams[i].1.len())
            .collect();
        let pick = live[(splitmix(&mut rng) % live.len() as u64) as usize];
        let (id, samples) = &streams[pick];
        events.push(Event::new(*id, samples[cursors[pick]]));
        cursors[pick] += 1;
    }
    events
}

/// What the daemon's output file must contain for this batch schedule:
/// the same engine, driven directly.
fn expected_output(batches: &[&[Event]]) -> Vec<u8> {
    use std::fmt::Write as _;
    let cfg = embed_cfg();
    let mut engine = Engine::new(EngineConfig::with_workers(1)).unwrap();
    let mut registered = std::collections::HashSet::new();
    let mut out = String::from("# stream,value\n");
    for batch in batches {
        for e in *batch {
            if registered.insert(e.stream.0) {
                engine
                    .register(e.stream, StreamSpec::Embed(Arc::clone(&cfg)))
                    .unwrap();
            }
        }
        for o in engine.ingest(batch).unwrap() {
            for s in o.samples {
                writeln!(out, "{},{}", o.stream, s.value).unwrap();
            }
        }
    }
    for oc in engine.finish().unwrap() {
        for s in oc.tail {
            writeln!(out, "{},{}", oc.stream, s.value).unwrap();
        }
    }
    out.into_bytes()
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("wmsd-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        Scratch(p)
    }

    fn path(&self, f: &str) -> PathBuf {
        self.0.join(f)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_config(scratch: &Scratch) -> DaemonConfig {
    let mut cfg = DaemonConfig::new(
        Endpoint::Unix(scratch.path("wmsd.sock")),
        scratch.path("out.csv"),
        EngineConfig::with_workers(1),
        embed_cfg(),
        identity(),
    );
    cfg.idle_timeout = Duration::from_secs(10);
    cfg
}

fn start(
    cfg: DaemonConfig,
) -> (
    Endpoint,
    std::thread::JoinHandle<Result<wms_daemon::RunReport, DaemonError>>,
) {
    let ep = cfg.endpoint.clone();
    let server = Server::bind(cfg).expect("bind");
    let handle = std::thread::spawn(move || server.run());
    (ep, handle)
}

fn connect(ep: &Endpoint) -> (Client, wms_daemon::Greeting) {
    Client::connect_retry(ep, "lifecycle-test", Duration::from_secs(5)).expect("connect")
}

#[test]
fn socket_roundtrip_matches_direct_engine() {
    let scratch = Scratch::new("roundtrip");
    let events = fixture_events(220, 11);
    let batches: Vec<&[Event]> = events.chunks(64).collect();
    let expected = expected_output(&batches);

    let (ep, handle) = start(base_config(&scratch));
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 0);
    assert_eq!(greeting.fingerprint, identity().fingerprint);
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch((i + 1) as u64, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }
    let (streams, tail_rows) = client.drain().expect("drain");
    assert_eq!(streams, 3);
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.outcome, Outcome::Drained);
    assert_eq!(report.batches, batches.len() as u64);
    assert_eq!(report.events, events.len() as u64);
    assert!(tail_rows > 0, "windowed embedding always holds back a tail");

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(
        got, expected,
        "daemon output differs from direct engine run"
    );
}

#[test]
fn hard_stop_and_resume_reconverge_byte_identically() {
    let scratch = Scratch::new("resume");
    let events = fixture_events(220, 23);
    let batches: Vec<&[Event]> = events.chunks(48).collect();
    assert!(batches.len() >= 6, "fixture must outlive the hard stop");
    let expected = expected_output(&batches);

    // Phase 1: checkpoint every 2 batches, hard-stop after 5 (so the
    // last durable state is batch 4; batch 5's rows die with the run).
    let mut cfg = base_config(&scratch);
    cfg.checkpoint = Some(scratch.path("daemon.ck"));
    cfg.checkpoint_every = 2;
    cfg.hard_stop_after = 5;
    let (ep, handle) = start(cfg);
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 0);
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch((i + 1) as u64, batch) {
            Ok(BatchReply::Acked { .. }) => continue,
            // The stop can surface as a DRAINING NACK or a torn socket.
            Ok(BatchReply::Draining) | Err(_) => break,
            Ok(other) => panic!("unexpected reply: {other:?}"),
        }
    }
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.outcome, Outcome::HardStopped);
    assert_eq!(report.batches, 5);

    // Phase 2: resume. The daemon re-advertises acked_seq = 4; the
    // client replays its whole journal — stale batches are refused
    // (idempotent replay), the rest are applied — then drains.
    let mut cfg = base_config(&scratch);
    cfg.checkpoint = Some(scratch.path("daemon.ck"));
    cfg.checkpoint_every = 2;
    cfg.resume = true;
    let (ep, handle) = start(cfg);
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 4, "last durable checkpoint was batch 4");
    let mut stale = 0;
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch((i + 1) as u64, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            BatchReply::Stale => stale += 1,
            other => panic!("batch {} refused: {other:?}", i + 1),
        }
    }
    assert_eq!(stale, 4, "replayed batches up to the checkpoint are stale");
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert_eq!(report.outcome, Outcome::Drained);
    assert_eq!(report.stale, 4);

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(
        got, expected,
        "kill + resume + replay must be byte-identical to one uninterrupted run"
    );
}

#[test]
fn resume_refuses_mismatched_identity() {
    let scratch = Scratch::new("identity");
    let events = fixture_events(120, 3);
    let batches: Vec<&[Event]> = events.chunks(40).collect();

    let mut cfg = base_config(&scratch);
    cfg.checkpoint = Some(scratch.path("daemon.ck"));
    cfg.checkpoint_every = 1;
    cfg.hard_stop_after = 2;
    let (ep, handle) = start(cfg);
    let (mut client, _) = connect(&ep);
    for (i, batch) in batches.iter().enumerate() {
        if client.send_batch((i + 1) as u64, batch).is_err() {
            break;
        }
    }
    handle.join().unwrap().expect("server run");

    // Same checkpoint, different watermark text: refused as corrupt
    // persisted state (exit-code class 5), not silently re-marked.
    let mut cfg = base_config(&scratch);
    cfg.checkpoint = Some(scratch.path("daemon.ck"));
    cfg.resume = true;
    cfg.identity.wm_bits = Watermark::from_text("other owner").bits().to_vec();
    match Server::bind(cfg) {
        Err(e @ DaemonError::Corrupt(_)) => assert_eq!(e.exit_code(), 5),
        Err(e) => panic!("expected Corrupt refusal, got {e:?}"),
        Ok(_) => panic!("expected Corrupt refusal, bind succeeded"),
    }
}

#[test]
fn shed_policy_nacks_overload_and_retry_changes_nothing() {
    let scratch = Scratch::new("shed");
    let events = fixture_events(80, 7);
    // Six one-batch slices of 40 events each.
    let batches: Vec<&[Event]> = events.chunks(40).collect();
    let expected = expected_output(&batches);

    let mut cfg = base_config(&scratch);
    cfg.overload = OverloadPolicy::Shed;
    cfg.queue_depth = 1;
    cfg.ingest_delay = Duration::from_millis(60);
    let (ep, handle) = start(cfg);
    let (mut client, _) = connect(&ep);

    // Flood: fire every batch without waiting. The engine is busy
    // (ingest_delay), the queue holds one batch, so later frames must
    // come back as typed OVERLOADED NACKs — never silent drops.
    for (i, batch) in batches.iter().enumerate() {
        client
            .write_raw(&batch_frame((i + 1) as u64, batch))
            .expect("write");
    }
    let mut acked = std::collections::HashSet::new();
    let mut shed = Vec::new();
    for _ in 0..batches.len() {
        let (seq, reply) = client.read_reply().expect("reply");
        match reply {
            BatchReply::Acked { .. } => {
                acked.insert(seq);
            }
            BatchReply::Shed => shed.push(seq),
            other => panic!("unexpected reply for {seq}: {other:?}"),
        }
    }
    assert!(!shed.is_empty(), "flood past a depth-1 queue must shed");

    // Retry every shed batch in order until the whole schedule landed.
    shed.sort_unstable();
    for seq in shed {
        loop {
            match client
                .send_batch(seq, batches[(seq - 1) as usize])
                .expect("retry")
            {
                BatchReply::Acked { .. } | BatchReply::Stale => break,
                BatchReply::Shed => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("retry of {seq} refused: {other:?}"),
            }
        }
    }
    client.drain().expect("drain");
    let report = handle.join().unwrap().expect("server run");
    assert!(report.shed >= 1);
    assert_eq!(report.batches, batches.len() as u64);

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(
        got, expected,
        "overload shedding + retries must not change a single output byte"
    );
}

#[test]
fn malformed_frames_get_typed_nacks_and_do_not_disturb_the_engine() {
    let scratch = Scratch::new("badframe");
    let events = fixture_events(100, 5);
    let batches: Vec<&[Event]> = events.chunks(50).collect();
    let expected = expected_output(&batches);

    let (ep, handle) = start(base_config(&scratch));

    // Connection 1: raw garbage. Expect a BAD_FRAME NACK, then close.
    let (mut vandal, _) = connect(&ep);
    vandal.write_raw(b"GARBAGE!").expect("write");
    match vandal.read_reply() {
        Err(ClientError::Nack { code: 1, detail }) => {
            assert!(detail.contains("magic"), "detail: {detail}")
        }
        other => panic!("expected BAD_FRAME nack, got {other:?}"),
    }

    // Connection 2: a bit-flipped batch frame. Typed NACK again — the
    // CRC catches it before the engine ever sees the batch.
    let (mut vandal, _) = connect(&ep);
    let mut frame = batch_frame(1, batches[0]);
    let mid = frame.len() / 2;
    frame[mid] ^= 0x20;
    vandal.write_raw(&frame).expect("write");
    match vandal.read_reply() {
        Err(ClientError::Nack { code: 1, .. }) => {}
        other => panic!("expected BAD_FRAME nack, got {other:?}"),
    }

    // Connection 3: an honest client proceeds as if nothing happened.
    let (mut client, greeting) = connect(&ep);
    assert_eq!(greeting.acked_seq, 0, "no vandal batch was applied");
    for (i, batch) in batches.iter().enumerate() {
        match client.send_batch((i + 1) as u64, batch).expect("send") {
            BatchReply::Acked { .. } => {}
            other => panic!("batch refused: {other:?}"),
        }
    }
    client.drain().expect("drain");
    handle.join().unwrap().expect("server run");

    let got = std::fs::read(scratch.path("out.csv")).unwrap();
    assert_eq!(
        got, expected,
        "injected faults must not change output bytes"
    );
}
