//! Property tests for the WMSP wire codec.
//!
//! Two invariants, each over randomized inputs:
//!
//! 1. **Chunk-delivery independence** — a stream of frames decodes to
//!    the same frames whatever byte boundaries the transport splits
//!    them at (single bytes, random chunks, everything coalesced).
//! 2. **Single-byte corruption is never silent** — flip any one byte
//!    anywhere in an encoded frame and the decoder must produce a typed
//!    [`ProtoError`]: no panic, no silently-accepted frame. The CRC
//!    covers the header too, so even length/type-field damage is caught
//!    (as a CRC mismatch, an oversize refusal, or a truncation report
//!    at EOF when the corrupted length claims bytes that never come).

use proptest::prelude::*;
use wms_daemon::proto::{Frame, FrameDecoder};
use wms_engine::{Event, StreamId};
use wms_stream::Sample;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random frame of any protocol type.
fn arb_frame(rng: &mut u64) -> Frame {
    match splitmix(rng) % 7 {
        0 => Frame::Hello {
            proto: (splitmix(rng) % 4) as u16,
            client: format!("client-{}", splitmix(rng) % 1000),
        },
        1 => Frame::HelloOk {
            proto: 1,
            acked_seq: splitmix(rng) % 10_000,
            fingerprint: splitmix(rng),
        },
        2 => {
            let n = splitmix(rng) % 40;
            let events = (0..n)
                .map(|i| {
                    let v = (splitmix(rng) % 2_000_000) as f64 / 2_000_000.0 - 0.5;
                    Event::new(StreamId(splitmix(rng) % 8), Sample::new(i, v))
                })
                .collect();
            Frame::Batch {
                seq: 1 + splitmix(rng) % 500,
                events,
            }
        }
        3 => Frame::Ack {
            seq: splitmix(rng) % 500,
            emitted: splitmix(rng) % 10_000,
        },
        4 => Frame::Nack {
            seq: splitmix(rng) % 500,
            code: 1 + (splitmix(rng) % 7) as u16,
            detail: format!("detail {}", splitmix(rng) % 100),
        },
        5 => Frame::Shutdown,
        _ => Frame::ShutdownOk {
            streams: splitmix(rng) % 64,
            tail_rows: splitmix(rng) % 10_000,
        },
    }
}

proptest! {
    #[test]
    fn roundtrip_survives_arbitrary_chunking(
        seed in any::<u64>(),
        nframes in 1usize..8,
        max_chunk in 1usize..64,
    ) {
        let mut rng = seed;
        let frames: Vec<Frame> = (0..nframes).map(|_| arb_frame(&mut rng)).collect();
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();

        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        while pos < wire.len() {
            let take = 1 + (splitmix(&mut rng) as usize % max_chunk).min(wire.len() - pos - 1);
            dec.push(&wire[pos..pos + take]);
            pos += take;
            while let Some(f) = dec.try_frame().expect("valid stream never errors") {
                got.push(f);
            }
        }
        dec.finish_eof().expect("no bytes stranded");
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn any_single_corrupted_byte_is_a_typed_error(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        mask_seed in 1u8..=255,
    ) {
        let mut rng = seed;
        let frame = arb_frame(&mut rng);
        let mut wire = frame.encode();
        let pos = (pos_seed % wire.len() as u64) as usize;
        wire[pos] ^= mask_seed; // mask >= 1, so the byte really changes

        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        let mut outcome = Ok(());
        let mut decoded = Vec::new();
        loop {
            match dec.try_frame() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) => break,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        // Either the decoder reported a typed error mid-stream, or the
        // corrupted length field left it waiting for bytes that never
        // come — which EOF must then report as a truncation. Decoding
        // any frame from a corrupted buffer would be silent acceptance.
        prop_assert!(decoded.is_empty(), "corrupt byte at {} decoded {:?}", pos, decoded);
        if outcome.is_ok() {
            prop_assert!(dec.finish_eof().is_err(), "corrupt byte at {} vanished", pos);
        }
    }
}
