//! One-bit subset encodings.
//!
//! A [`SubsetEncoder`] embeds a single watermark bit into the values of a
//! characteristic subset and recovers votes for that bit from a (possibly
//! transformed) subset at detection time. Three conventions are provided:
//!
//! * [`initial::InitialEncoder`] — §3.2's bit-pattern scheme
//!   (`v[bit−1]=0, v[bit]=wm[i], v[bit+1]=0`): fastest, but its
//!   location/value correlation is what §4.1 set out to fix;
//! * [`multihash::MultiHashEncoder`] — §4.3's multi-hash convention over
//!   all m_ij subset averages: survives summarization by construction and
//!   looks random to Mallory;
//! * [`quadres::QuadResEncoder`] — the quadratic-residue alternative of
//!   §4.3/\[1\]: per-item encoding via residuosity mod a secret prime.

use crate::codetable::CodeTable;
use crate::labeling::Label;
use crate::scheme::Scheme;

pub mod initial;
pub mod multihash;
pub mod quadres;

/// Reusable hot-path state threaded through [`SubsetEncoder::embed_with`]
/// and [`SubsetEncoder::detect_with`]. The embedder and detector each own
/// one for the lifetime of the stream, so the steady-state encode path
/// reuses the per-label code memo and performs no per-call heap
/// allocation for its working buffers. Reuse across labels *and* schemes
/// is safe: every memo layer is stamped with the owning
/// [`Scheme::memo_fingerprint`] and invalidates when a different scheme
/// drives it.
#[derive(Debug, Default)]
pub struct EncoderScratch {
    /// Memoized convention-code classifications (multi-hash encodings).
    pub codes: CodeTable,
    /// Prefix-sum buffer for O(1) contiguous-range means.
    pub prefix: Vec<f64>,
    /// Candidate-values buffer for the multi-hash search.
    pub candidate: Vec<f64>,
    /// Quantized-raws buffer.
    pub raws: Vec<i64>,
    /// Cached `bit_position(label)` for the initial encoding, stamped
    /// with the [`Scheme::memo_fingerprint`] it was derived under.
    bitpos: Option<(u64, Label, u32)>,
}

impl EncoderScratch {
    /// Scratch for a long-lived pipeline (code memoization enabled).
    pub fn new() -> Self {
        EncoderScratch::default()
    }

    /// One-shot scratch for the legacy [`SubsetEncoder::embed`] /
    /// [`SubsetEncoder::detect`] entry points: identical results, but no
    /// code-table memoization (a throwaway table would not amortize its
    /// allocation).
    pub fn ephemeral() -> Self {
        EncoderScratch {
            codes: CodeTable::disabled(),
            ..EncoderScratch::default()
        }
    }

    /// `scheme.bit_position(label)` memoized for the current label (and
    /// scheme — reusing one scratch across schemes invalidates cleanly).
    pub fn bit_position(&mut self, scheme: &Scheme, label: &Label) -> u32 {
        match self.bitpos {
            Some((fp, l, pos)) if fp == scheme.memo_fingerprint() && l == *label => pos,
            _ => {
                let pos = scheme.bit_position(label);
                self.bitpos = Some((scheme.memo_fingerprint(), *label, pos));
                pos
            }
        }
    }
}

/// Votes recovered from one characteristic subset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Vote {
    /// Votes for an embedded `true`.
    pub true_votes: u32,
    /// Votes for an embedded `false`.
    pub false_votes: u32,
}

impl Vote {
    /// No votes at all.
    pub fn empty() -> Self {
        Vote::default()
    }

    /// Adds one vote.
    pub fn add(&mut self, bit: bool) {
        if bit {
            self.true_votes += 1;
        } else {
            self.false_votes += 1;
        }
    }

    /// Majority verdict; `None` on ties (including no votes).
    pub fn verdict(&self) -> Option<bool> {
        use std::cmp::Ordering::*;
        match self.true_votes.cmp(&self.false_votes) {
            Greater => Some(true),
            Less => Some(false),
            Equal => None,
        }
    }

    /// Total vote count.
    pub fn total(&self) -> u32 {
        self.true_votes + self.false_votes
    }

    /// Merges another vote tally.
    pub fn merge(&mut self, other: Vote) {
        self.true_votes += other.true_votes;
        self.false_votes += other.false_votes;
    }
}

/// A successful embedding of one bit into one subset.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbedResult {
    /// The altered subset values (same length/order as the input).
    pub values: Vec<f64>,
    /// Search iterations spent (the §6.4 cost metric; 1 for the
    /// constant-time initial encoding).
    pub iterations: u64,
}

/// A one-bit subset encoding convention.
pub trait SubsetEncoder: Send + Sync {
    /// Embeds `bit` into the subset `values` (the extreme is at
    /// `extreme_offset`). Returns `None` when this subset cannot encode
    /// the bit within budget (the embedder then skips the extreme).
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult>;

    /// Extracts votes from a detected subset.
    fn detect(&self, scheme: &Scheme, values: &[f64], label: &Label) -> Vote;

    /// [`embed`](Self::embed) with caller-provided scratch state. The
    /// default delegates to `embed`; the built-in encoders override it
    /// with an allocation-free, memoizing implementation that produces
    /// bit-identical results.
    fn embed_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        let _ = scratch;
        self.embed(scheme, values, extreme_offset, label, bit)
    }

    /// [`detect`](Self::detect) with caller-provided scratch state; same
    /// contract as [`embed_with`](Self::embed_with).
    fn detect_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        label: &Label,
    ) -> Vote {
        let _ = scratch;
        self.detect(scheme, values, label)
    }

    /// Convention name for reports.
    fn name(&self) -> &'static str;
}

/// Trims an index range to at most `cap` items, keeping those nearest
/// `pos` (which must lie inside the range). Grows symmetrically, absorbing
/// slack on one side into the other.
pub fn trim_around(
    range: std::ops::Range<usize>,
    pos: usize,
    cap: usize,
) -> std::ops::Range<usize> {
    assert!(range.contains(&pos), "pos must lie inside range");
    assert!(cap >= 1);
    if range.len() <= cap {
        return range;
    }
    let mut lo = pos;
    let mut hi = pos + 1; // [lo, hi) currently just {pos}
    while hi - lo < cap {
        let can_left = lo > range.start;
        let can_right = hi < range.end;
        // Alternate, preferring the side with more room.
        if can_left && (!can_right || (pos - lo) <= (hi - 1 - pos)) {
            lo -= 1;
        } else if can_right {
            hi += 1;
        } else {
            break;
        }
    }
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_verdicts() {
        let mut v = Vote::empty();
        assert_eq!(v.verdict(), None);
        v.add(true);
        assert_eq!(v.verdict(), Some(true));
        v.add(false);
        assert_eq!(v.verdict(), None);
        v.add(false);
        assert_eq!(v.verdict(), Some(false));
        assert_eq!(v.total(), 3);
    }

    #[test]
    fn vote_merge() {
        let mut a = Vote {
            true_votes: 2,
            false_votes: 1,
        };
        a.merge(Vote {
            true_votes: 0,
            false_votes: 4,
        });
        assert_eq!(
            a,
            Vote {
                true_votes: 2,
                false_votes: 5
            }
        );
    }

    #[test]
    fn trim_noop_when_small() {
        assert_eq!(trim_around(3..8, 5, 10), 3..8);
        assert_eq!(trim_around(3..8, 5, 5), 3..8);
    }

    #[test]
    fn trim_centers_on_pos() {
        let r = trim_around(0..100, 50, 5);
        assert_eq!(r.len(), 5);
        assert!(r.contains(&50));
        // Symmetric: 48..53.
        assert_eq!(r, 48..53);
    }

    #[test]
    fn trim_respects_boundaries() {
        // pos near the left edge: slack goes right.
        let r = trim_around(10..100, 11, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r.start, 10);
        // pos near the right edge: slack goes left.
        let r = trim_around(0..20, 19, 6);
        assert_eq!(r.len(), 6);
        assert_eq!(r.end, 20);
    }

    #[test]
    fn trim_cap_one() {
        assert_eq!(trim_around(0..10, 4, 1), 4..5);
    }

    #[test]
    #[should_panic(expected = "pos must lie inside")]
    fn trim_pos_outside_panics() {
        trim_around(0..5, 7, 3);
    }
}
