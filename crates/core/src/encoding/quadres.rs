//! Quadratic-residue bit encoding — the faster alternative sketched in
//! §4.3, adapted from Atallah & Wagstaff \[1\].
//!
//! Per item: alter the γ least-significant magnitude bits until each of
//! the `k` longest prefixes of the magnitude (the whole value, the value
//! shifted right by one, …), read as integers, is a quadratic residue
//! modulo a secret prime (embedding `true`) or a non-residue (embedding
//! `false`). Detection re-tests residuosity; an item votes only when all
//! of its `k` prefixes agree.
//!
//! Properties: item-wise (so sampling-proof by construction, like m_ii in
//! the multi-hash scheme), much cheaper than multi-hash (expected `2^k`
//! candidates per item instead of `2^(τ·a(a+1)/2)` per subset), but *not*
//! summarization-proof — averaging destroys residuosity. That trade-off is
//! exactly the paper's framing of it as the fast encoding for high-rate
//! streams.
//!
//! **Hot-path note**: residuosity is decided by modular exponentiation
//! over the full magnitude prefix, independent of the label, so the
//! per-label [`crate::codetable::CodeTable`] memo does not apply here;
//! this encoder's share of the hot-path overhaul is the midstate-keyed
//! search-seed derivation it inherits from [`Scheme`]'s keyed hash.
//!
//! **Adaptation note**: consecutive *bit*-shifted prefixes are not
//! independent in residuosity — for even n, χ(n) = χ(2)·χ(n/2), so the
//! Legendre symbols of `n` and `n >> 1` are coupled through the fixed
//! χ(2). We therefore shift prefixes by a nibble (4 bits) per step, which
//! removes the coupling except on a 1/16 measure-zero-ish slice and
//! restores the `2^k` search statistics. All shifts stay inside the γ
//! alterable low bits.

use super::{EmbedResult, SubsetEncoder, Vote};
use crate::labeling::Label;
use crate::scheme::Scheme;
use wms_crypto::keyed::encode::{self, DOM_QUADRES};
use wms_math::numtheory::{is_quadratic_residue, random_prime};
use wms_math::DetRng;

/// The quadratic-residue encoder.
#[derive(Debug, Clone, Copy)]
pub struct QuadResEncoder {
    /// Number of magnitude prefixes that must agree (`k`). Expected search
    /// cost per item is 2^k candidates.
    pub prefixes: u32,
    /// Secret odd prime modulus.
    prime: u64,
    /// Per-item search budget.
    max_item_iterations: u64,
}

impl QuadResEncoder {
    /// Bits each successive prefix is shifted by.
    pub const PREFIX_STRIDE: u32 = 4;

    /// Derives the secret prime from the scheme key (so embedder and
    /// detector agree without extra state) and uses `k` prefixes.
    /// Requires `(k−1)·4 < γ` so every prefix overlaps the alterable
    /// low-bit band.
    pub fn from_scheme(scheme: &Scheme, prefixes: u32) -> Self {
        assert!(prefixes >= 1, "prefixes must be >= 1");
        assert!(
            (prefixes - 1) * Self::PREFIX_STRIDE < scheme.params.lsb_bits,
            "prefix shifts must stay inside the γ alterable bits"
        );
        let seed = scheme
            .hash
            .hash_u64(&encode::message(DOM_QUADRES, &[b"prime-seed"]));
        let mut rng = DetRng::seed_from_u64(seed);
        // 40-bit prime: larger than any 32-bit magnitude prefix, so
        // prefixes are never ≡ 0 (mod p) unless the prefix itself is 0.
        let prime = random_prime(&mut rng, 40);
        QuadResEncoder {
            prefixes,
            prime,
            max_item_iterations: 1 << 18,
        }
    }

    /// The secret modulus (exposed for analysis/tests).
    pub fn prime(&self) -> u64 {
        self.prime
    }

    fn prefixes_agree(&self, mag: u64, want_residue: bool) -> bool {
        if mag == 0 {
            return false; // zero is degenerate; never counts as encoded
        }
        for s in 0..self.prefixes {
            let prefix = mag >> (s * Self::PREFIX_STRIDE);
            if prefix == 0 {
                return false;
            }
            if is_quadratic_residue(prefix, self.prime) != want_residue {
                return false;
            }
        }
        true
    }

    /// Classifies one magnitude: `Some(true)` if all prefixes are
    /// residues, `Some(false)` if all are non-residues, else `None`.
    fn classify(&self, mag: u64) -> Option<bool> {
        if self.prefixes_agree(mag, true) {
            Some(true)
        } else if self.prefixes_agree(mag, false) {
            Some(false)
        } else {
            None
        }
    }
}

impl SubsetEncoder for QuadResEncoder {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        _extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        if values.is_empty() {
            return None;
        }
        let c = &scheme.codec;
        let gamma = scheme.params.lsb_bits;
        let seed = scheme.hash.hash_u64(&encode::message(
            DOM_QUADRES,
            &[&label.to_bytes(), b"search"],
        ));
        let mut rng = DetRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(values.len());
        let mut iterations = 0u64;
        for &v in values {
            let raw = c.quantize(v);
            let mut found = None;
            for i in 0..self.max_item_iterations {
                let cand = if i == 0 {
                    raw
                } else {
                    c.replace_lsb(raw, gamma, rng.next_u64())
                };
                iterations += 1;
                if self.prefixes_agree(c.magnitude(cand), bit) {
                    found = Some(cand);
                    break;
                }
            }
            out.push(c.dequantize(found?));
        }
        Some(EmbedResult {
            values: out,
            iterations,
        })
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], _label: &Label) -> Vote {
        let c = &scheme.codec;
        let mut vote = Vote::empty();
        for &v in values {
            let mag = c.magnitude(c.quantize(v));
            if let Some(b) = self.classify(mag) {
                vote.add(b);
            }
        }
        vote
    }

    fn name(&self) -> &'static str {
        "quadratic-residue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WmParams;
    use wms_crypto::{Key, KeyedHash};

    fn scheme() -> Scheme {
        Scheme::new(WmParams::default(), KeyedHash::md5(Key::from_u64(5))).unwrap()
    }

    fn label() -> Label {
        Label::from_parts(0b1_0011, 5)
    }

    fn subset() -> Vec<f64> {
        vec![0.4102, 0.4131, 0.4155, 0.4140, 0.4117]
    }

    #[test]
    fn prime_is_key_derived_and_stable() {
        let s = scheme();
        let a = QuadResEncoder::from_scheme(&s, 3);
        let b = QuadResEncoder::from_scheme(&s, 3);
        assert_eq!(a.prime(), b.prime());
        assert!(wms_math::numtheory::is_prime(a.prime()));
        let other = Scheme::new(WmParams::default(), KeyedHash::md5(Key::from_u64(6))).unwrap();
        assert_ne!(QuadResEncoder::from_scheme(&other, 3).prime(), a.prime());
    }

    #[test]
    fn embed_then_detect_unanimous() {
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 3);
        for bit in [true, false] {
            let r = e.embed(&s, &subset(), 2, &label(), bit).unwrap();
            let v = e.detect(&s, &r.values, &label());
            assert_eq!(v.total(), 5);
            let consistent = if bit { v.true_votes } else { v.false_votes };
            assert_eq!(consistent, 5);
        }
    }

    #[test]
    fn survives_sampling_per_item() {
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 3);
        let r = e.embed(&s, &subset(), 2, &label(), true).unwrap();
        for &v in &r.values {
            assert_eq!(e.detect(&s, &[v], &label()).verdict(), Some(true));
        }
    }

    #[test]
    fn expected_cost_is_two_to_the_k() {
        let s = scheme();
        for k in [1u32, 3, 4] {
            let e = QuadResEncoder::from_scheme(&s, k);
            let r = e.embed(&s, &subset(), 2, &label(), true).unwrap();
            let per_item = r.iterations as f64 / subset().len() as f64;
            let expect = 2f64.powi(k as i32);
            assert!(
                per_item < expect * 12.0 + 8.0,
                "k={k}: {per_item} candidates/item vs expected ~{expect}"
            );
        }
    }

    #[test]
    fn alterations_confined_to_lsb_band() {
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 3);
        let vals = subset();
        let r = e.embed(&s, &vals, 2, &label(), true).unwrap();
        let bound = 2f64.powi(-(32 - 16));
        for (a, b) in r.values.iter().zip(&vals) {
            assert!((a - b).abs() < bound);
        }
    }

    #[test]
    fn random_data_mostly_abstains_with_k3() {
        // P(all 3 prefixes residues) = 1/8; all non-residues = 1/8;
        // abstain ≈ 3/4.
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 3);
        let mut rng = wms_math::DetRng::seed_from_u64(3);
        let mut voted = 0u32;
        let n = 2000;
        for _ in 0..n {
            let v = rng.uniform(-0.45, 0.45);
            voted += e.detect(&s, &[v], &label()).total();
        }
        let frac = voted as f64 / n as f64;
        assert!((0.15..0.40).contains(&frac), "vote fraction {frac}");
    }

    #[test]
    fn negative_values_encode_by_magnitude() {
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 2);
        let vals: Vec<f64> = subset().iter().map(|v| -v).collect();
        let r = e.embed(&s, &vals, 2, &label(), false).unwrap();
        assert!(r.values.iter().all(|&v| v < 0.0));
        assert_eq!(e.detect(&s, &r.values, &label()).verdict(), Some(false));
    }

    #[test]
    fn summarization_not_survived_by_design() {
        // Documented trade-off: averaging breaks residuosity about half
        // the time, so votes degrade toward noise (unlike multi-hash).
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 1);
        let mut wrong_or_abstain = 0;
        let mut runs = 0;
        for l in 0..40u64 {
            let lab = Label::from_parts((1 << 5) | l, 6);
            if let Some(r) = e.embed(&s, &subset(), 2, &lab, true) {
                let mean = r.values.iter().sum::<f64>() / r.values.len() as f64;
                let v = e.detect(&s, &[mean], &lab);
                if v.verdict() != Some(true) {
                    wrong_or_abstain += 1;
                }
                runs += 1;
            }
        }
        assert!(runs > 30);
        assert!(
            wrong_or_abstain > runs / 5,
            "averages should frequently lose the bit ({wrong_or_abstain}/{runs})"
        );
    }

    #[test]
    fn empty_subset_rejected() {
        let s = scheme();
        let e = QuadResEncoder::from_scheme(&s, 2);
        assert!(e.embed(&s, &[], 0, &label(), true).is_none());
    }
}
