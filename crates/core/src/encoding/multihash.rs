//! The multi-hash encoding (§4.3) — the paper's main convention.
//!
//! For a characteristic subset {x₁ … x_a}, consider every contiguous
//! average `m_ij = mean(x_i..x_j)` (including the items themselves,
//! `m_ii`). A bit `true` is embedded iff **every** m_ij satisfies
//! `lsb(H(lsb(m_ij, γ) ; label(ε), k1), τ) = 2^τ − 1`, and `false` iff
//! every code is `0`.
//!
//! * Summarization survival: a summarization chunk lying inside the
//!   subset *is* one of the m_ij (averaging commutes — see
//!   `FixedPointCodec::quantize_mean`), so its code still classifies.
//! * Bias-detection resistance: the alterations produced by the search
//!   look random; there is no fixed biased bit position for Mallory's
//!   §4.3 attack to find.
//!
//! The embedding is a search: re-randomize the γ least-significant bits of
//! the subset until the convention holds. Expected cost is `2^(τ·a(a+1)/2)`
//! candidates (§5; Figure 11a) — hence the `max_subset` cap and the
//! `min_active` computation-reducing variant, which stops once a required
//! number of m_ij ("active" averages) satisfy the convention.
//!
//! **Choosing `min_active`**: on *unwatermarked* data about half of the
//! `N = a(a+1)/2` averages satisfy either convention by chance, so a
//! requirement at or below `N/2` is met by the very first candidate and
//! embeds nothing. A useful reduced setting must sit well above the
//! binomial noise floor — `min_active ≥ ⌈3N/4⌉` is a sensible minimum
//! (the paper frames this as trading computation for resilience).

use super::{EmbedResult, EncoderScratch, SubsetEncoder, Vote};
use crate::codetable::CodeTable;
use crate::labeling::Label;
use crate::scheme::Scheme;
use wms_math::DetRng;

/// §4.3's encoder.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiHashEncoder;

/// Fills `prefix` with running sums of `values` (`prefix[0] = 0`), the
/// basis for O(1) contiguous-range means.
fn fill_prefix_sums(prefix: &mut Vec<f64>, values: &[f64]) {
    prefix.clear();
    prefix.reserve(values.len() + 1);
    let mut acc = 0.0f64;
    prefix.push(acc);
    for &v in values {
        acc += v;
        prefix.push(acc);
    }
}

impl MultiHashEncoder {
    /// Number of m_ij averages for a subset of `a` items.
    pub fn pair_count(a: usize) -> usize {
        a * (a + 1) / 2
    }

    /// Counts how many m_ij averages of `values` carry `bit`'s code,
    /// aborting early once success (`required` reached) or failure (too
    /// few remaining) is decided. Returns the satisfied count.
    ///
    /// A code equals `convention_target(bit)` exactly when it classifies
    /// to `Some(bit)` (the targets are the all-ones / all-zero codes), so
    /// the memoized classification decides target hits too. Codes are
    /// classified eight pairs at a time — the classifications are pure, so
    /// looking a few pairs past an abort point changes nothing except
    /// that the otherwise serial hash chains run interleaved.
    fn count_satisfying(
        scheme: &Scheme,
        codes: &mut CodeTable,
        prefix: &mut Vec<f64>,
        values: &[f64],
        label: &Label,
        bit: bool,
        required: usize,
    ) -> usize {
        let c = &scheme.codec;
        let a = values.len();
        let total = Self::pair_count(a);
        fill_prefix_sums(prefix, values);
        let mut satisfied = 0usize;
        let mut checked = 0usize;
        let mut pairs = (0..a).flat_map(|i| (i..a).map(move |j| (i, j)));
        loop {
            let mut raws = [0i64; 8];
            let mut n = 0usize;
            while n < 8 {
                let Some((i, j)) = pairs.next() else { break };
                let mean = (prefix[j + 1] - prefix[i]) / (j - i + 1) as f64;
                raws[n] = c.quantize(mean);
                n += 1;
            }
            if n == 0 {
                return satisfied;
            }
            let classes = codes.classify_batch::<8>(scheme, label, &raws[..n]);
            for &class in classes.iter().take(n) {
                checked += 1;
                if class == Some(bit) {
                    satisfied += 1;
                    if satisfied >= required {
                        return satisfied;
                    }
                } else if satisfied + (total - checked) < required {
                    // Even if all remaining pass we cannot reach required.
                    return satisfied;
                }
            }
        }
    }
}

impl SubsetEncoder for MultiHashEncoder {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        let mut scratch = EncoderScratch::ephemeral();
        self.embed_with(scheme, &mut scratch, values, extreme_offset, label, bit)
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], label: &Label) -> Vote {
        let mut scratch = EncoderScratch::ephemeral();
        self.detect_with(scheme, &mut scratch, values, label)
    }

    fn embed_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        _extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        if values.is_empty() {
            return None;
        }
        let p = &scheme.params;
        let c = &scheme.codec;
        let total = Self::pair_count(values.len());
        let required = p.min_active.map(|m| m.min(total)).unwrap_or(total);

        scratch.raws.clear();
        scratch.raws.extend(values.iter().map(|&v| c.quantize(v)));
        // Deterministic search randomness: derived from key + label, so
        // embedding is reproducible run-to-run.
        let seed = scheme.hash.hash_u64(&label.to_bytes());
        let mut rng = DetRng::seed_from_u64(seed);

        scratch.candidate.clear();
        scratch.candidate.extend_from_slice(values);
        for iter in 0..p.max_iterations {
            if iter > 0 {
                for (k, &raw) in scratch.raws.iter().enumerate() {
                    let pattern = rng.next_u64();
                    scratch.candidate[k] = c.dequantize(c.replace_lsb(raw, p.lsb_bits, pattern));
                }
            }
            let ok = Self::count_satisfying(
                scheme,
                &mut scratch.codes,
                &mut scratch.prefix,
                &scratch.candidate,
                label,
                bit,
                required,
            );
            if ok >= required {
                return Some(EmbedResult {
                    values: scratch.candidate.clone(),
                    iterations: iter + 1,
                });
            }
        }
        None
    }

    fn detect_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        label: &Label,
    ) -> Vote {
        let c = &scheme.codec;
        let a = values.len();
        // Singles first: the m_ii "averages" are the only candidates
        // guaranteed to survive *both* sampling (they are stream items)
        // and summarization (they are chunk averages), so when they reach
        // a majority on their own they decide the verdict. Multi-item
        // averages refine the decision only when the singles tie.
        let mut singles = Vote::empty();
        for &v in values {
            if let Some(b) = scratch.codes.classify(scheme, label, c.quantize(v)) {
                singles.add(b);
            }
        }
        if singles.verdict().is_some() {
            return singles;
        }
        let mut vote = singles;
        fill_prefix_sums(&mut scratch.prefix, values);
        for i in 0..a {
            for j in (i + 1)..a {
                let mean = (scratch.prefix[j + 1] - scratch.prefix[i]) / (j - i + 1) as f64;
                if let Some(b) = scratch.codes.classify(scheme, label, c.quantize(mean)) {
                    vote.add(b);
                }
            }
        }
        vote
    }

    fn name(&self) -> &'static str {
        "multi-hash"
    }
}

/// Ablation variant of [`MultiHashEncoder`]: identical embedding, but
/// detection aggregates a flat majority over **all** m_ij averages instead
/// of weighing the m_ii singles first. Kept to measure the design choice
/// (see DESIGN.md §3.9 and the `ablation_verdict` experiment): under
/// sampling/summarization the multi-item averages are mostly noise, so the
/// flat majority dilutes the surviving singles.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiHashFlatMajority;

impl SubsetEncoder for MultiHashFlatMajority {
    fn embed(
        &self,
        scheme: &Scheme,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        MultiHashEncoder.embed(scheme, values, extreme_offset, label, bit)
    }

    fn detect(&self, scheme: &Scheme, values: &[f64], label: &Label) -> Vote {
        let mut scratch = EncoderScratch::ephemeral();
        self.detect_with(scheme, &mut scratch, values, label)
    }

    fn embed_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        extreme_offset: usize,
        label: &Label,
        bit: bool,
    ) -> Option<EmbedResult> {
        MultiHashEncoder.embed_with(scheme, scratch, values, extreme_offset, label, bit)
    }

    fn detect_with(
        &self,
        scheme: &Scheme,
        scratch: &mut EncoderScratch,
        values: &[f64],
        label: &Label,
    ) -> Vote {
        let c = &scheme.codec;
        let a = values.len();
        let mut vote = Vote::empty();
        fill_prefix_sums(&mut scratch.prefix, values);
        for i in 0..a {
            for j in i..a {
                let mean = (scratch.prefix[j + 1] - scratch.prefix[i]) / (j - i + 1) as f64;
                if let Some(b) = scratch.codes.classify(scheme, label, c.quantize(mean)) {
                    vote.add(b);
                }
            }
        }
        vote
    }

    fn name(&self) -> &'static str {
        "multi-hash-flat-majority"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WmParams;
    use wms_crypto::{Key, KeyedHash};

    fn scheme_with(params: WmParams) -> Scheme {
        Scheme::new(params, KeyedHash::md5(Key::from_u64(77))).unwrap()
    }

    fn scheme() -> Scheme {
        scheme_with(WmParams::default())
    }

    fn label() -> Label {
        Label::from_parts(0b1_1010_0110, 9)
    }

    fn subset() -> Vec<f64> {
        vec![0.2811, 0.2856, 0.2901, 0.2877, 0.2832]
    }

    #[test]
    fn pair_count_formula() {
        assert_eq!(MultiHashEncoder::pair_count(1), 1);
        assert_eq!(MultiHashEncoder::pair_count(5), 15);
        assert_eq!(MultiHashEncoder::pair_count(6), 21);
    }

    #[test]
    fn embed_then_detect_unanimous() {
        let s = scheme();
        let e = MultiHashEncoder;
        for bit in [true, false] {
            let r = e
                .embed(&s, &subset(), 2, &label(), bit)
                .expect("search succeeds");
            // Singles decide unanimously (they are m_ii averages and the
            // full convention covers them).
            let v = e.detect(&s, &r.values, &label());
            assert_eq!(v.total(), 5, "singles decide");
            let consistent = if bit { v.true_votes } else { v.false_votes };
            assert_eq!(consistent, 5, "all items must encode the bit");
            // And every multi-item average individually classifies to the
            // embedded bit as well — the full §4.3 convention.
            let c = &s.codec;
            for i in 0..r.values.len() {
                for j in i..r.values.len() {
                    let mean = r.values[i..=j].iter().sum::<f64>() / (j - i + 1) as f64;
                    let code = s.convention_code(c.quantize(mean), &label());
                    assert_eq!(s.classify_code(code), Some(bit), "m_{i}{j}");
                }
            }
        }
    }

    #[test]
    fn iterations_scale_matches_analysis() {
        // Expected candidates ≈ 2^(τ·a(a+1)/2) = 2^15 ≈ 32768 for a=5
        // (the paper's §4.3 worked example). Average over a few labels and
        // allow generous slack — it is a geometric distribution.
        let s = scheme();
        let e = MultiHashEncoder;
        let mut total = 0u64;
        let mut runs = 0u64;
        for l in 0..6u64 {
            let lab = Label::from_parts((1 << 8) | l, 9);
            if let Some(r) = e.embed(&s, &subset(), 2, &lab, true) {
                total += r.iterations;
                runs += 1;
            }
        }
        assert!(runs >= 4, "most searches should finish in budget");
        let mean = total as f64 / runs as f64;
        assert!(
            (1000.0..300_000.0).contains(&mean),
            "mean iterations {mean} should be near 2^15"
        );
    }

    #[test]
    fn min_active_reduces_cost() {
        let full = scheme();
        // 12 of 15 — above the binomial noise floor (see module docs).
        let reduced = scheme_with(WmParams {
            min_active: Some(12),
            ..WmParams::default()
        });
        let e = MultiHashEncoder;
        let rf = e.embed(&full, &subset(), 2, &label(), true).unwrap();
        let rr = e.embed(&reduced, &subset(), 2, &label(), true).unwrap();
        assert!(
            rr.iterations * 8 < rf.iterations,
            "min_active should slash the search: {} vs {}",
            rr.iterations,
            rf.iterations
        );
        // Reduced encoding still yields a clear verdict.
        let v = e.detect(&reduced, &rr.values, &label());
        assert_eq!(v.verdict(), Some(true));
    }

    #[test]
    fn alterations_confined_to_lsb_band() {
        let s = scheme();
        let vals = subset();
        let r = MultiHashEncoder
            .embed(&s, &vals, 2, &label(), true)
            .unwrap();
        let bound = 2f64.powi(-(32 - 16)); // γ=16 of B=32
        for (a, b) in r.values.iter().zip(&vals) {
            assert!(
                (a - b).abs() < bound,
                "alteration {} > {bound}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn survives_summarization_within_subset() {
        // Replace the subset by averages of aligned chunks: the chunk
        // means are m_ij values and must still vote for the bit.
        let p = WmParams {
            max_subset: 6,
            ..WmParams::default()
        };
        let s = scheme_with(p);
        let e = MultiHashEncoder;
        let vals = vec![0.301, 0.3055, 0.309, 0.3102, 0.3066, 0.3023];
        let r = e.embed(&s, &vals, 3, &label(), true).expect("a=6 search");
        for chunk in [2usize, 3] {
            let means: Vec<f64> = r
                .values
                .chunks(chunk)
                .map(|ch| ch.iter().sum::<f64>() / ch.len() as f64)
                .collect();
            let v = e.detect(&s, &means, &label());
            assert_eq!(v.verdict(), Some(true), "chunk={chunk}: {v:?}");
            assert_eq!(v.false_votes, 0, "aligned averages cannot disagree");
        }
    }

    #[test]
    fn survives_sampling_single_items() {
        let s = scheme();
        let r = MultiHashEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        for &v in &r.values {
            let vote = MultiHashEncoder.detect(&s, &[v], &label());
            assert_eq!(vote.verdict(), Some(true), "item {v} lost the bit");
        }
    }

    #[test]
    fn unwatermarked_votes_split_roughly_evenly() {
        let s = scheme();
        let mut rng = wms_math::DetRng::seed_from_u64(9);
        let mut t = 0u32;
        let mut n = 0u32;
        for _ in 0..300 {
            let vals: Vec<f64> = (0..4).map(|_| rng.uniform(-0.45, 0.45)).collect();
            let v = MultiHashEncoder.detect(&s, &vals, &label());
            t += v.true_votes;
            n += v.total();
        }
        let frac = t as f64 / n as f64;
        assert!((0.42..0.58).contains(&frac), "true fraction {frac}");
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let p = WmParams {
            max_iterations: 4,
            ..WmParams::default()
        };
        let s = scheme_with(p);
        // 15 codes must all match with 4 candidates: astronomically
        // unlikely; expect None.
        assert!(MultiHashEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .is_none());
    }

    #[test]
    fn deterministic_embedding() {
        let s = scheme();
        let a = MultiHashEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        let b = MultiHashEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        assert_eq!(a.values, b.values);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn empty_subset_rejected() {
        assert!(MultiHashEncoder
            .embed(&scheme(), &[], 0, &label(), true)
            .is_none());
    }

    #[test]
    fn flat_majority_variant_agrees_on_clean_data() {
        let s = scheme();
        let r = MultiHashEncoder
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        let flat = MultiHashFlatMajority.detect(&s, &r.values, &label());
        assert_eq!(flat.verdict(), Some(true));
        assert_eq!(flat.total(), 15, "flat majority counts every m_ij");
        assert_eq!(flat.true_votes, 15);
        // Embedding is shared.
        let r2 = MultiHashFlatMajority
            .embed(&s, &subset(), 2, &label(), true)
            .unwrap();
        assert_eq!(r.values, r2.values);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_oneshot() {
        // One scratch driven across many labels and both bit values must
        // reproduce the one-shot (non-memoized) API exactly — embeddings,
        // iteration counts, and votes.
        let s = scheme_with(WmParams {
            min_active: Some(12),
            ..WmParams::default()
        });
        let e = MultiHashEncoder;
        let mut scratch = EncoderScratch::new();
        for l in 0..8u64 {
            let lab = Label::from_parts((1 << 8) | l, 9);
            for bit in [true, false] {
                let one = e.embed(&s, &subset(), 2, &lab, bit);
                let reused = e.embed_with(&s, &mut scratch, &subset(), 2, &lab, bit);
                assert_eq!(one, reused, "label {l} bit {bit}");
                if let Some(r) = &one {
                    assert_eq!(
                        e.detect(&s, &r.values, &lab),
                        e.detect_with(&s, &mut scratch, &r.values, &lab)
                    );
                }
            }
        }
    }

    #[test]
    fn tau_two_codes_can_abstain() {
        // τ=2: of the four codes, 00 and 11 classify, 01 and 10 abstain —
        // about half of random inputs produce no vote.
        let s = scheme_with(WmParams {
            convention_bits: 2,
            ..WmParams::default()
        });
        let mut rng = wms_math::DetRng::seed_from_u64(11);
        let mut classified = 0u32;
        let n = 2000;
        for _ in 0..n {
            let raw = s.codec.quantize(rng.uniform(-0.45, 0.45));
            if s.classify_code(s.convention_code(raw, &label())).is_some() {
                classified += 1;
            }
        }
        let frac = classified as f64 / n as f64;
        assert!((0.4..0.6).contains(&frac), "classification fraction {frac}");
    }
}
